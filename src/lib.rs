//! Facade for the DiGamma (DATE 2022) reproduction.
//!
//! Re-exports the workspace crates under one roof so examples, tests, and
//! downstream users can depend on a single crate:
//!
//! * [`workload`] — DNN models and layer shapes,
//! * [`costmodel`] — the MAESTRO-class analytical cost model,
//! * [`encoding`] — the HW+mapping genome and continuous codec,
//! * [`opt`] — the black-box optimizer suite,
//! * [`core`] — the co-opt framework, DiGamma GA, and baselines,
//! * [`server`] — the concurrent search service (job queue, fitness
//!   memo cache, checkpoint/resume),
//! * [`net`] — the TCP/HTTP front-end (`digamma-netd`): streaming job
//!   lifecycle over the search service.
//!
//! # Example
//!
//! ```
//! use digamma_repro::prelude::*;
//!
//! let problem = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency);
//! let config = DiGammaConfig { population_size: 16, seed: 7, ..Default::default() };
//! let result = DiGamma::new(config).search(&problem, 120);
//! assert!(result.best.is_some());
//! ```

#![warn(missing_docs)]

pub use digamma as core;
pub use digamma_costmodel as costmodel;
pub use digamma_encoding as encoding;
pub use digamma_net as net;
pub use digamma_opt as opt;
pub use digamma_server as server;
pub use digamma_workload as workload;

/// The most common imports, bundled.
pub mod prelude {
    pub use digamma::schemes::HwPreset;
    pub use digamma::{
        hw_grid_search, run_algorithm, CoOptProblem, Constraint, DesignPoint, DiGamma,
        DiGammaConfig, Gamma, GammaConfig, MappingStyle, Objective, SearchResult,
    };
    pub use digamma_costmodel::{Evaluator, HwConfig, Mapping, Platform};
    pub use digamma_encoding::{Codec, Genome};
    pub use digamma_opt::{minimize, Algorithm, Optimizer};
    pub use digamma_server::{JobAlgorithm, JobSpec, SearchServer, ServerConfig};
    pub use digamma_workload::{zoo, Dim, DimVec, Layer, LayerKind, Model};
}
