//! Edge vs cloud co-design: how the optimal accelerator changes with the
//! area budget (the paper's two platform settings, Sec. V-A).
//!
//! Co-optimizes the same recommendation model (DLRM — memory-bound, the
//! kind of workload the paper's intro motivates) under both budgets and
//! contrasts the resulting hardware: the cloud design should spend its
//! extra area on very different resources than a scaled-up edge design.
//!
//! Run with:
//!   cargo run --release --example edge_vs_cloud

use digamma_repro::prelude::*;

fn design_for(platform: Platform, budget_samples: usize) -> DesignPoint {
    let problem = CoOptProblem::new(zoo::dlrm(), platform, Objective::Latency);
    let config = DiGammaConfig { seed: 7, threads: 4, ..Default::default() };
    DiGamma::new(config).search(&problem, budget_samples).best.expect("feasible design")
}

fn describe(tag: &str, d: &DesignPoint) {
    let (pe, buf) = d.area_ratio_percent();
    println!("{tag}:");
    println!("  hw      : {}", d.hw);
    println!("  latency : {:.3e} cycles", d.latency_cycles);
    println!("  area    : {:.3e} µm² (PE {pe:.0}% / buffer {buf:.0}%)", d.area_um2);
}

fn main() {
    println!("co-designing for DLRM (memory-bound recommendation model)\n");
    let edge = design_for(Platform::edge(), 1200);
    let cloud = design_for(Platform::cloud(), 1200);

    describe("edge  (0.2 mm²)", &edge);
    println!();
    describe("cloud (7.0 mm²)", &cloud);

    let speedup = edge.latency_cycles / cloud.latency_cycles;
    println!(
        "\ncloud design is {speedup:.1}x faster — with {:.0}x the area",
        cloud.area_um2 / edge.area_um2
    );
    println!(
        "PE scale-up: {}x PEs, L2 scale-up: {}x words",
        cloud.hw.num_pes() / edge.hw.num_pes().max(1),
        cloud.hw.l2_words / edge.hw.l2_words.max(1)
    );
}
