//! Multi-model co-design: one accelerator for a whole workload suite.
//!
//! The paper's framework "takes in any DNN model(s)". Composing models
//! with [`Model::concat`] searches one hardware configuration whose
//! per-layer mappings serve every network — and shows the cost of
//! generality: the shared design trades a little per-model latency for
//! covering both a compute-bound CNN and a memory-bound recommender.
//!
//! Run with:
//!   cargo run --release --example multi_model_codesign

use digamma_repro::prelude::*;

fn best_latency(model: Model, budget: usize) -> DesignPoint {
    let problem = CoOptProblem::new(model, Platform::edge(), Objective::Latency);
    DiGamma::new(DiGammaConfig { seed: 13, threads: 4, ..Default::default() })
        .search(&problem, budget)
        .best
        .expect("feasible design")
}

fn main() {
    let budget = 1200;
    let cnn = zoo::resnet18();
    let rec = zoo::ncf();

    // Specialists: one accelerator per model.
    let cnn_design = best_latency(cnn.clone(), budget);
    let rec_design = best_latency(rec.clone(), budget);

    // Generalist: one accelerator for both.
    let suite = Model::concat("resnet18+ncf", &[cnn.clone(), rec.clone()]);
    let shared = best_latency(suite, budget);

    println!("specialist for {}:", cnn.name());
    println!("  {}  ({:.3e} cycles)", cnn_design.hw, cnn_design.latency_cycles);
    println!("specialist for {}:", rec.name());
    println!("  {}  ({:.3e} cycles)", rec_design.hw, rec_design.latency_cycles);
    println!("shared accelerator (sum of both workloads):");
    println!("  {}  ({:.3e} cycles total)", shared.hw, shared.latency_cycles);

    let specialist_total = cnn_design.latency_cycles + rec_design.latency_cycles;
    println!(
        "\ngenerality cost: shared / sum-of-specialists = {:.2}x",
        shared.latency_cycles / specialist_total
    );
    println!("(>1.0 is the price of one design serving both models)");
}
