//! Fixed-HW use-case (paper Sec. III-B): you already built an
//! accelerator; find the best mapping for a new workload at compile time.
//!
//! Uses the GAMMA mapper (the paper's mapping-only baseline) against a
//! given hardware configuration, for BERT — and shows why mapping search
//! matters by comparing against the three manual mapping styles on the
//! same silicon.
//!
//! Run with:
//!   cargo run --release --example fixed_hw_mapper

use digamma_repro::core::templates;
use digamma_repro::prelude::*;

fn main() {
    // The accelerator you already taped out: a 16x16 array, 128-word L1s,
    // 64K-word shared L2.
    let hw = HwConfig {
        fanouts: vec![16, 16],
        l2_words: 64 * 1024,
        mid_words_per_unit: vec![],
        l1_words_per_pe: 128,
    };
    let model = zoo::bert();
    let platform = Platform::cloud();
    let problem = CoOptProblem::new(model.clone(), platform.clone(), Objective::Latency);

    println!("fixed hardware: {hw}");
    println!("workload: {model}");

    // Manual mapping styles on this hardware.
    let constrained = problem.clone().with_constraint(Constraint::FixedHw(hw.clone()));
    for style in MappingStyle::ALL {
        let mappings = templates::instantiate_all(style, problem.unique_layers(), &hw);
        match constrained.evaluate_mappings(&hw.fanouts, &mappings) {
            Ok(eval) if eval.feasible => {
                println!("  {style:<10}: {:.3e} cycles", eval.latency_cycles)
            }
            _ => println!("  {style:<10}: does not fit"),
        }
    }

    // GAMMA search on the same hardware.
    let result = Gamma::new(GammaConfig { seed: 3, threads: 4, ..Default::default() })
        .search(&problem, &hw, 1500);
    let best = result.best.expect("GAMMA finds a fitting mapping");
    println!("  GAMMA     : {:.3e} cycles  <- searched", best.latency_cycles);

    println!("\nbest searched mapping for the attention-score GEMM:");
    let score_idx =
        problem.unique_layers().iter().position(|u| u.layer.name().contains("scores")).unwrap_or(0);
    let single = Genome {
        fanouts: best.genome.fanouts.clone(),
        layers: vec![best.genome.layers[score_idx].clone()],
    };
    print!("{single}");
}
