//! Quickstart: co-optimize an accelerator for one model in ~20 lines.
//!
//! Run with:
//!   cargo run --release --example quickstart

use digamma_repro::prelude::*;

fn main() {
    // 1. Pick a workload, a platform budget, and an objective.
    let model = zoo::mobilenet_v2();
    let platform = Platform::edge(); // 0.2 mm² for PEs + buffers
    let problem = CoOptProblem::new(model.clone(), platform.clone(), Objective::Latency);

    println!("model: {model}");
    println!("budget: {:.1} mm² ({})\n", platform.area_budget_um2 / 1e6, platform.name);

    // 2. Run DiGamma for a small sampling budget.
    let config = DiGammaConfig { seed: 42, threads: 4, ..Default::default() };
    let result = DiGamma::new(config).search(&problem, 1500);

    // 3. Inspect the winning design point.
    let best = result.best.expect("a feasible design within budget");
    println!("best design after {} samples:", result.samples);
    println!("  latency : {:.3e} cycles", best.latency_cycles);
    println!("  energy  : {:.3e} pJ", best.energy_pj);
    println!("  area    : {:.3e} µm² (budget {:.3e})", best.area_um2, platform.area_budget_um2);
    let (pe, buf) = best.area_ratio_percent();
    println!("  split   : PE {pe:.0}% / buffer {buf:.0}%");
    println!("  hw      : {}", best.hw);

    // 4. The genome is a full per-layer mapping description.
    println!("\nfirst unique layer's mapping genes:");
    let single = Genome {
        fanouts: best.genome.fanouts.clone(),
        layers: vec![best.genome.layers[0].clone()],
    };
    print!("{single}");
}
