//! Alternative objectives (paper Sec. V-A): the framework also optimizes
//! energy and EDP, and the winning hardware changes with the objective.
//!
//! Run with:
//!   cargo run --release --example objective_tradeoffs

use digamma_repro::prelude::*;

fn main() {
    let model = zoo::resnet18();
    let platform = Platform::edge();
    println!("objective trade-offs for {} @ {}\n", model.name(), platform.name);
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>10}",
        "objective", "latency (cyc)", "energy (pJ)", "area (µm²)", "PEs"
    );

    for objective in [Objective::Latency, Objective::Energy, Objective::Edp] {
        let problem = CoOptProblem::new(model.clone(), platform.clone(), objective);
        let config = DiGammaConfig { seed: 11, threads: 4, ..Default::default() };
        let result = DiGamma::new(config).search(&problem, 1200);
        let best = result.best.expect("feasible design");
        println!(
            "{:<10} {:>14.3e} {:>14.3e} {:>12.3e} {:>10}",
            objective.to_string(),
            best.latency_cycles,
            best.energy_pj,
            best.area_um2,
            best.hw.num_pes()
        );
    }

    println!("\nlatency-optimal designs spend area on PEs; energy-optimal");
    println!("designs trade compute for buffers to cut DRAM traffic.");
}
