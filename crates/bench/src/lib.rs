//! Experiment harness for the DiGamma reproduction.
//!
//! One module per paper artifact (see `DESIGN.md` §4):
//!
//! * [`fig5`] — 9 optimization algorithms × 7 models × {edge, cloud},
//!   latency and latency·area normalized to CMA,
//! * [`fig6`] — HW-opt / Mapping-opt / co-opt scheme comparison,
//! * [`fig7`] — found-solution breakdown for MnasNet at edge,
//! * [`ablation`] — operator ablations of the DiGamma GA (E5),
//! * [`pareto`] — the latency-vs-area sweep (an extension),
//! * [`cachebench`] — cold- vs warm-cache search comparison for the
//!   server's fitness memo (recorded numbers in its module docs),
//! * [`perfjson`] — the evaluator perf harness: fixed seeded workloads
//!   through the allocating vs scratch cost-model paths plus memo
//!   hit-rate measurements, emitted as `BENCH_eval.json` (the repo's
//!   perf trajectory file),
//! * [`report`] — the markdown/TSV table writer the binaries share.
//!
//! The binaries (`fig5`, `fig6`, `fig7`, `pareto`, `space`, `ablation`)
//! are thin wrappers over these modules; everything here is
//! unit-testable at small budgets.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod cachebench;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod pareto;
pub mod perfjson;
pub mod report;

use digamma_workload::{zoo, Model};

/// Geometric mean of the finite, positive entries; `None` when empty.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v.is_finite() && v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

/// Resolves `--models` arguments (comma-separated names) to models;
/// defaults to the paper's full seven-model suite.
pub fn resolve_models(arg: Option<&str>) -> Vec<Model> {
    match arg {
        None => zoo::all_models(),
        Some(names) => names
            .split(',')
            .map(|n| zoo::by_name(n.trim()).unwrap_or_else(|| panic!("unknown model: {n}")))
            .collect(),
    }
}

/// Minimal `--key value` argument parser shared by the binaries.
#[derive(Debug, Clone, Default)]
pub struct Args {
    entries: Vec<(String, String)>,
}

impl Args {
    /// Parses `std::env::args`-style input (flags must be `--key value`).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Args {
        let mut entries = Vec::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(item) = iter.next() {
            if let Some(key) = item.strip_prefix("--") {
                let value = iter.next().unwrap_or_default();
                entries.push((key.to_owned(), value));
            }
        }
        Args { entries }
    }

    /// Looks up a string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Looks up a numeric flag with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key).map(|v| v.parse().expect("numeric flag")).unwrap_or(default)
    }

    /// Looks up a u64 flag with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key).map(|v| v.parse().expect("numeric flag")).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_known_values() {
        let g = geomean([1.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-9);
        assert!(geomean([]).is_none());
        // Non-finite and non-positive entries are skipped.
        let g = geomean([f64::INFINITY, 4.0, 0.0, 1.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-9);
    }

    #[test]
    fn resolve_models_defaults_to_all_seven() {
        assert_eq!(resolve_models(None).len(), 7);
        let picked = resolve_models(Some("ncf, dlrm"));
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].name(), "ncf");
    }

    #[test]
    fn args_parse_key_values() {
        let args = Args::parse(
            ["--budget", "500", "--models", "ncf", "--budget", "900"].map(String::from),
        );
        assert_eq!(args.get_usize("budget", 1), 900, "last flag wins");
        assert_eq!(args.get("models"), Some("ncf"));
        assert_eq!(args.get_usize("seed", 7), 7);
    }
}
