//! Markdown/TSV table writer shared by the experiment binaries.
//!
//! Hand-rolled on purpose: the repository's dependency policy
//! (`DESIGN.md` §5) avoids pulling a serialization format crate for what
//! is a few dozen lines of formatting.

use std::fmt::Write as _;

/// A simple titled table with a label column.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Creates a table with the given title and data-column headers.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Table {
        Table { title: title.into(), columns, rows: Vec::new() }
    }

    /// Appends a labelled row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "cell/column count mismatch");
        self.rows.push((label.into(), cells));
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| | {} |", self.columns.join(" | "));
        let _ = writeln!(out, "|---{}|", "|---".repeat(self.columns.len()));
        for (label, cells) in &self.rows {
            let _ = writeln!(out, "| {} | {} |", label, cells.join(" | "));
        }
        out
    }

    /// Renders tab-separated values (one header line, no title).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}\t{}", self.title, self.columns.join("\t"));
        for (label, cells) in &self.rows {
            let _ = writeln!(out, "{}\t{}", label, cells.join("\t"));
        }
        out
    }
}

/// Formats a normalized ratio the way the paper's tables do: `N/A` for
/// missing values, two significant styles otherwise.
pub fn fmt_ratio(v: Option<f64>) -> String {
    match v {
        None => "N/A".to_owned(),
        Some(x) if !x.is_finite() => "N/A".to_owned(),
        Some(x) if x >= 100.0 => format!("{x:.0}"),
        Some(x) if x >= 0.095 => format!("{x:.1}"),
        Some(x) => format!("{x:.2}"),
    }
}

/// Formats an absolute quantity in scientific notation (Fig. 7 style).
pub fn fmt_sci(v: f64) -> String {
    format!("{v:.2E}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", vec!["a".into(), "b".into()]);
        t.push_row("row1", vec!["1.0".into(), "2.0".into()]);
        t
    }

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| | a | b |"));
        assert!(md.contains("| row1 | 1.0 | 2.0 |"));
    }

    #[test]
    fn tsv_is_tab_separated() {
        let tsv = sample().to_tsv();
        assert!(tsv.contains("row1\t1.0\t2.0"));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn row_width_is_checked() {
        sample().push_row("bad", vec!["only one".into()]);
    }

    #[test]
    fn ratio_formatting_matches_paper_style() {
        assert_eq!(fmt_ratio(None), "N/A");
        assert_eq!(fmt_ratio(Some(f64::INFINITY)), "N/A");
        assert_eq!(fmt_ratio(Some(264.6)), "265");
        assert_eq!(fmt_ratio(Some(3.02)), "3.0");
        assert_eq!(fmt_ratio(Some(0.04)), "0.04");
        assert_eq!(fmt_ratio(Some(1.0)), "1.0");
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(fmt_sci(3.74e6), "3.74E6");
    }
}
