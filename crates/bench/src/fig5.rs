//! Experiment E1 (paper Fig. 5): baseline optimization algorithms vs
//! DiGamma on the HW-Mapping co-optimization problem.
//!
//! For each (model, platform) the harness runs the eight baseline
//! algorithms through the co-opt framework's continuous codec, and
//! DiGamma natively, all with the same sampling budget. Reported values
//! are the best feasible latency and latency·area product, normalized by
//! CMA's (the best-performing baseline, exactly as the paper normalizes).

use crate::geomean;
use crate::report::{fmt_ratio, Table};
use digamma::{CoOptProblem, DiGamma, DiGammaConfig, Objective};
use digamma_costmodel::Platform;
use digamma_opt::Algorithm;
use digamma_workload::Model;

/// One algorithm's outcome on one (model, platform) task.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Best feasible latency in cycles (`None` = no valid solution,
    /// printed as `N/A`).
    pub latency: Option<f64>,
    /// Latency·area product of that same solution.
    pub lat_area: Option<f64>,
}

/// All results for one platform.
#[derive(Debug, Clone)]
pub struct PlatformResults {
    /// Platform name (`edge` / `cloud`).
    pub platform: String,
    /// Column labels: the eight baselines then `DiGamma`.
    pub columns: Vec<String>,
    /// One row per model: `(model name, cells)`.
    pub rows: Vec<(String, Vec<Cell>)>,
}

/// Index of the CMA column used for normalization.
pub const CMA_COLUMN: usize = 7;

/// Runs E1 for one platform.
pub fn run(models: &[Model], platform: &Platform, budget: usize, seed: u64) -> PlatformResults {
    let mut columns: Vec<String> =
        Algorithm::ALL.iter().map(|a| a.paper_name().to_owned()).collect();
    columns.push("DiGamma".to_owned());

    let mut rows = Vec::new();
    for model in models {
        let problem = CoOptProblem::new(model.clone(), platform.clone(), Objective::Latency);
        let mut cells = Vec::with_capacity(columns.len());
        for (ai, alg) in Algorithm::ALL.into_iter().enumerate() {
            let result = digamma::run_algorithm(alg, &problem, budget, seed + ai as u64);
            cells.push(to_cell(&result.best));
        }
        let config = DiGammaConfig { seed: seed + 100, ..DiGammaConfig::default() };
        let result = DiGamma::new(config).search(&problem, budget);
        cells.push(to_cell(&result.best));
        rows.push((model.name().to_owned(), cells));
    }

    PlatformResults { platform: platform.name.clone(), columns, rows }
}

fn to_cell(best: &Option<digamma::DesignPoint>) -> Cell {
    match best {
        None => Cell { latency: None, lat_area: None },
        Some(p) => {
            Cell { latency: Some(p.latency_cycles), lat_area: Some(p.latency_area_product()) }
        }
    }
}

/// Builds the two normalized tables (latency, latency·area) for one
/// platform, each with a trailing GeoMean row — the layout of Fig. 5.
pub fn tables(results: &PlatformResults) -> (Table, Table) {
    let build = |metric: fn(&Cell) -> Option<f64>, what: &str| -> Table {
        let mut t = Table::new(
            format!("Fig. 5 ({}) — {} normalized to CMA (lower is better)", results.platform, what),
            results.columns.clone(),
        );
        // Per-column normalized values for the geomean.
        let mut normalized: Vec<Vec<f64>> = vec![Vec::new(); results.columns.len()];
        for (model, cells) in &results.rows {
            let cma = metric(&cells[CMA_COLUMN]);
            let row: Vec<Option<f64>> = cells
                .iter()
                .map(|c| match (metric(c), cma) {
                    (Some(v), Some(base)) if base > 0.0 => Some(v / base),
                    // No CMA baseline: report raw value (paper note: CMA
                    // is stable and never hit N/A in our runs either).
                    (Some(v), _) => Some(v),
                    _ => None,
                })
                .collect();
            for (col, v) in row.iter().enumerate() {
                if let Some(v) = v {
                    normalized[col].push(*v);
                }
            }
            t.push_row(model.clone(), row.iter().map(|v| fmt_ratio(*v)).collect());
        }
        let geo: Vec<String> =
            normalized.iter().map(|vs| fmt_ratio(geomean(vs.iter().copied()))).collect();
        t.push_row("GeoMean", geo);
        t
    };
    (build(|c| c.latency, "latency"), build(|c| c.lat_area, "latency-area-product"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_workload::zoo;

    #[test]
    fn small_fig5_run_produces_complete_tables() {
        let models = vec![zoo::ncf()];
        let results = run(&models, &Platform::edge(), 80, 3);
        assert_eq!(results.columns.len(), 9);
        assert_eq!(results.rows.len(), 1);
        let (lat, la) = tables(&results);
        // One model row + the GeoMean row.
        assert_eq!(lat.len(), 2);
        assert_eq!(la.len(), 2);
        let md = lat.to_markdown();
        assert!(md.contains("ncf"));
        assert!(md.contains("GeoMean"));
        assert!(md.contains("DiGamma"));
    }

    #[test]
    fn digamma_column_is_competitive_on_small_budget() {
        // At equal (small) budget DiGamma should be at worst a small
        // factor off CMA on this easy model — this guards the harness
        // wiring, not the paper's exact numbers.
        let models = vec![zoo::ncf()];
        let results = run(&models, &Platform::edge(), 150, 5);
        let cells = &results.rows[0].1;
        let digamma = cells[8].latency.expect("DiGamma finds a design");
        let cma = cells[CMA_COLUMN].latency.expect("CMA finds a design");
        assert!(digamma <= cma * 5.0, "digamma {digamma} vs cma {cma}");
    }
}
