//! Regenerates the design-space size estimates of Sec. I–II (E4).
//!
//! Usage:  cargo run -p digamma_bench --release --bin space

use digamma_encoding::space;
use digamma_workload::zoo;

fn main() {
    println!("# E4 — design-space cardinalities (log10)\n");
    println!(
        "paper HW envelope (128x128 PEs, 100 MB buffers): 10^{:.1}  (paper: O(10^12))",
        space::paper_hw_space_log10()
    );
    println!();
    println!("| model | mapping space (2 levels) | joint HW x mapping |");
    println!("|---|---|---|");
    for model in zoo::all_models() {
        println!(
            "| {} | 10^{:.0} | 10^{:.0} |",
            model.name(),
            space::log10_mapping_space(&model, 2),
            space::log10_joint_space(&model, 2)
        );
    }
    println!();
    println!(
        "naive two-loop sampling cost (10K outer x 160-point GAMMA runs): {} samples",
        space::two_loop_sample_cost(10_000, 160)
    );
    println!("co-opt budget used throughout this reproduction: 40K samples (paper Sec. V-A)");
}
