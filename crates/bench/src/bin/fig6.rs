//! Regenerates paper Fig. 6: HW-opt vs Mapping-opt vs co-optimization.
//!
//! Usage:
//!   cargo run -p digamma_bench --release --bin fig6 -- \
//!       [--budget 2000] [--seed 0] [--models ncf,dlrm] [--platforms edge,cloud]

use digamma_bench::{fig6, resolve_models, Args};
use digamma_costmodel::Platform;

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let budget = args.get_usize("budget", 2000);
    let seed = args.get_u64("seed", 0);
    let models = resolve_models(args.get("models"));
    let platforms: Vec<Platform> = match args.get("platforms") {
        Some(s) => s
            .split(',')
            .map(|p| match p.trim() {
                "edge" => Platform::edge(),
                "cloud" => Platform::cloud(),
                other => panic!("unknown platform: {other}"),
            })
            .collect(),
        None => vec![Platform::edge(), Platform::cloud()],
    };

    println!("# E2 / Fig. 6 — budget {budget} samples, seed {seed}\n");
    for platform in &platforms {
        eprintln!("running {} ({} models x 7 schemes)...", platform.name, models.len());
        let results = fig6::run(&models, platform, budget, seed);
        println!("{}", fig6::table(&results).to_markdown());
    }
}
