//! Latency-vs-area Pareto sweep: runs DiGamma across a geometric ladder
//! of area budgets between the paper's edge (0.2 mm²) and cloud (7 mm²)
//! settings, tracing how the optimal design scales. An extension beyond
//! the paper's two operating points.
//!
//! Usage:
//!   cargo run --release -p digamma-bench --bin pareto -- \
//!       [--budget 1500] [--model resnet18] [--points 6] [--seed 0]

use digamma::{CoOptProblem, DiGamma, DiGammaConfig, Objective};
use digamma_bench::Args;
use digamma_costmodel::Platform;
use digamma_workload::zoo;

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let budget = args.get_usize("budget", 1500);
    let points = args.get_usize("points", 6);
    let seed = args.get_u64("seed", 0);
    let model_name = args.get("model").unwrap_or("resnet18");
    let model = zoo::by_name(model_name).expect("model");

    println!("# Pareto sweep — {model_name}, {points} area points, budget {budget}\n");
    println!("| area budget (mm²) | latency (cycles) | PEs | L2 (words) | PE:buffer |");
    println!("|---|---|---|---|---|");

    let lo: f64 = 0.2e6;
    let hi: f64 = 7.0e6;
    for i in 0..points {
        let frac = i as f64 / (points - 1).max(1) as f64;
        let area = lo * (hi / lo).powf(frac);
        let mut platform = Platform::cloud();
        platform.name = format!("sweep-{i}");
        platform.area_budget_um2 = area;
        // Scale bandwidth with the budget between the two paper settings.
        let edge = Platform::edge();
        let cloud = Platform::cloud();
        platform.bw_dram = edge.bw_dram * (cloud.bw_dram / edge.bw_dram).powf(frac);
        platform.bw_noc = edge.bw_noc * (cloud.bw_noc / edge.bw_noc).powf(frac);

        let problem = CoOptProblem::new(model.clone(), platform, Objective::Latency);
        let cfg = DiGammaConfig { seed: seed + i as u64, threads: 4, ..Default::default() };
        match DiGamma::new(cfg).search(&problem, budget).best {
            Some(d) => {
                let (pe, buf) = d.area_ratio_percent();
                println!(
                    "| {:.2} | {:.3e} | {} | {} | {pe:.0}:{buf:.0} |",
                    area / 1e6,
                    d.latency_cycles,
                    d.hw.num_pes(),
                    d.hw.l2_words
                );
            }
            None => println!("| {:.2} | N/A | - | - | - |", area / 1e6),
        }
    }
}
