//! Latency-vs-area Pareto sweep: runs DiGamma across a geometric ladder
//! of area budgets between the paper's edge (0.2 mm²) and cloud (7 mm²)
//! settings, tracing how the optimal design scales. An extension beyond
//! the paper's two operating points.
//!
//! Usage:
//!   cargo run --release -p digamma_bench --bin pareto -- \
//!       [--budget 1500] [--model resnet18] [--points 6] [--seed 0]

use digamma_bench::{pareto, Args};
use digamma_workload::zoo;

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let budget = args.get_usize("budget", 1500);
    let points = args.get_usize("points", 6);
    let seed = args.get_u64("seed", 0);
    let model_name = args.get("model").unwrap_or("resnet18");
    let model = zoo::by_name(model_name).expect("model");

    eprintln!("sweeping {points} area points, budget {budget}...");
    let sweep = pareto::run(&model, points, budget, seed);
    println!("{}", pareto::table(model_name, &sweep).to_markdown());
}
