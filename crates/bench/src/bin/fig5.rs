//! Regenerates paper Fig. 5: baseline optimization algorithms vs DiGamma.
//!
//! Usage:
//!   cargo run -p digamma_bench --release --bin fig5 -- \
//!       [--budget 2000] [--seed 0] [--models ncf,dlrm] [--platforms edge,cloud]
//!
//! The paper uses a 40 000-sample budget; the default here is 2 000 so a
//! full run finishes in minutes on a laptop. Pass `--budget 40000` for
//! the paper-scale experiment.

use digamma_bench::{fig5, resolve_models, Args};
use digamma_costmodel::Platform;

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let budget = args.get_usize("budget", 2000);
    let seed = args.get_u64("seed", 0);
    let models = resolve_models(args.get("models"));
    let platforms: Vec<Platform> = match args.get("platforms") {
        Some(s) => s
            .split(',')
            .map(|p| match p.trim() {
                "edge" => Platform::edge(),
                "cloud" => Platform::cloud(),
                other => panic!("unknown platform: {other}"),
            })
            .collect(),
        None => vec![Platform::edge(), Platform::cloud()],
    };

    println!("# E1 / Fig. 5 — budget {budget} samples, seed {seed}\n");
    for platform in &platforms {
        eprintln!("running {} ({} models x 9 algorithms)...", platform.name, models.len());
        let results = fig5::run(&models, platform, budget, seed);
        let (latency, lat_area) = fig5::tables(&results);
        println!("{}", latency.to_markdown());
        println!("{}", lat_area.to_markdown());
    }
}
