//! `perf`: the evaluator perf harness → `BENCH_eval.json`.
//!
//! ```text
//! cargo run --release -p digamma_bench --bin perf -- [--mode full|smoke] [--out BENCH_eval.json]
//! ```
//!
//! Runs the fixed seeded workloads (`gemm`, `vgg16`, `bert`) through
//! the allocating baseline and the scratch evaluation paths, the
//! cold/warm memo searches, the metrics-on vs metrics-off
//! instrumentation comparison, and the analytics-on vs analytics-off
//! full-search comparison, writes the JSON report, re-validates
//! it, and exits non-zero if either timed comparison ever diverged
//! bit-wise or the file is malformed. Recorded numbers come from
//! `--mode full` on a release build; CI runs `--mode smoke`.

use digamma_bench::perfjson::{render_json, run, validate_json, PerfConfig};
use digamma_bench::Args;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let config = match args.get("mode").unwrap_or("full") {
        "full" => PerfConfig::full(),
        "smoke" => PerfConfig::smoke(),
        other => {
            eprintln!("perf: unknown --mode {other:?} (full | smoke)");
            return ExitCode::FAILURE;
        }
    };
    let out = args.get("out").unwrap_or("BENCH_eval.json").to_owned();

    let report = run(&config);
    for e in &report.eval {
        println!(
            "eval  {:<8} {:>6} evals | baseline {:>9.1} ns/eval | scratch {:>9.1} ns/eval | {:.2}x | bit-identical: {}",
            e.workload, e.evals, e.baseline_ns_per_eval, e.scratch_ns_per_eval, e.speedup, e.bit_identical
        );
    }
    for m in &report.memo {
        println!(
            "memo  {:<8} cold {:>8.1} ms | warm {:>8.1} ms | {:.2}x | warm genome hit rate {:.3}",
            m.workload, m.cold_wall_ms, m.warm_wall_ms, m.warm_speedup, m.warm_genome_hit_rate
        );
    }
    for p in &report.instrumentation {
        println!(
            "instr {:<8} {:>6} evals | metrics off {:>11.0} evals/s | on {:>11.0} evals/s | overhead {:>6.2}% | bit-identical: {}",
            p.workload,
            p.evals,
            p.metrics_off_evals_per_sec,
            p.metrics_on_evals_per_sec,
            p.overhead_pct,
            p.bit_identical
        );
    }

    for f in &report.fault_injection {
        println!(
            "fault {:<8} {:>6} evals | faults off {:>11.0} evals/s | disarmed {:>11.0} evals/s | overhead {:>6.2}% | bit-identical: {}",
            f.workload,
            f.evals,
            f.faults_off_evals_per_sec,
            f.faults_on_evals_per_sec,
            f.overhead_pct,
            f.bit_identical
        );
    }
    for a in &report.analytics {
        println!(
            "ga    {:<8} {:>6} evals | analytics off {:>9.0} evals/s | on {:>9.0} evals/s | overhead {:>6.2}% | bit-identical: {}",
            a.workload,
            a.evals,
            a.analytics_off_evals_per_sec,
            a.analytics_on_evals_per_sec,
            a.overhead_pct,
            a.bit_identical
        );
    }

    let json = render_json(&report);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("perf: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    let written = match std::fs::read_to_string(&out) {
        Ok(written) => written,
        Err(e) => {
            eprintln!("perf: cannot re-read {out}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_json(&written) {
        eprintln!("perf: {out} is malformed: {e}");
        return ExitCode::FAILURE;
    }
    if report.eval.iter().any(|e| !e.bit_identical) {
        eprintln!("perf: scratch path diverged from the allocating baseline — numbers are void");
        return ExitCode::FAILURE;
    }
    if report.instrumentation.iter().any(|p| !p.bit_identical) {
        eprintln!("perf: attaching metrics changed evaluation results — numbers are void");
        return ExitCode::FAILURE;
    }
    if report.fault_injection.iter().any(|f| !f.bit_identical) {
        eprintln!("perf: a disarmed failpoint set changed evaluation results — numbers are void");
        return ExitCode::FAILURE;
    }
    if report.analytics.iter().any(|a| !a.bit_identical) {
        eprintln!("perf: enabling search analytics changed the search itself — numbers are void");
        return ExitCode::FAILURE;
    }
    println!("perf: wrote {out}");
    ExitCode::SUCCESS
}
