//! Regenerates paper Fig. 7: the solutions found for MnasNet at edge.
//!
//! Usage:
//!   cargo run -p digamma_bench --release --bin fig7 -- \
//!       [--budget 2000] [--seed 0] [--model mnasnet]

use digamma_bench::{fig7, Args};
use digamma_costmodel::Platform;
use digamma_workload::zoo;

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let budget = args.get_usize("budget", 2000);
    let seed = args.get_u64("seed", 0);
    let model_name = args.get("model").unwrap_or("mnasnet");
    let model = zoo::by_name(model_name).unwrap_or_else(|| panic!("unknown model {model_name}"));
    let platform = Platform::edge();

    println!("# E3 / Fig. 7 — {model_name} @ edge, budget {budget}, seed {seed}\n");
    let solutions = fig7::run(&model, &platform, budget, seed);
    println!("{}", fig7::table(&solutions, platform.area_budget_um2).to_markdown());

    // The costliest unique layer's genes, paper-style, per scheme.
    for s in &solutions {
        if let Some(d) = &s.design {
            println!("encoding — {} (layer 0 genes):", s.scheme);
            println!("{}", fig7::encoding_snippet(&d.genome, 0));
        }
    }
}
