//! Diagnostic: prints best-so-far cost at deciles of the budget for
//! DiGamma and GAMMA on one model, to inspect search progress.
//!
//! Usage: cargo run --release -p digamma_bench --bin probe -- \
//!     [--budget 2000] [--model mnasnet] [--seed 1]

use digamma::schemes::HwPreset;
use digamma::{CoOptProblem, DiGamma, DiGammaConfig, Gamma, GammaConfig, Objective};
use digamma_bench::Args;
use digamma_costmodel::Platform;
use digamma_workload::zoo;

fn deciles(history: &[f64]) -> Vec<f64> {
    (1..=10).map(|i| history[history.len() * i / 10 - 1]).collect()
}

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let budget = args.get_usize("budget", 2000);
    let seed = args.get_u64("seed", 1);
    let model_name = args.get("model").unwrap_or("mnasnet");
    let model = zoo::by_name(model_name).expect("model");
    let platform = Platform::edge();
    let problem = CoOptProblem::new(model, platform.clone(), Objective::Latency);

    let cfg = DiGammaConfig { seed, threads: 4, ..Default::default() };
    let r = DiGamma::new(cfg).search(&problem, budget);
    println!("digamma deciles: {:?}", deciles(&r.history));
    if let Some(b) = &r.best {
        println!("  best area fill: {:.3}", b.area_um2 / platform.area_budget_um2);
    }

    let cfg = DiGammaConfig { seed, threads: 4, template_seeding: false, ..Default::default() };
    let r = DiGamma::new(cfg).search(&problem, budget);
    println!("digamma (random init) deciles: {:?}", deciles(&r.history));

    let preset = HwPreset::ComputeFocused.build(&platform, problem.evaluator().area_model());
    let g = Gamma::new(GammaConfig { seed, threads: 4, ..Default::default() })
        .search(&problem, &preset, budget);
    println!("gamma   deciles: {:?}", deciles(&g.history));
}
