//! Runs the DiGamma operator ablation (E5).
//!
//! Usage:
//!   cargo run -p digamma_bench --release --bin ablation -- \
//!       [--budget 2000] [--seed 0] [--models mnasnet,resnet18]

use digamma_bench::{ablation, resolve_models, Args};
use digamma_costmodel::Platform;

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let budget = args.get_usize("budget", 2000);
    let seed = args.get_u64("seed", 0);
    let models = match args.get("models") {
        Some(names) => resolve_models(Some(names)),
        None => resolve_models(Some("mnasnet,resnet18")),
    };
    let platform = Platform::edge();

    println!("# E5 — DiGamma operator ablation, budget {budget}, seed {seed}\n");
    for model in &models {
        eprintln!("running {} (7 variants)...", model.name());
        let rows = ablation::run(model, &platform, budget, seed);
        println!("{}", ablation::table(model.name(), &platform.name, &rows).to_markdown());
        println!(
            "{}",
            ablation::attribution_table(model.name(), &platform.name, &rows).to_markdown()
        );
    }
}
