//! Experiment E5: operator ablations of the DiGamma GA.
//!
//! The paper argues (Sec. IV-C, Fig. 4/5) that the *domain-aware*
//! operators are what separate DiGamma from stdGA. This harness removes
//! one operator family at a time and measures the damage at a fixed
//! sampling budget — the classic ablation the paper's Fig. 5 stdGA column
//! implies but does not tabulate.

use crate::report::{fmt_ratio, Table};
use digamma::{CoOptProblem, DiGamma, DiGammaConfig, Objective};
use digamma_costmodel::Platform;
use digamma_obs::{OpCounters, OpKind};
use digamma_workload::Model;

/// Ablation variants, each a config transformation of the full GA.
pub fn variants(seed: u64) -> Vec<(&'static str, DiGammaConfig)> {
    let full = DiGammaConfig { seed, ..DiGammaConfig::default() };
    vec![
        ("full DiGamma", full.clone()),
        ("no Mutate-HW", DiGammaConfig { mutate_hw_rate: 0.0, ..full.clone() }),
        ("no Grow/Aging", DiGammaConfig { grow_aging_rate: 0.0, ..full.clone() }),
        ("no Reorder", DiGammaConfig { reorder_rate: 0.0, ..full.clone() }),
        ("no Mutate-Map", DiGammaConfig { mutate_map_rate: 0.0, ..full.clone() }),
        ("no Crossover", DiGammaConfig { crossover_rate: 0.0, ..full.clone() }),
        ("random init (no template seeding)", DiGammaConfig { template_seeding: false, ..full }),
    ]
}

/// One ablation row: variant name, best latency found, and the
/// per-operator attribution the search recorded along the way.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub name: &'static str,
    /// Best feasible latency, if any.
    pub latency: Option<f64>,
    /// Cumulative operator attribution for this variant's search.
    pub ops: OpCounters,
}

/// Runs the ablation on one model/platform at a fixed budget.
///
/// Each variant is driven through `init`/`step` rather than
/// [`DiGamma::search`] so the [`OpCounters`] can be read off the state
/// before it is consumed — the attribution explains *why* an ablated
/// variant lost ground, not just that it did.
pub fn run(model: &Model, platform: &Platform, budget: usize, seed: u64) -> Vec<AblationRow> {
    let problem = CoOptProblem::new(model.clone(), platform.clone(), Objective::Latency);
    variants(seed)
        .into_iter()
        .map(|(name, cfg)| {
            let ga = DiGamma::new(cfg);
            let mut state = ga.init(&problem, budget);
            while ga.step(&problem, &mut state, budget) {}
            let ops = *state.op_counters();
            let result = state.into_result();
            AblationRow { name, latency: result.best.map(|b| b.latency_cycles), ops }
        })
        .collect()
}

/// Renders the ablation table normalized to the full GA.
pub fn table(model_name: &str, platform: &str, rows: &[AblationRow]) -> Table {
    let mut t = Table::new(
        format!("Ablation (E5) — {model_name} @ {platform}, latency vs full DiGamma"),
        vec!["normalized latency".into()],
    );
    let base = rows.first().and_then(|r| r.latency);
    for row in rows {
        let norm = match (row.latency, base) {
            (Some(v), Some(b)) if b > 0.0 => Some(v / b),
            (Some(v), _) => Some(v),
            _ => None,
        };
        t.push_row(row.name, vec![fmt_ratio(norm)]);
    }
    t
}

/// Renders the operator-attribution companion table: for each variant,
/// how many children each operator family produced and how many of
/// those became a new incumbent. An ablated family shows zero attempts
/// in its own row — and the interesting signal is where its incumbents
/// migrate in the remaining families.
pub fn attribution_table(model_name: &str, platform: &str, rows: &[AblationRow]) -> Table {
    let columns: Vec<String> = OpKind::ALL
        .iter()
        .flat_map(|k| [format!("{} att", k.name()), format!("{} inc", k.name())])
        .collect();
    let mut t = Table::new(
        format!("Operator attribution — {model_name} @ {platform}, attempted/incumbents"),
        columns,
    );
    for row in rows {
        let cells = OpKind::ALL
            .iter()
            .flat_map(|k| {
                let c = row.ops.get(*k);
                [c.attempted.to_string(), c.incumbents.to_string()]
            })
            .collect();
        t.push_row(row.name, cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_workload::zoo;

    #[test]
    fn ablation_covers_all_operator_families() {
        let names: Vec<&str> = variants(0).iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"no Mutate-HW"));
        assert!(names.contains(&"no Grow/Aging"));
        assert_eq!(names[0], "full DiGamma");
    }

    #[test]
    fn ablation_runs_and_renders() {
        let rows = run(&zoo::ncf(), &Platform::edge(), 100, 23);
        assert_eq!(rows.len(), 7);
        let t = table("ncf", "edge", &rows);
        let md = t.to_markdown();
        assert!(md.contains("full DiGamma"));
        // The full variant normalizes to exactly 1.0.
        assert!(md.contains("| full DiGamma | 1.0 |"));
    }

    #[test]
    fn ablation_rows_carry_operator_attribution() {
        let budget = 100;
        let rows = run(&zoo::ncf(), &Platform::edge(), budget, 23);
        let population = DiGammaConfig::default().population_size;
        for row in &rows {
            // Every stepped child is tagged exactly once, whatever the
            // ablation: attempts always sum to budget − initial pop.
            assert_eq!(
                row.ops.total_attempted() as usize,
                budget - population,
                "{}: attribution must cover the budget",
                row.name
            );
        }
        // Switching off an operator family zeroes its own attribution.
        let no_crossover = rows.iter().find(|r| r.name == "no Crossover").unwrap();
        assert_eq!(no_crossover.ops.get(OpKind::Crossover).attempted, 0);
        let full = &rows[0];
        assert!(full.ops.get(OpKind::Crossover).attempted > 0);

        let md = attribution_table("ncf", "edge", &rows).to_markdown();
        assert!(md.contains("crossover att"));
        assert!(md.contains("| no Crossover |"));
    }
}
