//! Latency-vs-area Pareto sweep: DiGamma across a geometric ladder of
//! area budgets between the paper's edge (0.2 mm²) and cloud (7 mm²)
//! settings, tracing how the optimal design scales. An extension beyond
//! the paper's two operating points.

use crate::report::Table;
use digamma::{CoOptProblem, DesignPoint, DiGamma, DiGammaConfig, Objective};
use digamma_costmodel::Platform;
use digamma_workload::Model;

/// One rung of the area-budget ladder and the best design found on it.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The area budget of this rung in µm².
    pub area_budget_um2: f64,
    /// Best feasible design within the budget, if any.
    pub design: Option<DesignPoint>,
}

/// The sweep's end points: the paper's edge and cloud area budgets.
const AREA_LO_UM2: f64 = 0.2e6;
const AREA_HI_UM2: f64 = 7.0e6;

/// The interpolated platform for rung `i` of a `points`-rung ladder:
/// area budget and bandwidths scale geometrically from edge to cloud.
pub fn sweep_platform(i: usize, points: usize) -> Platform {
    let frac = i as f64 / (points - 1).max(1) as f64;
    let edge = Platform::edge();
    let cloud = Platform::cloud();
    let mut platform = Platform::cloud();
    platform.name = format!("sweep-{i}");
    platform.area_budget_um2 = AREA_LO_UM2 * (AREA_HI_UM2 / AREA_LO_UM2).powf(frac);
    platform.bw_dram = edge.bw_dram * (cloud.bw_dram / edge.bw_dram).powf(frac);
    platform.bw_noc = edge.bw_noc * (cloud.bw_noc / edge.bw_noc).powf(frac);
    platform
}

/// Runs the sweep: one DiGamma search per rung.
pub fn run(model: &Model, points: usize, budget: usize, seed: u64) -> Vec<ParetoPoint> {
    (0..points)
        .map(|i| {
            let platform = sweep_platform(i, points);
            let area_budget_um2 = platform.area_budget_um2;
            let problem = CoOptProblem::new(model.clone(), platform, Objective::Latency);
            let cfg = DiGammaConfig { seed: seed + i as u64, ..Default::default() };
            let design = DiGamma::new(cfg).search(&problem, budget).best;
            ParetoPoint { area_budget_um2, design }
        })
        .collect()
}

/// Renders the sweep as the markdown table the binary prints.
pub fn table(model_name: &str, sweep: &[ParetoPoint]) -> Table {
    let mut t = Table::new(
        format!("Pareto sweep — {model_name}, latency vs area budget"),
        ["area budget (mm²)", "latency (cycles)", "PEs", "L2 (words)", "PE:buffer"]
            .map(String::from)
            .to_vec(),
    );
    for (i, p) in sweep.iter().enumerate() {
        let area = format!("{:.2}", p.area_budget_um2 / 1e6);
        let cells = match &p.design {
            Some(d) => {
                let (pe, buf) = d.area_ratio_percent();
                vec![
                    area,
                    format!("{:.3e}", d.latency_cycles),
                    d.hw.num_pes().to_string(),
                    d.hw.l2_words.to_string(),
                    format!("{pe:.0}:{buf:.0}"),
                ]
            }
            None => vec![area, "N/A".into(), "-".into(), "-".into(), "-".into()],
        };
        t.push_row(format!("p{i}"), cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_workload::zoo;

    #[test]
    fn sweep_covers_the_ladder_and_finds_designs() {
        // Tiny budget: this guards the harness wiring, not the numbers.
        let sweep = run(&zoo::ncf(), 3, 80, 1);
        assert_eq!(sweep.len(), 3);
        assert!(sweep[0].area_budget_um2 < sweep[2].area_budget_um2);
        assert!(sweep.iter().any(|p| p.design.is_some()), "no rung found any design at budget 80");
        for p in &sweep {
            if let Some(d) = &p.design {
                assert!(d.area_um2 <= p.area_budget_um2);
            }
        }
    }

    #[test]
    fn larger_budgets_admit_no_slower_designs() {
        let sweep = run(&zoo::ncf(), 2, 150, 2);
        if let (Some(lo), Some(hi)) = (&sweep[0].design, &sweep[1].design) {
            // 35× the area budget should never cost latency (allow a
            // small slack for search noise at tiny budgets).
            assert!(hi.latency_cycles <= lo.latency_cycles * 1.5);
        }
    }

    #[test]
    fn table_renders_every_rung() {
        let sweep = run(&zoo::ncf(), 2, 60, 3);
        let md = table("ncf", &sweep).to_markdown();
        assert!(md.contains("p0") && md.contains("p1"));
        assert!(md.contains("area budget"));
    }

    #[test]
    fn sweep_platform_interpolates_between_edge_and_cloud() {
        let first = sweep_platform(0, 5);
        let last = sweep_platform(4, 5);
        assert!((first.area_budget_um2 - 0.2e6).abs() < 1.0);
        assert!((last.area_budget_um2 - 7.0e6).abs() < 1.0);
        assert!((first.bw_dram - Platform::edge().bw_dram).abs() < 1e-9);
        assert!((last.bw_dram - Platform::cloud().bw_dram).abs() < 1e-9);
    }
}
