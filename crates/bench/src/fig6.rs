//! Experiment E2 (paper Fig. 6): optimization *schemes* compared.
//!
//! Three families, same area budget:
//!
//! * **HW-opt** — grid search over hardware with a fixed manual mapping
//!   (dla-like / shi-like / eye-like),
//! * **Mapping-opt** — GAMMA mapping search on a fixed HW preset
//!   (Buffer-focused / Medium-Buf-Com / Compute-focused),
//! * **HW-Map-co-opt** — DiGamma searching both.
//!
//! Values are latencies normalized by the best-performing baseline
//! (Compute-focused + GAMMA), as in the paper.

use crate::geomean;
use crate::report::{fmt_ratio, Table};
use digamma::schemes::HwPreset;
use digamma::{
    hw_grid_search, CoOptProblem, DiGamma, DiGammaConfig, Gamma, GammaConfig, MappingStyle,
    Objective,
};
use digamma_costmodel::Platform;
use digamma_workload::Model;

/// Scheme columns of Fig. 6, in paper order.
pub const COLUMNS: [&str; 7] = [
    "Grid-S HW + dla-like",
    "Grid-S HW + shi-like",
    "Grid-S HW + eye-like",
    "Buffer-focused + Gamma",
    "Medium-Buf-Com + Gamma",
    "Compute-focused + Gamma",
    "DiGamma",
];

/// Index of the normalization column (Compute-focused + Gamma).
pub const NORM_COLUMN: usize = 5;

/// Results for one platform: one row of per-scheme latencies per model.
#[derive(Debug, Clone)]
pub struct SchemeResults {
    /// Platform name.
    pub platform: String,
    /// `(model name, latency per scheme column)`.
    pub rows: Vec<(String, Vec<Option<f64>>)>,
}

/// Runs E2 for one platform.
pub fn run(models: &[Model], platform: &Platform, budget: usize, seed: u64) -> SchemeResults {
    let mut rows = Vec::new();
    for model in models {
        let problem = CoOptProblem::new(model.clone(), platform.clone(), Objective::Latency);
        let mut row: Vec<Option<f64>> = Vec::with_capacity(COLUMNS.len());

        // HW-opt: grid search × fixed mapping style.
        for style in MappingStyle::ALL {
            let r = hw_grid_search(&problem, style);
            row.push(r.best.map(|b| b.latency_cycles));
        }
        // Mapping-opt: GAMMA × fixed HW preset.
        for (pi, preset) in HwPreset::ALL.into_iter().enumerate() {
            let hw = preset.build(platform, problem.evaluator().area_model());
            let cfg = GammaConfig { seed: seed + pi as u64, ..GammaConfig::default() };
            let r = Gamma::new(cfg).search(&problem, &hw, budget);
            row.push(r.best.map(|b| b.latency_cycles));
        }
        // Co-opt: DiGamma.
        let cfg = DiGammaConfig { seed: seed + 50, ..DiGammaConfig::default() };
        let r = DiGamma::new(cfg).search(&problem, budget);
        row.push(r.best.map(|b| b.latency_cycles));

        rows.push((model.name().to_owned(), row));
    }
    SchemeResults { platform: platform.name.clone(), rows }
}

/// Renders the normalized Fig. 6 table (with GeoMean row).
pub fn table(results: &SchemeResults) -> Table {
    let mut t = Table::new(
        format!(
            "Fig. 6 ({}) — latency normalized to Compute-focused + Gamma (lower is better)",
            results.platform
        ),
        COLUMNS.iter().map(|s| s.to_string()).collect(),
    );
    let mut normalized: Vec<Vec<f64>> = vec![Vec::new(); COLUMNS.len()];
    for (model, row) in &results.rows {
        let base = row[NORM_COLUMN];
        let norm: Vec<Option<f64>> = row
            .iter()
            .map(|v| match (v, base) {
                (Some(v), Some(b)) if b > 0.0 => Some(v / b),
                (Some(v), _) => Some(*v),
                _ => None,
            })
            .collect();
        for (col, v) in norm.iter().enumerate() {
            if let Some(v) = v {
                normalized[col].push(*v);
            }
        }
        t.push_row(model.clone(), norm.iter().map(|v| fmt_ratio(*v)).collect());
    }
    let geo: Vec<String> =
        normalized.iter().map(|vs| fmt_ratio(geomean(vs.iter().copied()))).collect();
    t.push_row("GeoMean", geo);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_workload::zoo;

    #[test]
    fn small_fig6_run_covers_all_schemes() {
        let models = vec![zoo::ncf()];
        let results = run(&models, &Platform::edge(), 80, 7);
        assert_eq!(results.rows.len(), 1);
        assert_eq!(results.rows[0].1.len(), COLUMNS.len());
        // Every scheme should find *something* on this small model.
        for (i, v) in results.rows[0].1.iter().enumerate() {
            assert!(v.is_some(), "scheme {} found nothing", COLUMNS[i]);
        }
        let t = table(&results);
        assert!(t.to_markdown().contains("GeoMean"));
    }

    #[test]
    fn co_opt_beats_or_matches_fixed_hw_grid_on_small_model() {
        // The co-opt search space strictly contains each scheme's space,
        // so with a reasonable budget DiGamma should not lose by much.
        let models = vec![zoo::ncf()];
        let results = run(&models, &Platform::edge(), 300, 9);
        let row = &results.rows[0].1;
        let digamma = row[6].unwrap();
        let best_baseline = row[..6].iter().flatten().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(
            digamma <= best_baseline * 2.0,
            "digamma {digamma} vs best baseline {best_baseline}"
        );
    }
}
