//! Experiment E3 (paper Fig. 7): the solutions the three schemes find
//! for MnasNet at edge resources, side by side.
//!
//! The paper prints each winner's encoding (π, P, and ordered tile genes)
//! plus latency, area, latency·area product, and the PE : buffer area
//! ratio. The reproduction does the same for the scheme winners:
//! HW-opt (grid + dla-like), Mapping-opt (Compute-focused + GAMMA), and
//! DiGamma co-optimization.

use crate::report::{fmt_sci, Table};
use digamma::schemes::HwPreset;
use digamma::{
    hw_grid_search, CoOptProblem, DesignPoint, DiGamma, DiGammaConfig, Gamma, GammaConfig,
    MappingStyle, Objective,
};
use digamma_costmodel::Platform;
use digamma_encoding::Genome;
use digamma_workload::Model;

/// One scheme's winner.
#[derive(Debug, Clone)]
pub struct SchemeSolution {
    /// Scheme label as printed in the figure.
    pub scheme: String,
    /// The winning design (None if the scheme found nothing feasible).
    pub design: Option<DesignPoint>,
}

/// Runs E3: returns the three scheme winners for `model` on `platform`.
pub fn run(model: &Model, platform: &Platform, budget: usize, seed: u64) -> Vec<SchemeSolution> {
    let problem = CoOptProblem::new(model.clone(), platform.clone(), Objective::Latency);

    let hw_opt = hw_grid_search(&problem, MappingStyle::DlaLike);
    let preset = HwPreset::ComputeFocused.build(platform, problem.evaluator().area_model());
    let map_opt = Gamma::new(GammaConfig { seed, ..GammaConfig::default() })
        .search(&problem, &preset, budget);
    let co_opt = DiGamma::new(DiGammaConfig { seed: seed + 1, ..DiGammaConfig::default() })
        .search(&problem, budget);

    vec![
        SchemeSolution { scheme: "HW-opt (Grid-S HW + dla-like)".into(), design: hw_opt.best },
        SchemeSolution {
            scheme: "Mapping-opt (Compute-focused + Gamma)".into(),
            design: map_opt.best,
        },
        SchemeSolution { scheme: "HW-Map-co-opt (DiGamma)".into(), design: co_opt.best },
    ]
}

/// Renders the encoding of the costliest unique layer of a winner —
/// the per-layer gene string the paper shows.
pub fn encoding_snippet(genome: &Genome, layer_index: usize) -> String {
    let single = Genome {
        fanouts: genome.fanouts.clone(),
        layers: vec![genome.layers[layer_index].clone()],
    };
    single.to_string()
}

/// Builds the Fig. 7 metric table.
pub fn table(solutions: &[SchemeSolution], budget_um2: f64) -> Table {
    let mut t = Table::new(
        format!("Fig. 7 — found solutions (area constraint {:.2E} um2)", budget_um2),
        vec![
            "Latency (cycles)".into(),
            "Area (um2)".into(),
            "Lat-Area-Product".into(),
            "PE : Buffer area".into(),
        ],
    );
    for s in solutions {
        match &s.design {
            None => t.push_row(s.scheme.clone(), vec!["N/A".into(); 4]),
            Some(d) => {
                let (pe, buf) = d.area_ratio_percent();
                t.push_row(
                    s.scheme.clone(),
                    vec![
                        fmt_sci(d.latency_cycles),
                        fmt_sci(d.area_um2),
                        fmt_sci(d.latency_area_product()),
                        format!("{pe:.0} : {buf:.0}"),
                    ],
                );
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_workload::zoo;

    #[test]
    fn fig7_produces_three_schemes_with_designs() {
        // NCF instead of MnasNet to keep the test fast; the binary runs
        // the paper's MnasNet setting.
        let solutions = run(&zoo::ncf(), &Platform::edge(), 120, 11);
        assert_eq!(solutions.len(), 3);
        for s in &solutions {
            assert!(s.design.is_some(), "{} found nothing", s.scheme);
        }
        let t = table(&solutions, Platform::edge().area_budget_um2);
        let md = t.to_markdown();
        assert!(md.contains("DiGamma"));
        assert!(md.contains(" : "));
    }

    #[test]
    fn encoding_snippet_renders_pi_and_genes() {
        let solutions = run(&zoo::ncf(), &Platform::edge(), 60, 13);
        let d = solutions[2].design.as_ref().unwrap();
        let snippet = encoding_snippet(&d.genome, 0);
        assert!(snippet.contains("pi_L2"));
        assert!(snippet.contains("P:"));
    }

    #[test]
    fn all_winners_respect_the_budget() {
        let solutions = run(&zoo::dlrm(), &Platform::edge(), 100, 17);
        for s in solutions {
            let d = s.design.unwrap();
            assert!(d.area_um2 <= Platform::edge().area_budget_um2 + 1.0, "{}", s.scheme);
        }
    }
}
