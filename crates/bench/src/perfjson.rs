//! The evaluator perf harness: fixed seeded workloads → `BENCH_eval.json`.
//!
//! Every perf claim in this repository is anchored to the cost model's
//! evaluation throughput (the paper's whole speed argument rests on the
//! MAESTRO-style evaluation block being cheap to call millions of
//! times). This module measures it reproducibly and emits a JSON file —
//! `BENCH_eval.json` — that seeds the repo's performance trajectory;
//! future perf PRs are judged against it.
//!
//! Three fixed seeded workloads (`gemm`, `vgg16`, `bert`) are measured
//! three ways:
//!
//! * **eval** — raw `(layer, mapping) → CostReport` throughput, the
//!   allocating pre-change path (`Evaluator::evaluate_baseline`) vs the
//!   scratch path (`Evaluator::evaluate_with_scratch`), same seeded
//!   mapping set, with a bit-identity checksum gate: a speedup measured
//!   on diverging results would be meaningless.
//! * **memo** — a cold search followed by an identical warm search on a
//!   shared server, recording the genome-memo / per-layer-cache /
//!   batch-dedupe counters and the warm-over-cold wall-clock ratio.
//! * **instrumentation** — `CoOptProblem::evaluate_batch` throughput
//!   with the metrics registry detached vs attached
//!   ([`digamma::EvalMetrics`]), guarding the observability layer's
//!   promise that the eval hot path stays allocation-free and within a
//!   few percent of the uninstrumented speed, again behind a
//!   bit-identity checksum gate.
//! * **tracing** — the same paired measurement for the span tracer
//!   ([`digamma::EvalTrace`]): evaluation throughput with no tracer vs
//!   with sampled eval spans recording into a live [`Tracer`], guarding
//!   the tracing layer's promise that sampled spans stay within a few
//!   percent and change no results.
//! * **fault_injection** — the same paired measurement for the
//!   failpoint framework ([`digamma_obs::FailSet`]): evaluation
//!   throughput with no failpoint set vs with a set attached but
//!   *disarmed*, guarding the chaos layer's promise that every
//!   production `evaluate_batch` call pays at most one relaxed atomic
//!   load (≈1% budget) for the ability to inject faults at all.
//! * **analytics** — the same paired measurement one layer up, at the
//!   search loop: a full seeded `DiGamma::search` with
//!   [`digamma::DiGammaConfig::analytics`] off vs on, guarding the
//!   search-introspection layer's promise that per-generation
//!   [`GenStats`](digamma_obs::GenStats) and operator attribution are
//!   pure bookkeeping over already-evaluated data — zero extra RNG
//!   draws, bit-identical incumbents and history, ≤1% search wall time.
//!
//! `--mode smoke` shrinks the budgets so CI can assert the file is
//! produced and well-formed in seconds; recorded numbers come from
//! `--mode full` on a release build (see the README's Performance
//! section).

use digamma::{CoOptProblem, DiGamma, DiGammaConfig, EvalMetrics, EvalTrace, Objective};
use digamma_costmodel::{EvalScratch, Evaluator, Mapping, Platform};
use digamma_encoding::Genome;
use digamma_obs::{FailSet, MetricsRegistry, SpanContext, Tracer};
use digamma_server::{JobAlgorithm, JobReport, JobSpec, SearchServer, ServerConfig};
use digamma_workload::{zoo, Layer, Model, UniqueLayer};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Harness knobs. `full()` is what recorded numbers use; `smoke()` is
/// the CI-sized variant.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Label recorded in the output (`full` or `smoke`).
    pub mode: String,
    /// Target `(layer, mapping)` evaluations per workload per path.
    pub evals_per_workload: usize,
    /// Timing repeats per path (the minimum is recorded).
    pub repeats: usize,
    /// Search budget for the memo measurement.
    pub memo_budget: usize,
    /// GA population for the memo measurement.
    pub memo_population: usize,
    /// RNG seed for mapping generation and the searches.
    pub seed: u64,
}

impl PerfConfig {
    /// The recorded-numbers configuration.
    pub fn full() -> PerfConfig {
        PerfConfig {
            mode: "full".to_owned(),
            evals_per_workload: 4096,
            repeats: 5,
            memo_budget: 600,
            memo_population: 20,
            seed: 7,
        }
    }

    /// The CI smoke configuration: seconds, not minutes.
    pub fn smoke() -> PerfConfig {
        PerfConfig {
            mode: "smoke".to_owned(),
            evals_per_workload: 64,
            repeats: 2,
            memo_budget: 48,
            memo_population: 8,
            seed: 7,
        }
    }
}

/// Raw-evaluator throughput for one workload.
#[derive(Debug, Clone)]
pub struct EvalPerf {
    /// Workload name (`gemm` / `vgg16` / `bert`).
    pub workload: String,
    /// `(layer, mapping)` evaluations per timed pass.
    pub evals: usize,
    /// Allocating pre-change path, nanoseconds per evaluation.
    pub baseline_ns_per_eval: f64,
    /// Scratch path, nanoseconds per evaluation.
    pub scratch_ns_per_eval: f64,
    /// Allocating path throughput.
    pub baseline_evals_per_sec: f64,
    /// Scratch path throughput.
    pub scratch_evals_per_sec: f64,
    /// `scratch_evals_per_sec / baseline_evals_per_sec`.
    pub speedup: f64,
    /// Whether both paths produced bit-identical report checksums (a
    /// `false` here invalidates the whole measurement).
    pub bit_identical: bool,
}

/// Memo-layer effectiveness for one workload (cold job then identical
/// warm job on one server).
#[derive(Debug, Clone)]
pub struct MemoPerf {
    /// Workload name.
    pub workload: String,
    /// Cold-search wall time in milliseconds.
    pub cold_wall_ms: f64,
    /// Warm (identical rerun) wall time in milliseconds.
    pub warm_wall_ms: f64,
    /// `cold_wall_ms / warm_wall_ms`.
    pub warm_speedup: f64,
    /// Genome-memo hits in the cold job (elite recurrence).
    pub cold_genome_hits: u64,
    /// Genome-memo hit rate of the warm job (expected ≈ 1).
    pub warm_genome_hit_rate: f64,
    /// Per-layer cache hits across both jobs.
    pub cache_hits: u64,
    /// Per-layer cache misses across both jobs.
    pub cache_misses: u64,
    /// Batch-local dedupe skips across both jobs.
    pub dedup_skipped: u64,
}

/// Instrumentation overhead for one workload: the same seeded
/// `evaluate_batch` calls with the metrics registry detached vs
/// attached. The observability layer's contract is that this stays
/// within a few percent (see the README's Observability section).
#[derive(Debug, Clone)]
pub struct InstrPerf {
    /// Workload name.
    pub workload: String,
    /// Per-layer evaluations per timed batch (before dedupe).
    pub evals: usize,
    /// Throughput with no metrics attached.
    pub metrics_off_evals_per_sec: f64,
    /// Throughput with tenant-labelled [`EvalMetrics`] attached to an
    /// enabled registry.
    pub metrics_on_evals_per_sec: f64,
    /// `(off - on) / off`, as a percentage — positive means the
    /// instrumented path is slower.
    pub overhead_pct: f64,
    /// Whether both paths produced bit-identical evaluation checksums.
    pub bit_identical: bool,
}

/// Tracing overhead for one workload: the same seeded
/// `evaluate_batch` calls with no tracer vs with an [`EvalTrace`]
/// recording sampled spans into a live [`Tracer`]. The tracing layer's
/// contract mirrors the metrics one: a few percent at most, results
/// bit-identical.
#[derive(Debug, Clone)]
pub struct TracePerf {
    /// Workload name.
    pub workload: String,
    /// Per-layer evaluations per timed batch (before dedupe).
    pub evals: usize,
    /// Throughput with no tracer attached.
    pub trace_off_evals_per_sec: f64,
    /// Throughput with sampled eval spans recording.
    pub trace_on_evals_per_sec: f64,
    /// `(off - on) / off`, as a percentage — positive means the traced
    /// path is slower.
    pub overhead_pct: f64,
    /// Whether both paths produced bit-identical evaluation checksums.
    pub bit_identical: bool,
}

/// Failpoint overhead for one workload: the same seeded
/// `evaluate_batch` calls with no [`FailSet`] attached vs with an
/// attached-but-disarmed set (the production shape of a binary built
/// with chaos support but no `--failpoints` flag). The contract is the
/// strictest of the observability trio: a disarmed hit is one relaxed
/// atomic load, so the overhead must stay ≈1%.
#[derive(Debug, Clone)]
pub struct FaultPerf {
    /// Workload name.
    pub workload: String,
    /// Per-layer evaluations per timed batch (before dedupe).
    pub evals: usize,
    /// Throughput with no failpoint set attached.
    pub faults_off_evals_per_sec: f64,
    /// Throughput with a disarmed [`FailSet`] attached.
    pub faults_on_evals_per_sec: f64,
    /// `(off - on) / off`, as a percentage — positive means the
    /// fault-capable path is slower.
    pub overhead_pct: f64,
    /// Whether both paths produced bit-identical evaluation checksums.
    pub bit_identical: bool,
}

/// Search-analytics overhead for one workload: the same seeded
/// [`DiGamma::search`] with [`DiGammaConfig::analytics`] off vs on.
/// Unlike the `evaluate_batch` trios above, this measurement covers the
/// whole search loop — selection, operators, evaluation, and the
/// per-generation [`GenStats`](digamma_obs::GenStats)/attribution
/// bookkeeping under test. The contract is the strongest in the file:
/// the analytics path draws no RNG, so the searches must be
/// *bit-identical* (same incumbent, same best-so-far history), not just
/// statistically equivalent.
#[derive(Debug, Clone)]
pub struct AnalyticsPerf {
    /// Workload name.
    pub workload: String,
    /// Design-point evaluations per search (the sampling budget).
    pub evals: usize,
    /// Completed generations per search.
    pub generations: u64,
    /// Search throughput with analytics disabled, evaluations/second.
    pub analytics_off_evals_per_sec: f64,
    /// Search throughput with analytics enabled.
    pub analytics_on_evals_per_sec: f64,
    /// `(off - on) / off`, as a percentage — positive means the
    /// analytics-enabled search is slower.
    pub overhead_pct: f64,
    /// Whether both searches produced bit-identical best-so-far
    /// histories and incumbent costs.
    pub bit_identical: bool,
}

/// The full harness output.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// The configuration that produced it.
    pub config: PerfConfig,
    /// Raw evaluator throughput per workload.
    pub eval: Vec<EvalPerf>,
    /// Memo effectiveness per workload.
    pub memo: Vec<MemoPerf>,
    /// Metrics-on vs metrics-off evaluation throughput per workload.
    pub instrumentation: Vec<InstrPerf>,
    /// Tracing-on vs tracing-off evaluation throughput per workload.
    pub tracing: Vec<TracePerf>,
    /// Disarmed-failpoints vs no-failpoints throughput per workload.
    pub fault_injection: Vec<FaultPerf>,
    /// Analytics-on vs analytics-off search throughput per workload.
    pub analytics: Vec<AnalyticsPerf>,
}

/// The three fixed workloads the harness sweeps.
pub fn workloads() -> Vec<Model> {
    vec![Model::new("gemm", vec![Layer::gemm("gemm", 256, 128, 256)]), zoo::vgg16(), zoo::bert()]
}

/// Seeded `(unique-layer index, mapping)` pairs for one workload:
/// random genomes decoded exactly as the search would decode them.
fn seeded_pairs(unique: &[UniqueLayer], target_evals: usize, seed: u64) -> Vec<(usize, Mapping)> {
    let platform = Platform::edge();
    let mut rng = SmallRng::seed_from_u64(seed);
    let genomes = target_evals.div_ceil(unique.len()).max(1);
    let mut pairs = Vec::with_capacity(genomes * unique.len());
    for _ in 0..genomes {
        let genome = Genome::random(&mut rng, unique, &platform, 2);
        for (li, mapping) in genome.decode(unique).into_iter().enumerate() {
            pairs.push((li, mapping));
        }
    }
    pairs
}

/// Minimum wall time over `repeats` runs of `pass`, in nanoseconds.
fn best_of<F: FnMut()>(repeats: usize, mut pass: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        pass();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn measure_eval(model: &Model, config: &PerfConfig) -> EvalPerf {
    let unique = model.unique_layers();
    let pairs = seeded_pairs(&unique, config.evals_per_workload, config.seed);
    let evaluator = Evaluator::new(Platform::edge());
    let mut scratch = EvalScratch::new();

    // Checksum gate: both paths must agree to the bit before any
    // timing is worth recording.
    let checksum = |report: &digamma_costmodel::CostReport| {
        report
            .latency_cycles
            .to_bits()
            .wrapping_mul(31)
            .wrapping_add(report.energy_pj.to_bits())
            .wrapping_add(report.buffers.l2_words)
    };
    let mut baseline_sum = 0u64;
    let mut scratch_sum = 0u64;
    for (li, mapping) in &pairs {
        let b = evaluator.evaluate_baseline(&unique[*li].layer, mapping).expect("valid mapping");
        let s = evaluator
            .evaluate_with_scratch(&unique[*li].layer, mapping, &mut scratch)
            .expect("valid mapping");
        baseline_sum = baseline_sum.wrapping_add(checksum(&b));
        scratch_sum = scratch_sum.wrapping_add(checksum(&s));
    }

    let baseline_ns = best_of(config.repeats, || {
        for (li, mapping) in &pairs {
            let report =
                evaluator.evaluate_baseline(&unique[*li].layer, mapping).expect("valid mapping");
            std::hint::black_box(&report);
        }
    });
    let scratch_ns = best_of(config.repeats, || {
        for (li, mapping) in &pairs {
            let report = evaluator
                .evaluate_with_scratch(&unique[*li].layer, mapping, &mut scratch)
                .expect("valid mapping");
            std::hint::black_box(&report);
        }
    });

    let evals = pairs.len();
    let baseline_ns_per_eval = baseline_ns / evals as f64;
    let scratch_ns_per_eval = scratch_ns / evals as f64;
    EvalPerf {
        workload: model.name().to_owned(),
        evals,
        baseline_ns_per_eval,
        scratch_ns_per_eval,
        baseline_evals_per_sec: 1e9 / baseline_ns_per_eval,
        scratch_evals_per_sec: 1e9 / scratch_ns_per_eval,
        speedup: baseline_ns_per_eval / scratch_ns_per_eval,
        bit_identical: baseline_sum == scratch_sum,
    }
}

fn measure_memo(model: &Model, config: &PerfConfig) -> MemoPerf {
    let server = SearchServer::new(ServerConfig { workers: 1, ..ServerConfig::default() });
    let job = |name: &str| {
        let mut spec = JobSpec::new(
            name,
            model.clone(),
            Platform::edge(),
            digamma::Objective::Latency,
            JobAlgorithm::DiGamma,
        );
        spec.budget = config.memo_budget;
        spec.population_size = config.memo_population;
        spec.seed = config.seed;
        spec
    };
    let cold: JobReport = server.run_job(&job("cold"));
    let warm: JobReport = server.run_job(&job("warm"));
    let cold_wall_ms = cold.wall.as_secs_f64() * 1e3;
    let warm_wall_ms = warm.wall.as_secs_f64() * 1e3;
    MemoPerf {
        workload: model.name().to_owned(),
        cold_wall_ms,
        warm_wall_ms,
        warm_speedup: cold_wall_ms / warm_wall_ms.max(1e-9),
        cold_genome_hits: cold.genome_hits,
        warm_genome_hit_rate: warm.genome_hit_rate(),
        cache_hits: cold.cache_hits + warm.cache_hits,
        cache_misses: cold.cache_misses + warm.cache_misses,
        dedup_skipped: cold.dedup_skipped + warm.dedup_skipped,
    }
}

fn measure_instrumentation(model: &Model, config: &PerfConfig) -> InstrPerf {
    let platform = Platform::edge();
    let unique = model.unique_layers();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let count = config.evals_per_workload.div_ceil(unique.len()).max(1);
    let genomes: Vec<Genome> =
        (0..count).map(|_| Genome::random(&mut rng, &unique, &platform, 2)).collect();

    // No caches and no memo on either problem: the measurement isolates
    // the metric hooks themselves, not the memo layers they count.
    let off = CoOptProblem::new(model.clone(), platform.clone(), Objective::Latency);
    let registry = MetricsRegistry::new();
    let on = CoOptProblem::new(model.clone(), platform, Objective::Latency)
        .with_eval_metrics(Arc::new(EvalMetrics::for_tenant(&registry, "bench")));

    // Bit-identity gate first: an overhead number measured on diverging
    // evaluations would be meaningless.
    let checksum = |evaluations: &[digamma::DesignEvaluation]| {
        evaluations.iter().fold(0u64, |acc, e| {
            acc.wrapping_mul(31)
                .wrapping_add(e.cost.to_bits())
                .wrapping_add(e.latency_cycles.to_bits())
                .wrapping_add(e.energy_pj.to_bits())
        })
    };
    let off_sum = checksum(&off.evaluate_batch(&genomes, 1));
    let on_sum = checksum(&on.evaluate_batch(&genomes, 1));

    // The expected delta is ~1%, far below run-to-run machine drift,
    // so the comparison is made *pairwise*: each iteration times an
    // off pass and an on pass back-to-back (several batches each, so
    // scheduler hiccups amortize) and contributes one on/off ratio.
    // The pair order alternates every iteration — a machine that slows
    // down across a pair would otherwise systematically tax whichever
    // path runs second — and the overhead is the median of the ratios:
    // a slow spell lands on both halves of a pair and cancels, and
    // outlier pairs cannot decide the result the way they decide
    // independent minima.
    const BATCHES_PER_PASS: usize = 2;
    let mut off_ns = f64::INFINITY;
    let mut ratios = Vec::new();
    for i in 0..(config.repeats * 16).max(2) {
        let pass = |problem: &CoOptProblem| {
            let start = Instant::now();
            for _ in 0..BATCHES_PER_PASS {
                std::hint::black_box(problem.evaluate_batch(&genomes, 1));
            }
            start.elapsed().as_nanos() as f64 / BATCHES_PER_PASS as f64
        };
        let (off_pass, on_pass) = if i % 2 == 0 {
            let off_pass = pass(&off);
            (off_pass, pass(&on))
        } else {
            let on_pass = pass(&on);
            (pass(&off), on_pass)
        };
        off_ns = off_ns.min(off_pass);
        ratios.push(on_pass / off_pass);
    }
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[ratios.len() / 2];

    let evals = genomes.len() * unique.len();
    let metrics_off_evals_per_sec = evals as f64 / (off_ns / 1e9);
    InstrPerf {
        workload: model.name().to_owned(),
        evals,
        metrics_off_evals_per_sec,
        metrics_on_evals_per_sec: metrics_off_evals_per_sec / ratio,
        overhead_pct: (ratio - 1.0) * 100.0,
        bit_identical: off_sum == on_sum,
    }
}

/// The tracing twin of [`measure_instrumentation`]: identical pairing
/// and median-of-ratios scheme, but the "on" problem records sampled
/// eval spans into a live tracer instead of bumping metrics.
fn measure_tracing(model: &Model, config: &PerfConfig) -> TracePerf {
    let platform = Platform::edge();
    let unique = model.unique_layers();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let count = config.evals_per_workload.div_ceil(unique.len()).max(1);
    let genomes: Vec<Genome> =
        (0..count).map(|_| Genome::random(&mut rng, &unique, &platform, 2)).collect();

    let off = CoOptProblem::new(model.clone(), platform.clone(), Objective::Latency);
    let tracer = Tracer::new();
    let on = CoOptProblem::new(model.clone(), platform, Objective::Latency)
        .with_eval_trace(Arc::new(EvalTrace::new(tracer, SpanContext::generate(), 1)));

    let checksum = |evaluations: &[digamma::DesignEvaluation]| {
        evaluations.iter().fold(0u64, |acc, e| {
            acc.wrapping_mul(31)
                .wrapping_add(e.cost.to_bits())
                .wrapping_add(e.latency_cycles.to_bits())
                .wrapping_add(e.energy_pj.to_bits())
        })
    };
    let off_sum = checksum(&off.evaluate_batch(&genomes, 1));
    let on_sum = checksum(&on.evaluate_batch(&genomes, 1));

    // Same pairing rationale as measure_instrumentation: the expected
    // delta is small, so each iteration times both paths back-to-back
    // (order alternating) and the overhead is the median of the
    // per-pair ratios.
    const BATCHES_PER_PASS: usize = 2;
    let mut off_ns = f64::INFINITY;
    let mut ratios = Vec::new();
    for i in 0..(config.repeats * 16).max(2) {
        let pass = |problem: &CoOptProblem| {
            let start = Instant::now();
            for _ in 0..BATCHES_PER_PASS {
                std::hint::black_box(problem.evaluate_batch(&genomes, 1));
            }
            start.elapsed().as_nanos() as f64 / BATCHES_PER_PASS as f64
        };
        let (off_pass, on_pass) = if i % 2 == 0 {
            let off_pass = pass(&off);
            (off_pass, pass(&on))
        } else {
            let on_pass = pass(&on);
            (pass(&off), on_pass)
        };
        off_ns = off_ns.min(off_pass);
        ratios.push(on_pass / off_pass);
    }
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[ratios.len() / 2];

    let evals = genomes.len() * unique.len();
    let trace_off_evals_per_sec = evals as f64 / (off_ns / 1e9);
    TracePerf {
        workload: model.name().to_owned(),
        evals,
        trace_off_evals_per_sec,
        trace_on_evals_per_sec: trace_off_evals_per_sec / ratio,
        overhead_pct: (ratio - 1.0) * 100.0,
        bit_identical: off_sum == on_sum,
    }
}

/// The failpoint twin of [`measure_instrumentation`]: identical pairing
/// and median-of-ratios scheme, but the "on" problem carries a disarmed
/// [`FailSet`] — the shape every production search has once the binary
/// supports `--failpoints` at all.
fn measure_faults(model: &Model, config: &PerfConfig) -> FaultPerf {
    let platform = Platform::edge();
    let unique = model.unique_layers();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let count = config.evals_per_workload.div_ceil(unique.len()).max(1);
    let genomes: Vec<Genome> =
        (0..count).map(|_| Genome::random(&mut rng, &unique, &platform, 2)).collect();

    let off = CoOptProblem::new(model.clone(), platform.clone(), Objective::Latency);
    // Attached and *disarmed*: the set exists, no `worker.eval` action is
    // configured, so every batch pays exactly the advertised relaxed
    // atomic load and nothing fires.
    let on = CoOptProblem::new(model.clone(), platform, Objective::Latency)
        .with_eval_faults(Arc::new(FailSet::new()));

    let checksum = |evaluations: &[digamma::DesignEvaluation]| {
        evaluations.iter().fold(0u64, |acc, e| {
            acc.wrapping_mul(31)
                .wrapping_add(e.cost.to_bits())
                .wrapping_add(e.latency_cycles.to_bits())
                .wrapping_add(e.energy_pj.to_bits())
        })
    };
    let off_sum = checksum(&off.evaluate_batch(&genomes, 1));
    let on_sum = checksum(&on.evaluate_batch(&genomes, 1));

    // Same pairing rationale as measure_instrumentation: the expected
    // delta is far below machine drift, so each iteration times both
    // paths back-to-back (order alternating) and the overhead is the
    // median of the per-pair ratios.
    const BATCHES_PER_PASS: usize = 2;
    let mut off_ns = f64::INFINITY;
    let mut ratios = Vec::new();
    for i in 0..(config.repeats * 16).max(2) {
        let pass = |problem: &CoOptProblem| {
            let start = Instant::now();
            for _ in 0..BATCHES_PER_PASS {
                std::hint::black_box(problem.evaluate_batch(&genomes, 1));
            }
            start.elapsed().as_nanos() as f64 / BATCHES_PER_PASS as f64
        };
        let (off_pass, on_pass) = if i % 2 == 0 {
            let off_pass = pass(&off);
            (off_pass, pass(&on))
        } else {
            let on_pass = pass(&on);
            (pass(&off), on_pass)
        };
        off_ns = off_ns.min(off_pass);
        ratios.push(on_pass / off_pass);
    }
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[ratios.len() / 2];

    let evals = genomes.len() * unique.len();
    let faults_off_evals_per_sec = evals as f64 / (off_ns / 1e9);
    FaultPerf {
        workload: model.name().to_owned(),
        evals,
        faults_off_evals_per_sec,
        faults_on_evals_per_sec: faults_off_evals_per_sec / ratio,
        overhead_pct: (ratio - 1.0) * 100.0,
        bit_identical: off_sum == on_sum,
    }
}

/// The search-loop member of the paired family: a complete seeded
/// [`DiGamma::search`] with analytics off vs on, same pairing and
/// median-of-ratios scheme as [`measure_instrumentation`]. The budget
/// reuses the memo knobs — analytics cost scales with generations, and
/// the memo search is the harness's canonical "whole search" size.
fn measure_analytics(model: &Model, config: &PerfConfig) -> AnalyticsPerf {
    let platform = Platform::edge();
    let problem = CoOptProblem::new(model.clone(), platform, Objective::Latency);
    let budget = config.memo_budget;
    let ga = |analytics: bool| {
        DiGamma::new(DiGammaConfig {
            population_size: config.memo_population,
            threads: 1,
            analytics,
            seed: config.seed,
            ..DiGammaConfig::default()
        })
    };

    // Bit-identity gate first — and stricter than the evaluate_batch
    // measurements: the whole best-so-far trajectory must match, not
    // just a batch of independent evaluations. Any divergence means the
    // analytics path consumed RNG or reordered the search.
    let fingerprint = |result: &digamma::SearchResult| {
        let mut acc = result.samples as u64;
        for cost in &result.history {
            acc = acc.wrapping_mul(31).wrapping_add(cost.to_bits());
        }
        if let Some(best) = &result.best {
            acc = acc.wrapping_mul(31).wrapping_add(best.cost.to_bits());
        }
        acc
    };
    let off_result = ga(false).search(&problem, budget);
    let on_ga = ga(true);
    let mut on_state = on_ga.init(&problem, budget);
    while on_ga.step(&problem, &mut on_state, budget) {}
    let generations = on_state.generation();
    let on_result = on_state.into_result();
    let bit_identical = fingerprint(&off_result) == fingerprint(&on_result);
    let evals = off_result.samples;

    // Same pairing rationale as measure_instrumentation — the expected
    // delta is ≤1%, far below machine drift — but this section has to
    // resolve that delta against a baseline of whole searches, not a
    // single large `evaluate_batch`, so it works harder for its error
    // bars: each iteration times an off/on/on/off quartet (ABBA — any
    // linear-in-time drift such as turbo decay contributes equally to
    // both sides and cancels exactly, where plain alternation leaves a
    // bimodal ratio distribution whose median wobbles between modes)
    // and the overhead is the median of the per-quartet ratios.
    const SEARCHES_PER_PASS: usize = 4;
    let mut off_ns = f64::INFINITY;
    let mut ratios = Vec::new();
    for _ in 0..(config.repeats * 24).max(1) {
        let pass = |analytics: bool| {
            let start = Instant::now();
            for _ in 0..SEARCHES_PER_PASS {
                std::hint::black_box(ga(analytics).search(&problem, budget));
            }
            start.elapsed().as_nanos() as f64 / SEARCHES_PER_PASS as f64
        };
        let off_a = pass(false);
        let on_a = pass(true);
        let on_b = pass(true);
        let off_b = pass(false);
        off_ns = off_ns.min(off_a.min(off_b));
        ratios.push((on_a + on_b) / (off_a + off_b));
    }
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[ratios.len() / 2];

    let analytics_off_evals_per_sec = evals as f64 / (off_ns / 1e9);
    AnalyticsPerf {
        workload: model.name().to_owned(),
        evals,
        generations,
        analytics_off_evals_per_sec,
        analytics_on_evals_per_sec: analytics_off_evals_per_sec / ratio,
        overhead_pct: (ratio - 1.0) * 100.0,
        bit_identical,
    }
}

/// Runs the full harness.
pub fn run(config: &PerfConfig) -> PerfReport {
    let models = workloads();
    let eval = models.iter().map(|m| measure_eval(m, config)).collect();
    let memo = models.iter().map(|m| measure_memo(m, config)).collect();
    let instrumentation = models.iter().map(|m| measure_instrumentation(m, config)).collect();
    let tracing = models.iter().map(|m| measure_tracing(m, config)).collect();
    let fault_injection = models.iter().map(|m| measure_faults(m, config)).collect();
    let analytics = models.iter().map(|m| measure_analytics(m, config)).collect();
    PerfReport {
        config: config.clone(),
        eval,
        memo,
        instrumentation,
        tracing,
        fault_injection,
        analytics,
    }
}

/// JSON string escaping (the only non-trivial JSON need this file has —
/// workload names are ASCII identifiers, but be correct anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number: finite floats rounded to a stable precision, so the
/// file diffs cleanly between runs of the same build.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_owned()
    }
}

/// Renders the report as pretty-printed JSON (hand-rolled — the
/// workspace has no serde_json).
pub fn render_json(report: &PerfReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {},\n", json_str("digamma-bench-eval/5")));
    out.push_str(&format!("  \"mode\": {},\n", json_str(&report.config.mode)));
    out.push_str(&format!("  \"seed\": {},\n", report.config.seed));
    out.push_str("  \"eval\": [\n");
    for (i, e) in report.eval.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"workload\": {}, ", json_str(&e.workload)));
        out.push_str(&format!("\"evals\": {}, ", e.evals));
        out.push_str(&format!("\"baseline_ns_per_eval\": {}, ", json_num(e.baseline_ns_per_eval)));
        out.push_str(&format!("\"scratch_ns_per_eval\": {}, ", json_num(e.scratch_ns_per_eval)));
        out.push_str(&format!(
            "\"baseline_evals_per_sec\": {}, ",
            json_num(e.baseline_evals_per_sec)
        ));
        out.push_str(&format!(
            "\"scratch_evals_per_sec\": {}, ",
            json_num(e.scratch_evals_per_sec)
        ));
        out.push_str(&format!("\"speedup\": {}, ", json_num(e.speedup)));
        out.push_str(&format!("\"bit_identical\": {}", e.bit_identical));
        out.push_str(if i + 1 < report.eval.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"memo\": [\n");
    for (i, m) in report.memo.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"workload\": {}, ", json_str(&m.workload)));
        out.push_str(&format!("\"cold_wall_ms\": {}, ", json_num(m.cold_wall_ms)));
        out.push_str(&format!("\"warm_wall_ms\": {}, ", json_num(m.warm_wall_ms)));
        out.push_str(&format!("\"warm_speedup\": {}, ", json_num(m.warm_speedup)));
        out.push_str(&format!("\"cold_genome_hits\": {}, ", m.cold_genome_hits));
        out.push_str(&format!("\"warm_genome_hit_rate\": {}, ", json_num(m.warm_genome_hit_rate)));
        out.push_str(&format!("\"cache_hits\": {}, ", m.cache_hits));
        out.push_str(&format!("\"cache_misses\": {}, ", m.cache_misses));
        out.push_str(&format!("\"dedup_skipped\": {}", m.dedup_skipped));
        out.push_str(if i + 1 < report.memo.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"instrumentation\": [\n");
    for (i, p) in report.instrumentation.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"workload\": {}, ", json_str(&p.workload)));
        out.push_str(&format!("\"evals\": {}, ", p.evals));
        out.push_str(&format!(
            "\"metrics_off_evals_per_sec\": {}, ",
            json_num(p.metrics_off_evals_per_sec)
        ));
        out.push_str(&format!(
            "\"metrics_on_evals_per_sec\": {}, ",
            json_num(p.metrics_on_evals_per_sec)
        ));
        out.push_str(&format!("\"overhead_pct\": {}, ", json_num(p.overhead_pct)));
        out.push_str(&format!("\"bit_identical\": {}", p.bit_identical));
        out.push_str(if i + 1 < report.instrumentation.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"tracing\": [\n");
    for (i, t) in report.tracing.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"workload\": {}, ", json_str(&t.workload)));
        out.push_str(&format!("\"evals\": {}, ", t.evals));
        out.push_str(&format!(
            "\"trace_off_evals_per_sec\": {}, ",
            json_num(t.trace_off_evals_per_sec)
        ));
        out.push_str(&format!(
            "\"trace_on_evals_per_sec\": {}, ",
            json_num(t.trace_on_evals_per_sec)
        ));
        out.push_str(&format!("\"overhead_pct\": {}, ", json_num(t.overhead_pct)));
        out.push_str(&format!("\"bit_identical\": {}", t.bit_identical));
        out.push_str(if i + 1 < report.tracing.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"fault_injection\": [\n");
    for (i, f) in report.fault_injection.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"workload\": {}, ", json_str(&f.workload)));
        out.push_str(&format!("\"evals\": {}, ", f.evals));
        out.push_str(&format!(
            "\"faults_off_evals_per_sec\": {}, ",
            json_num(f.faults_off_evals_per_sec)
        ));
        out.push_str(&format!(
            "\"faults_on_evals_per_sec\": {}, ",
            json_num(f.faults_on_evals_per_sec)
        ));
        out.push_str(&format!("\"overhead_pct\": {}, ", json_num(f.overhead_pct)));
        out.push_str(&format!("\"bit_identical\": {}", f.bit_identical));
        out.push_str(if i + 1 < report.fault_injection.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"analytics\": [\n");
    for (i, a) in report.analytics.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"workload\": {}, ", json_str(&a.workload)));
        out.push_str(&format!("\"evals\": {}, ", a.evals));
        out.push_str(&format!("\"generations\": {}, ", a.generations));
        out.push_str(&format!(
            "\"analytics_off_evals_per_sec\": {}, ",
            json_num(a.analytics_off_evals_per_sec)
        ));
        out.push_str(&format!(
            "\"analytics_on_evals_per_sec\": {}, ",
            json_num(a.analytics_on_evals_per_sec)
        ));
        out.push_str(&format!("\"overhead_pct\": {}, ", json_num(a.overhead_pct)));
        out.push_str(&format!("\"bit_identical\": {}", a.bit_identical));
        out.push_str(if i + 1 < report.analytics.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Structural well-formedness check for the emitted JSON: balanced
/// braces/brackets outside strings, no trailing garbage, and every
/// required key present. CI runs this against the freshly-written
/// `BENCH_eval.json`.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate_json(text: &str) -> Result<(), String> {
    let mut depth_brace = 0i64;
    let mut depth_bracket = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth_brace += 1,
            '}' => depth_brace -= 1,
            '[' => depth_bracket += 1,
            ']' => depth_bracket -= 1,
            _ => {}
        }
        if depth_brace < 0 || depth_bracket < 0 {
            return Err(format!("unbalanced close at byte {i}"));
        }
        if depth_brace == 0
            && depth_bracket == 0
            && !c.is_whitespace()
            && i > 0
            && i + 1 < text.trim_end().len()
        {
            return Err(format!("trailing content after the root object at byte {i}"));
        }
    }
    if in_string {
        return Err("unterminated string".to_owned());
    }
    if depth_brace != 0 || depth_bracket != 0 {
        return Err("unbalanced braces/brackets".to_owned());
    }
    for key in [
        "\"schema\"",
        "\"mode\"",
        "\"seed\"",
        "\"eval\"",
        "\"memo\"",
        "\"workload\"",
        "\"baseline_ns_per_eval\"",
        "\"scratch_ns_per_eval\"",
        "\"speedup\"",
        "\"bit_identical\"",
        "\"warm_genome_hit_rate\"",
        "\"instrumentation\"",
        "\"metrics_off_evals_per_sec\"",
        "\"metrics_on_evals_per_sec\"",
        "\"overhead_pct\"",
        "\"tracing\"",
        "\"trace_off_evals_per_sec\"",
        "\"trace_on_evals_per_sec\"",
        "\"fault_injection\"",
        "\"faults_off_evals_per_sec\"",
        "\"faults_on_evals_per_sec\"",
        "\"analytics\"",
        "\"analytics_off_evals_per_sec\"",
        "\"analytics_on_evals_per_sec\"",
        "\"generations\"",
    ] {
        if !text.contains(key) {
            return Err(format!("missing required key {key}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_emits_wellformed_json_with_identical_paths() {
        let report = run(&PerfConfig::smoke());
        assert_eq!(report.eval.len(), 3);
        assert_eq!(report.memo.len(), 3);
        assert_eq!(report.instrumentation.len(), 3);
        assert_eq!(report.tracing.len(), 3);
        assert_eq!(report.fault_injection.len(), 3);
        assert_eq!(report.analytics.len(), 3);
        for e in &report.eval {
            assert!(e.bit_identical, "{}: scratch path diverged from baseline", e.workload);
            assert!(e.evals > 0);
            assert!(e.baseline_ns_per_eval > 0.0 && e.scratch_ns_per_eval > 0.0);
        }
        for p in &report.instrumentation {
            assert!(p.bit_identical, "{}: metrics changed evaluation results", p.workload);
            assert!(p.evals > 0);
            assert!(p.metrics_off_evals_per_sec > 0.0 && p.metrics_on_evals_per_sec > 0.0);
        }
        for t in &report.tracing {
            assert!(t.bit_identical, "{}: tracing changed evaluation results", t.workload);
            assert!(t.evals > 0);
            assert!(t.trace_off_evals_per_sec > 0.0 && t.trace_on_evals_per_sec > 0.0);
        }
        for f in &report.fault_injection {
            assert!(f.bit_identical, "{}: a disarmed FailSet changed results", f.workload);
            assert!(f.evals > 0);
            assert!(f.faults_off_evals_per_sec > 0.0 && f.faults_on_evals_per_sec > 0.0);
        }
        for a in &report.analytics {
            assert!(a.bit_identical, "{}: analytics changed the search", a.workload);
            assert!(a.evals > 0 && a.generations > 0);
            assert!(a.analytics_off_evals_per_sec > 0.0 && a.analytics_on_evals_per_sec > 0.0);
        }
        for m in &report.memo {
            assert!(
                (m.warm_genome_hit_rate - 1.0).abs() < 1e-9,
                "{}: identical rerun must be all genome hits ({})",
                m.workload,
                m.warm_genome_hit_rate
            );
            assert!(m.cold_genome_hits > 0, "{}: elites must recur", m.workload);
        }
        let json = render_json(&report);
        validate_json(&json).expect("emitted JSON must be well-formed");
    }

    /// Manual probe for iterating on the analytics hot path without
    /// sitting through the full harness:
    /// `cargo test --release -p digamma_bench -- --ignored analytics_overhead_probe --nocapture`
    #[test]
    #[ignore = "manual perf probe; run --release with --nocapture"]
    fn analytics_overhead_probe() {
        for model in workloads() {
            let a = measure_analytics(&model, &PerfConfig::full());
            println!(
                "{:<8} overhead {:>6.2}% | off {:>9.0} evals/s | bit-identical: {}",
                a.workload, a.overhead_pct, a.analytics_off_evals_per_sec, a.bit_identical
            );
        }
    }

    #[test]
    fn validator_rejects_structural_damage() {
        let report = run(&PerfConfig {
            evals_per_workload: 4,
            repeats: 1,
            memo_budget: 16,
            memo_population: 8,
            ..PerfConfig::smoke()
        });
        let json = render_json(&report);
        validate_json(&json).unwrap();
        assert!(validate_json(&json[..json.len() - 3]).is_err(), "truncation must fail");
        assert!(validate_json(&json.replace("\"eval\"", "\"val\"")).is_err());
        assert!(validate_json(&json.replace("\"overhead_pct\"", "\"ovrhead_pct\"")).is_err());
        assert!(validate_json(&json.replace("\"trace_on_evals_per_sec\"", "\"trace_on\"")).is_err());
        assert!(validate_json(&json.replace("\"fault_injection\"", "\"faults\"")).is_err());
        assert!(validate_json(&json.replace("\"analytics_on_evals_per_sec\"", "\"analytics_on\""))
            .is_err());
        assert!(validate_json("{\"unterminated").is_err());
    }
}
