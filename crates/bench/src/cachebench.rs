//! Cold- vs warm-cache search measurement (the `cache` criterion bench
//! and its report table).
//!
//! Three configurations of the *same* DiGamma search on `zoo::ncf()`:
//!
//! * **nocache** — the plain library call, every evaluation runs the
//!   cost model,
//! * **cold** — a fresh [`ShardedFitnessCache`] attached: first-run
//!   overhead (hashing + insertions) against within-run reuse (elites
//!   re-evaluate every generation),
//! * **warm** — the cache pre-populated by an identical prior search,
//!   the service steady state for repeated/co-tenant requests: every
//!   per-layer evaluation is a hit.
//!
//! Recorded numbers (this container, release profile,
//! `budget = 600`, `population = 16`, seed 1; medians of the criterion
//! shim's batches, 2026-07-29, after the batch-local dedupe landed —
//! intra-batch duplicate evaluations now never reach the cache at all,
//! which narrows cold's win and is why these differ from the PR 2
//! numbers):
//!
//! | configuration | time/search | vs nocache |
//! |---------------|-------------|------------|
//! | nocache       | 3.21 ms     | 1.00×      |
//! | cold          | 2.87 ms     | 1.12×      |
//! | warm          | 1.89 ms     | 1.70×      |
//!
//! Cold still beats no cache at all — elite re-evaluations across
//! generations short-circuit to `Arc` clones — and a warm cache (the
//! repeated-request steady state) runs the search with **zero**
//! cost-model calls. `ncf` is the *least* favourable model for this
//! comparison: its four unique GEMM layers make single evaluations
//! nearly as cheap as the key hash; models with more unique layers or
//! pricier shapes widen the gap. For the FIFO-vs-LRU eviction numbers
//! see [`eviction_comparison`]. Reproduce with
//! `cargo bench -p digamma_bench --bench cache`.

use crate::report::Table;
use digamma::{CoOptProblem, DiGamma, DiGammaConfig, EvalCache, Objective};
use digamma_costmodel::Platform;
use digamma_server::{
    CacheStats, EvictionPolicy, JobAlgorithm, JobSpec, SearchServer, ServerConfig,
    ShardedFitnessCache,
};
use digamma_workload::zoo;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Search knobs shared by every configuration of the comparison.
#[derive(Debug, Clone, Copy)]
pub struct CacheBenchConfig {
    /// Design-point evaluation budget per search.
    pub budget: usize,
    /// GA population size.
    pub population_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CacheBenchConfig {
    fn default() -> CacheBenchConfig {
        CacheBenchConfig { budget: 600, population_size: 16, seed: 1 }
    }
}

/// One timed configuration of the comparison.
#[derive(Debug, Clone)]
pub struct CacheBenchRow {
    /// Configuration label (`nocache` / `cold` / `warm`).
    pub label: &'static str,
    /// Wall-clock of the measured search.
    pub elapsed: Duration,
    /// Best cost the search found (identical across rows by
    /// construction — memoization must not change results).
    pub best_cost: Option<f64>,
    /// Cache counters for the measured search (zeroes for `nocache`).
    pub stats: CacheStats,
}

fn problem() -> CoOptProblem {
    CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency)
}

fn searcher(config: CacheBenchConfig) -> DiGamma {
    DiGamma::new(DiGammaConfig {
        population_size: config.population_size,
        seed: config.seed,
        threads: 1,
        ..Default::default()
    })
}

/// A cache sized for the comparison, pre-warmed by `warmup` identical
/// searches.
pub fn prewarmed_cache(config: CacheBenchConfig, warmup: usize) -> Arc<ShardedFitnessCache> {
    let cache = Arc::new(ShardedFitnessCache::new(1 << 18));
    for _ in 0..warmup {
        let p = problem().with_cache(Arc::clone(&cache) as Arc<dyn EvalCache>);
        searcher(config).search(&p, config.budget);
    }
    cache
}

/// Runs one search with an optional attached cache and times it.
pub fn timed_search(
    config: CacheBenchConfig,
    cache: Option<Arc<ShardedFitnessCache>>,
) -> (Duration, Option<f64>, CacheStats) {
    let mut p = problem();
    if let Some(cache) = &cache {
        p = p.with_cache(Arc::clone(cache) as Arc<dyn EvalCache>);
    }
    let before = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
    let started = Instant::now();
    let result = searcher(config).search(&p, config.budget);
    let elapsed = started.elapsed();
    let after = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
    let stats = CacheStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        insertions: after.insertions - before.insertions,
        evictions: after.evictions - before.evictions,
        entries: after.entries,
    };
    (elapsed, result.best_cost(), stats)
}

/// Runs the full nocache / cold / warm comparison once.
pub fn cold_vs_warm(config: CacheBenchConfig) -> Vec<CacheBenchRow> {
    let (nocache_t, nocache_best, nocache_stats) = timed_search(config, None);
    let (cold_t, cold_best, cold_stats) =
        timed_search(config, Some(Arc::new(ShardedFitnessCache::new(1 << 18))));
    let warm_cache = prewarmed_cache(config, 1);
    let (warm_t, warm_best, warm_stats) = timed_search(config, Some(warm_cache));
    vec![
        CacheBenchRow {
            label: "nocache",
            elapsed: nocache_t,
            best_cost: nocache_best,
            stats: nocache_stats,
        },
        CacheBenchRow { label: "cold", elapsed: cold_t, best_cost: cold_best, stats: cold_stats },
        CacheBenchRow { label: "warm", elapsed: warm_t, best_cost: warm_best, stats: warm_stats },
    ]
}

/// Renders rows as a report table (label | ms | hit-rate | speedup).
pub fn table(rows: &[CacheBenchRow]) -> Table {
    let mut table = Table::new(
        "Fitness cache: cold vs warm search (ncf, edge, latency)",
        vec!["time (ms)".into(), "hit rate".into(), "speedup vs nocache".into()],
    );
    let baseline = rows.first().map_or(0.0, |r| r.elapsed.as_secs_f64());
    for row in rows {
        let secs = row.elapsed.as_secs_f64();
        table.push_row(
            row.label,
            vec![
                format!("{:.2}", secs * 1e3),
                format!("{:.0}%", row.stats.hit_rate() * 100.0),
                format!("{:.2}x", baseline / secs.max(1e-12)),
            ],
        );
    }
    table
}

/// Knobs for the FIFO-vs-LRU eviction comparison: a long multi-model
/// batch where a *hot* model (ncf, identical spec every round) recurs
/// between *churn* jobs (a fresh-seeded CNN search per round, whose keys
/// are never reused), against a cache deliberately smaller than the
/// batch's working set.
#[derive(Debug, Clone, Copy)]
pub struct EvictionBenchConfig {
    /// Total cache capacity in reports (small enough to force eviction).
    pub capacity: usize,
    /// Hot/churn rounds in the batch.
    pub rounds: usize,
    /// Per-job sample budget.
    pub budget: usize,
    /// Per-job GA population.
    pub population_size: usize,
}

impl Default for EvictionBenchConfig {
    fn default() -> EvictionBenchConfig {
        EvictionBenchConfig { capacity: 4096, rounds: 6, budget: 400, population_size: 12 }
    }
}

/// One policy's outcome on the eviction batch.
#[derive(Debug, Clone)]
pub struct EvictionBenchRow {
    /// The eviction policy measured.
    pub policy: EvictionPolicy,
    /// Wall-clock of the whole batch.
    pub elapsed: Duration,
    /// Mean cache hit rate of the *hot* (repeated ncf) jobs after the
    /// first round — the number eviction quality shows up in.
    pub hot_hit_rate: f64,
    /// Aggregate cache counters for the batch.
    pub stats: CacheStats,
}

/// Runs the recurring-hot-model batch under each eviction policy.
///
/// Recorded numbers (this container, release profile, defaults:
/// capacity 4096, 6 rounds, budget 400, population 12, 2026-07-29):
///
/// | policy | hot-job hit rate (rounds ≥ 1) | overall hit rate | evictions | batch wall |
/// |--------|-------------------------------|------------------|-----------|------------|
/// | fifo   | 89%                           | 61%              | 4039      | 0.06 s     |
/// | lru    | **100%**                      | 64%              | 3263      | 0.04 s     |
///
/// FIFO ages the hot model's entries out as churn jobs insert, so each
/// recurrence re-misses part of its working set; LRU's per-hit recency
/// refresh keeps the recurring spec fully resident — a pure 100% hit
/// rate every round — and evicts strictly from the churn. (Within a
/// single never-repeated search the two tie: GA elites re-reference
/// *recent* keys, which both policies retain; the gap opens only under
/// cross-job competition.) Select per service via the manifest's
/// `[server] eviction = lru` or `--eviction lru`. Reproduce with
/// `cargo bench -p digamma_bench --bench cache`.
pub fn eviction_comparison(config: EvictionBenchConfig) -> Vec<EvictionBenchRow> {
    let mut jobs = Vec::new();
    for round in 0..config.rounds {
        let mut hot = JobSpec::new(
            format!("hot-ncf-{round}"),
            zoo::ncf(),
            Platform::edge(),
            Objective::Latency,
            JobAlgorithm::DiGamma,
        );
        hot.budget = config.budget;
        hot.population_size = config.population_size;
        hot.seed = 1; // identical search every round: its keys recur
        jobs.push(hot);
        let mut churn = JobSpec::new(
            format!("churn-resnet-{round}"),
            zoo::resnet18(),
            Platform::edge(),
            Objective::Latency,
            JobAlgorithm::DiGamma,
        );
        churn.budget = config.budget;
        churn.population_size = config.population_size;
        churn.seed = 1000 + round as u64; // fresh keys every round: pure churn
        jobs.push(churn);
    }

    [EvictionPolicy::Fifo, EvictionPolicy::Lru]
        .into_iter()
        .map(|policy| {
            let server = SearchServer::new(ServerConfig {
                workers: 1, // deterministic arrival order
                cache_capacity: config.capacity,
                // This benchmark isolates the *per-layer* cache's
                // eviction behaviour; the genome memo above it would
                // absorb the hot jobs' recurrence entirely.
                genome_cache_capacity: 0,
                eviction: policy,
                ..ServerConfig::default()
            });
            let started = Instant::now();
            let reports = server.run(&jobs);
            let elapsed = started.elapsed();
            let hot_rates: Vec<f64> = reports
                .iter()
                .filter(|r| r.name.starts_with("hot-") && r.name != "hot-ncf-0")
                .map(digamma_server::JobReport::cache_hit_rate)
                .collect();
            let hot_hit_rate = hot_rates.iter().sum::<f64>() / hot_rates.len().max(1) as f64;
            EvictionBenchRow {
                policy,
                elapsed,
                hot_hit_rate,
                stats: server.cache_stats().expect("cache enabled"),
            }
        })
        .collect()
}

/// Renders eviction rows as a report table.
pub fn eviction_table(rows: &[EvictionBenchRow]) -> Table {
    let mut table = Table::new(
        "Fitness cache eviction: recurring hot model vs churn (capacity-bound)",
        vec![
            "hot hit rate".into(),
            "overall hit rate".into(),
            "evictions".into(),
            "wall (s)".into(),
        ],
    );
    for row in rows {
        table.push_row(
            row.policy.to_string(),
            vec![
                format!("{:.0}%", row.hot_hit_rate * 100.0),
                format!("{:.0}%", row.stats.hit_rate() * 100.0),
                row.stats.evictions.to_string(),
                format!("{:.2}", row.elapsed.as_secs_f64()),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CacheBenchConfig {
        CacheBenchConfig { budget: 160, population_size: 12, seed: 3 }
    }

    #[test]
    fn all_configurations_find_the_same_design() {
        let rows = cold_vs_warm(quick());
        assert_eq!(rows.len(), 3);
        let costs: Vec<u64> =
            rows.iter().map(|r| r.best_cost.expect("feasible").to_bits()).collect();
        assert!(costs.windows(2).all(|w| w[0] == w[1]), "memoization changed results: {rows:?}");
    }

    #[test]
    fn warm_runs_are_pure_hits() {
        let rows = cold_vs_warm(quick());
        let warm = &rows[2];
        assert_eq!(warm.stats.misses, 0, "a repeated search must be fully memoized");
        assert!(warm.stats.hits > 0);
        let cold = &rows[1];
        assert!(cold.stats.hits > 0, "within-run reuse (elites) hits even on a cold cache");
        assert!(cold.stats.insertions > 0);
    }

    #[test]
    fn table_renders_every_row() {
        let rows = cold_vs_warm(quick());
        let rendered = table(&rows).to_markdown();
        for label in ["nocache", "cold", "warm"] {
            assert!(rendered.contains(label), "{rendered}");
        }
    }

    #[test]
    fn eviction_comparison_exercises_both_policies_under_pressure() {
        let rows = eviction_comparison(EvictionBenchConfig {
            capacity: 512,
            rounds: 3,
            budget: 120,
            population_size: 8,
        });
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].policy, EvictionPolicy::Fifo);
        assert_eq!(rows[1].policy, EvictionPolicy::Lru);
        for row in &rows {
            assert!(row.stats.evictions > 0, "capacity must bind: {row:?}");
            assert!((0.0..=1.0).contains(&row.hot_hit_rate));
        }
        let rendered = eviction_table(&rows).to_markdown();
        assert!(rendered.contains("fifo") && rendered.contains("lru"), "{rendered}");
    }
}
