//! Cold- vs warm-cache search measurement (the `cache` criterion bench
//! and its report table).
//!
//! Three configurations of the *same* DiGamma search on `zoo::ncf()`:
//!
//! * **nocache** — the plain library call, every evaluation runs the
//!   cost model,
//! * **cold** — a fresh [`ShardedFitnessCache`] attached: first-run
//!   overhead (hashing + insertions) against within-run reuse (elites
//!   re-evaluate every generation),
//! * **warm** — the cache pre-populated by an identical prior search,
//!   the service steady state for repeated/co-tenant requests: every
//!   per-layer evaluation is a hit.
//!
//! Recorded numbers (this container, release profile,
//! `budget = 600`, `population = 16`, seed 1; medians of the criterion
//! shim's batches, 2026-07-29):
//!
//! | configuration | time/search | vs nocache |
//! |---------------|-------------|------------|
//! | nocache       | 2.93 ms     | 1.00×      |
//! | cold          | 2.12 ms     | 1.38×      |
//! | warm          | 1.51 ms     | 1.94×      |
//!
//! Cold already beats no cache at all — elites and duplicate children
//! re-evaluate every generation, and those re-evaluations short-circuit
//! to `Arc` clones — and a warm cache (the repeated-request steady
//! state) runs the search with **zero** cost-model calls. `ncf` is the
//! *least* favourable model for this comparison: its four unique GEMM
//! layers make single evaluations nearly as cheap as the key hash;
//! models with more unique layers or pricier shapes widen the gap.
//! Reproduce with `cargo bench -p digamma_bench --bench cache`.

use crate::report::Table;
use digamma::{CoOptProblem, DiGamma, DiGammaConfig, EvalCache, Objective};
use digamma_costmodel::Platform;
use digamma_server::{CacheStats, ShardedFitnessCache};
use digamma_workload::zoo;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Search knobs shared by every configuration of the comparison.
#[derive(Debug, Clone, Copy)]
pub struct CacheBenchConfig {
    /// Design-point evaluation budget per search.
    pub budget: usize,
    /// GA population size.
    pub population_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CacheBenchConfig {
    fn default() -> CacheBenchConfig {
        CacheBenchConfig { budget: 600, population_size: 16, seed: 1 }
    }
}

/// One timed configuration of the comparison.
#[derive(Debug, Clone)]
pub struct CacheBenchRow {
    /// Configuration label (`nocache` / `cold` / `warm`).
    pub label: &'static str,
    /// Wall-clock of the measured search.
    pub elapsed: Duration,
    /// Best cost the search found (identical across rows by
    /// construction — memoization must not change results).
    pub best_cost: Option<f64>,
    /// Cache counters for the measured search (zeroes for `nocache`).
    pub stats: CacheStats,
}

fn problem() -> CoOptProblem {
    CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency)
}

fn searcher(config: CacheBenchConfig) -> DiGamma {
    DiGamma::new(DiGammaConfig {
        population_size: config.population_size,
        seed: config.seed,
        threads: 1,
        ..Default::default()
    })
}

/// A cache sized for the comparison, pre-warmed by `warmup` identical
/// searches.
pub fn prewarmed_cache(config: CacheBenchConfig, warmup: usize) -> Arc<ShardedFitnessCache> {
    let cache = Arc::new(ShardedFitnessCache::new(1 << 18));
    for _ in 0..warmup {
        let p = problem().with_cache(Arc::clone(&cache) as Arc<dyn EvalCache>);
        searcher(config).search(&p, config.budget);
    }
    cache
}

/// Runs one search with an optional attached cache and times it.
pub fn timed_search(
    config: CacheBenchConfig,
    cache: Option<Arc<ShardedFitnessCache>>,
) -> (Duration, Option<f64>, CacheStats) {
    let mut p = problem();
    if let Some(cache) = &cache {
        p = p.with_cache(Arc::clone(cache) as Arc<dyn EvalCache>);
    }
    let before = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
    let started = Instant::now();
    let result = searcher(config).search(&p, config.budget);
    let elapsed = started.elapsed();
    let after = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
    let stats = CacheStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        insertions: after.insertions - before.insertions,
        evictions: after.evictions - before.evictions,
        entries: after.entries,
    };
    (elapsed, result.best_cost(), stats)
}

/// Runs the full nocache / cold / warm comparison once.
pub fn cold_vs_warm(config: CacheBenchConfig) -> Vec<CacheBenchRow> {
    let (nocache_t, nocache_best, nocache_stats) = timed_search(config, None);
    let (cold_t, cold_best, cold_stats) =
        timed_search(config, Some(Arc::new(ShardedFitnessCache::new(1 << 18))));
    let warm_cache = prewarmed_cache(config, 1);
    let (warm_t, warm_best, warm_stats) = timed_search(config, Some(warm_cache));
    vec![
        CacheBenchRow {
            label: "nocache",
            elapsed: nocache_t,
            best_cost: nocache_best,
            stats: nocache_stats,
        },
        CacheBenchRow { label: "cold", elapsed: cold_t, best_cost: cold_best, stats: cold_stats },
        CacheBenchRow { label: "warm", elapsed: warm_t, best_cost: warm_best, stats: warm_stats },
    ]
}

/// Renders rows as a report table (label | ms | hit-rate | speedup).
pub fn table(rows: &[CacheBenchRow]) -> Table {
    let mut table = Table::new(
        "Fitness cache: cold vs warm search (ncf, edge, latency)",
        vec!["time (ms)".into(), "hit rate".into(), "speedup vs nocache".into()],
    );
    let baseline = rows.first().map_or(0.0, |r| r.elapsed.as_secs_f64());
    for row in rows {
        let secs = row.elapsed.as_secs_f64();
        table.push_row(
            row.label,
            vec![
                format!("{:.2}", secs * 1e3),
                format!("{:.0}%", row.stats.hit_rate() * 100.0),
                format!("{:.2}x", baseline / secs.max(1e-12)),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CacheBenchConfig {
        CacheBenchConfig { budget: 160, population_size: 12, seed: 3 }
    }

    #[test]
    fn all_configurations_find_the_same_design() {
        let rows = cold_vs_warm(quick());
        assert_eq!(rows.len(), 3);
        let costs: Vec<u64> =
            rows.iter().map(|r| r.best_cost.expect("feasible").to_bits()).collect();
        assert!(costs.windows(2).all(|w| w[0] == w[1]), "memoization changed results: {rows:?}");
    }

    #[test]
    fn warm_runs_are_pure_hits() {
        let rows = cold_vs_warm(quick());
        let warm = &rows[2];
        assert_eq!(warm.stats.misses, 0, "a repeated search must be fully memoized");
        assert!(warm.stats.hits > 0);
        let cold = &rows[1];
        assert!(cold.stats.hits > 0, "within-run reuse (elites) hits even on a cold cache");
        assert!(cold.stats.insertions > 0);
    }

    #[test]
    fn table_renders_every_row() {
        let rows = cold_vs_warm(quick());
        let rendered = table(&rows).to_markdown();
        for label in ["nocache", "cold", "warm"] {
            assert!(rendered.contains(label), "{rendered}");
        }
    }
}
