//! Criterion benchmark: the fitness memo cache's effect on a whole
//! search — nocache vs cold-cache vs warm-cache on `zoo::ncf()`.
//!
//! The measured medians are recorded in
//! `digamma_bench::cachebench`'s module docs; re-run with
//! `cargo bench -p digamma_bench --bench cache`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use digamma_bench::cachebench::{
    eviction_comparison, eviction_table, prewarmed_cache, timed_search, CacheBenchConfig,
    EvictionBenchConfig,
};
use digamma_server::ShardedFitnessCache;
use std::sync::Arc;

const CONFIG: CacheBenchConfig = CacheBenchConfig { budget: 600, population_size: 16, seed: 1 };

fn bench_nocache(c: &mut Criterion) {
    c.bench_function("cache/nocache_search_ncf_600", |b| b.iter(|| timed_search(CONFIG, None)));
}

fn bench_cold(c: &mut Criterion) {
    c.bench_function("cache/cold_search_ncf_600", |b| {
        b.iter_batched(
            || Arc::new(ShardedFitnessCache::new(1 << 18)),
            |cache| timed_search(CONFIG, Some(cache)),
            BatchSize::LargeInput,
        )
    });
}

fn bench_warm(c: &mut Criterion) {
    let warm = prewarmed_cache(CONFIG, 1);
    c.bench_function("cache/warm_search_ncf_600", |b| {
        b.iter(|| timed_search(CONFIG, Some(Arc::clone(&warm))))
    });
}

/// Not a timing loop: runs the FIFO-vs-LRU recurring-hot-model batch
/// once and prints the comparison table whose numbers are recorded in
/// `digamma_bench::cachebench::eviction_comparison`'s docs.
fn bench_eviction(c: &mut Criterion) {
    let rows = eviction_comparison(EvictionBenchConfig::default());
    println!("{}", eviction_table(&rows).to_markdown());
    let _ = c;
}

criterion_group!(benches, bench_nocache, bench_cold, bench_warm, bench_eviction);
criterion_main!(benches);
