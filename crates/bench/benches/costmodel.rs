//! Criterion micro-benchmarks for the cost-model evaluation path (E6).
//!
//! The paper's 40 K-sample budget "takes about 20 mins of CPU-time" with
//! MAESTRO. These benches measure our equivalent: single-layer cost-model
//! evaluations, full-genome evaluations, and codec decodes — the inner
//! loops every search algorithm pays per sample.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use digamma::{CoOptProblem, Objective};
use digamma_costmodel::{Evaluator, Mapping, Platform};
use digamma_encoding::{Codec, Genome};
use digamma_workload::zoo;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_single_layer_eval(c: &mut Criterion) {
    let model = zoo::resnet50();
    let layer = model.layers()[10].clone();
    let mapping = Mapping::row_major_example(&layer, 8, 16);
    let evaluator = Evaluator::new(Platform::edge());
    c.bench_function("costmodel/single_conv_layer", |b| {
        b.iter(|| evaluator.evaluate(&layer, &mapping).unwrap())
    });
}

fn bench_full_model_genome(c: &mut Criterion) {
    for model in [zoo::ncf(), zoo::resnet50()] {
        let problem = CoOptProblem::new(model.clone(), Platform::edge(), Objective::Latency);
        let mut rng = SmallRng::seed_from_u64(1);
        let genome = Genome::random(&mut rng, problem.unique_layers(), problem.platform(), 2);
        c.bench_function(&format!("costmodel/genome_eval_{}", model.name()), |b| {
            b.iter(|| problem.evaluate(&genome))
        });
    }
}

fn bench_codec_decode(c: &mut Criterion) {
    let model = zoo::resnet50();
    let unique = model.unique_layers();
    let codec = Codec::new(&unique, &Platform::edge(), 2);
    let mut rng = SmallRng::seed_from_u64(2);
    c.bench_function("codec/decode_resnet50", |b| {
        b.iter_batched(
            || (0..codec.dimension()).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<f64>>(),
            |x| codec.decode(&x),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_single_layer_eval, bench_full_model_genome, bench_codec_decode);
criterion_main!(benches);
