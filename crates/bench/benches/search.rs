//! Criterion benchmarks for the search algorithms themselves (E6):
//! cost of one DiGamma generation, one GAMMA generation, and the per-ask
//! overhead of the heaviest baseline (CMA-ES) at co-opt dimensionality.

use criterion::{criterion_group, criterion_main, Criterion};
use digamma::schemes::HwPreset;
use digamma::{CoOptProblem, DiGamma, DiGammaConfig, Gamma, GammaConfig, Objective};
use digamma_costmodel::{Platform, AREA_MODEL_15NM};
use digamma_opt::Algorithm;
use digamma_workload::zoo;

fn bench_digamma_generation(c: &mut Criterion) {
    let problem = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency);
    c.bench_function("search/digamma_60_samples_ncf", |b| {
        b.iter(|| {
            let cfg = DiGammaConfig { population_size: 20, seed: 1, ..Default::default() };
            DiGamma::new(cfg).search(&problem, 60)
        })
    });
}

fn bench_gamma_generation(c: &mut Criterion) {
    let problem = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency);
    let hw = HwPreset::ComputeFocused.build(&Platform::edge(), &AREA_MODEL_15NM);
    c.bench_function("search/gamma_60_samples_ncf", |b| {
        b.iter(|| {
            let cfg = GammaConfig { population_size: 20, seed: 1, ..Default::default() };
            Gamma::new(cfg).search(&problem, &hw, 60)
        })
    });
}

fn bench_cma_ask_tell(c: &mut Criterion) {
    // ResNet-50 co-opt dimensionality (the heaviest baseline workload).
    let model = zoo::resnet50();
    let unique = model.unique_layers();
    let dim = 2 + unique.len() * 2 * 13;
    c.bench_function("search/cma_ask_tell_resnet50_dim", |b| {
        let mut opt = Algorithm::Cma.build(dim, 3);
        b.iter(|| {
            let x = opt.ask();
            let v: f64 = x.iter().map(|v| (v - 0.4) * (v - 0.4)).sum();
            opt.tell(&x, v);
        })
    });
}

criterion_group!(benches, bench_digamma_generation, bench_gamma_generation, bench_cma_ask_tell);
criterion_main!(benches);
