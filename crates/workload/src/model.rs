//! A DNN model as an ordered list of layers, with unique-layer deduplication.

use crate::layer::{Layer, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A layer shape that occurs one or more times in a model.
///
/// Searching a mapping per *unique* shape (instead of per occurrence) is how
/// both GAMMA and DiGamma keep the genome small; repeated occurrences simply
/// multiply the latency/energy of the found mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniqueLayer {
    /// Representative layer (first occurrence).
    pub layer: Layer,
    /// Number of occurrences of this exact shape in the model.
    pub count: u64,
}

/// An ordered list of [`Layer`]s forming one DNN model.
///
/// # Examples
///
/// ```
/// use digamma_workload::{Layer, Model};
///
/// let model = Model::new(
///     "tiny",
///     vec![
///         Layer::conv("conv0", 16, 3, 32, 32, 3, 3, 1),
///         Layer::gemm("fc", 10, 1, 16 * 32 * 32),
///     ],
/// );
/// assert_eq!(model.layers().len(), 2);
/// assert_eq!(model.unique_layers().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    name: String,
    layers: Vec<Layer>,
}

impl Model {
    /// Creates a model from its layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Model {
        assert!(!layers.is_empty(), "a model needs at least one layer");
        Model { name: name.into(), layers }
    }

    /// The model's name (e.g. `"resnet18"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Deduplicated layer shapes with occurrence counts, in first-seen order.
    pub fn unique_layers(&self) -> Vec<UniqueLayer> {
        let mut order: Vec<UniqueLayer> = Vec::new();
        let mut index: HashMap<_, usize> = HashMap::new();
        for layer in &self.layers {
            match index.get(&layer.shape_key()) {
                Some(&i) => order[i].count += 1,
                None => {
                    index.insert(layer.shape_key(), order.len());
                    order.push(UniqueLayer { layer: layer.clone(), count: 1 });
                }
            }
        }
        order
    }

    /// Total multiply-accumulate operations over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total tensor data (words) over all layers, counting each tensor once.
    pub fn total_data(&self) -> u64 {
        self.layers.iter().map(Layer::total_data).sum()
    }

    /// Model-level arithmetic intensity (MACs per word).
    pub fn arithmetic_intensity(&self) -> f64 {
        self.total_macs() as f64 / self.total_data() as f64
    }

    /// Concatenates several models into one composite workload.
    ///
    /// This is how the framework supports multi-model co-design (the
    /// paper's "takes in any DNN model(s)"): one hardware configuration
    /// is sized for the union of layers, mappings are searched per unique
    /// shape across all models, and the objective aggregates over every
    /// layer of every model. Layer names are prefixed with their model's
    /// name to stay unique.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn concat(name: impl Into<String>, models: &[Model]) -> Model {
        assert!(!models.is_empty(), "need at least one model");
        let layers = models
            .iter()
            .flat_map(|m| {
                m.layers.iter().map(|l| {
                    let mut renamed = l.clone();
                    renamed.set_name(format!("{}/{}", m.name, l.name()));
                    renamed
                })
            })
            .collect();
        Model::new(name, layers)
    }

    /// The largest single-tensor footprint across all layers, in words.
    ///
    /// A useful sanity bound when sizing L2 sweeps.
    pub fn max_tensor_size(&self) -> u64 {
        self.layers
            .iter()
            .flat_map(|l| Tensor::ALL.iter().map(move |&t| l.tensor_size(t)))
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} layers ({} unique), {:.2} GMACs, intensity {:.1}",
            self.name,
            self.layers.len(),
            self.unique_layers().len(),
            self.total_macs() as f64 / 1e9,
            self.arithmetic_intensity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    fn tiny() -> Model {
        Model::new(
            "tiny",
            vec![
                Layer::conv("a", 8, 8, 8, 8, 3, 3, 1),
                Layer::conv("b", 8, 8, 8, 8, 3, 3, 1),
                Layer::gemm("c", 16, 4, 8),
            ],
        )
    }

    #[test]
    fn unique_layers_dedup_by_shape() {
        let m = tiny();
        let uniq = m.unique_layers();
        assert_eq!(uniq.len(), 2);
        assert_eq!(uniq[0].count, 2);
        assert_eq!(uniq[1].count, 1);
    }

    #[test]
    fn totals_accumulate() {
        let m = tiny();
        let expected: u64 = m.layers().iter().map(Layer::macs).sum();
        assert_eq!(m.total_macs(), expected);
        assert!(m.total_data() > 0);
        assert!(m.arithmetic_intensity() > 0.0);
    }

    #[test]
    fn unique_counts_sum_to_layer_count() {
        let m = tiny();
        let total: u64 = m.unique_layers().iter().map(|u| u.count).sum();
        assert_eq!(total as usize, m.layers().len());
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_model_panics() {
        let _ = Model::new("empty", vec![]);
    }

    #[test]
    fn concat_merges_models_and_keeps_names_unique() {
        let a = tiny();
        let b = tiny();
        let both = Model::concat("pair", &[a.clone(), b]);
        assert_eq!(both.layers().len(), 2 * a.layers().len());
        assert_eq!(both.total_macs(), 2 * a.total_macs());
        // Shapes dedup across models: same unique set, doubled counts.
        assert_eq!(both.unique_layers().len(), a.unique_layers().len());
        assert_eq!(both.unique_layers()[0].count, 2 * a.unique_layers()[0].count);
        assert!(both.layers()[0].name().starts_with("tiny/"));
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn concat_of_nothing_panics() {
        let _ = Model::concat("none", &[]);
    }
}
