//! DNN workload definitions for the DiGamma reproduction.
//!
//! DiGamma (DATE 2022) co-optimizes accelerator hardware and mappings for a
//! target DNN model. This crate provides the workload side of that problem:
//!
//! * [`Dim`] / [`DimVec`] — the six canonical loop dimensions of a
//!   convolution-shaped workload (`K, C, Y, X, R, S`),
//! * [`Layer`] — one operator expressed as extents over those dimensions
//!   (dense convolution, depthwise convolution, or GEMM),
//! * [`Model`] — an ordered list of layers with repeat counts and
//!   unique-layer deduplication, and
//! * [`zoo`] — the seven models evaluated in the paper
//!   (MobileNetV2, ResNet-18, ResNet-50, MnasNet, BERT, DLRM, NCF).
//!
//! # Examples
//!
//! ```
//! use digamma_workload::{zoo, Dim};
//!
//! let model = zoo::resnet18();
//! assert_eq!(model.name(), "resnet18");
//! // The first layer of ResNet-18 is the 7x7 stem convolution.
//! let stem = &model.layers()[0];
//! assert_eq!(stem.dims()[Dim::R], 7);
//! // Total multiply-accumulate work is mapping independent.
//! assert!(model.total_macs() > 1_000_000_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dims;
mod layer;
mod model;
pub mod zoo;

pub use dims::{Dim, DimVec, NUM_DIMS};
pub use layer::{tensor_footprint, Layer, LayerKind, Tensor};
pub use model::{Model, UniqueLayer};
