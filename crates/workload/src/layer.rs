//! A single DNN operator expressed as a 6-dimensional loop nest.

use crate::dims::{Dim, DimVec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three operand tensors of a convolution-shaped operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tensor {
    /// Filter weights (`K×C×R×S` for dense convolution).
    Weight,
    /// Input activations (`C×Y'×X'` including the sliding-window halo).
    Input,
    /// Output activations / partial sums (`K×Y×X`).
    Output,
}

impl Tensor {
    /// All three tensors.
    pub const ALL: [Tensor; 3] = [Tensor::Weight, Tensor::Input, Tensor::Output];
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Tensor::Weight => 'W',
            Tensor::Input => 'I',
            Tensor::Output => 'O',
        };
        write!(f, "{c}")
    }
}

/// The operator family of a [`Layer`].
///
/// The cost model only cares about the loop structure, so every operator is
/// normalized to the six dims `K, C, Y, X, R, S`:
///
/// * [`LayerKind::Conv`] — dense convolution; all six dims are free.
/// * [`LayerKind::DepthwiseConv`] — depthwise convolution; `C` is pinned to 1
///   and the input tensor becomes `K`-indexed (each output channel reads its
///   own input plane).
/// * [`LayerKind::Gemm`] — `O[m,n] = Σ_k A[m,k]·B[k,n]`, expressed as
///   `K←M, C←K, Y←N, X=R=S=1`. Embedding gathers are GEMMs with `C = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Dense convolution.
    Conv,
    /// Depthwise convolution (channel multiplier 1).
    DepthwiseConv,
    /// General matrix multiply.
    Gemm,
}

impl LayerKind {
    /// Which dimensions index `tensor` for this operator family.
    ///
    /// The returned mask drives the reuse analysis: a loop over an
    /// *irrelevant* dimension leaves the tensor stationary.
    pub fn relevance(self, tensor: Tensor) -> DimVec<bool> {
        let mut m = DimVec::splat(false);
        match (self, tensor) {
            (LayerKind::Conv | LayerKind::Gemm, Tensor::Weight) => {
                m[Dim::K] = true;
                m[Dim::C] = true;
                m[Dim::R] = true;
                m[Dim::S] = true;
            }
            (LayerKind::DepthwiseConv, Tensor::Weight) => {
                m[Dim::K] = true;
                m[Dim::R] = true;
                m[Dim::S] = true;
            }
            (LayerKind::Conv | LayerKind::Gemm, Tensor::Input) => {
                m[Dim::C] = true;
                m[Dim::Y] = true;
                m[Dim::X] = true;
                m[Dim::R] = true;
                m[Dim::S] = true;
            }
            (LayerKind::DepthwiseConv, Tensor::Input) => {
                m[Dim::K] = true;
                m[Dim::Y] = true;
                m[Dim::X] = true;
                m[Dim::R] = true;
                m[Dim::S] = true;
            }
            (_, Tensor::Output) => {
                m[Dim::K] = true;
                m[Dim::Y] = true;
                m[Dim::X] = true;
            }
        }
        m
    }
}

/// Footprint (in data words) of `tensor` for a tile of extents `tile`.
///
/// The input footprint includes the sliding-window halo:
/// `C·((Y−1)·stride+R)·((X−1)·stride+S)`. This refines the paper's
/// Fig. 3(f) formula (`I = C·X·Y`), which ignores the halo; the halo-aware
/// value is never smaller, so buffer requirements remain safe.
///
/// # Examples
///
/// ```
/// use digamma_workload::{tensor_footprint, DimVec, LayerKind, Tensor};
///
/// // A 1×1 conv tile: input footprint is C·Y·X exactly.
/// let tile = DimVec([4u64, 8, 3, 3, 1, 1]);
/// assert_eq!(tensor_footprint(LayerKind::Conv, Tensor::Input, &tile, 1), 8 * 3 * 3);
/// ```
pub fn tensor_footprint(kind: LayerKind, tensor: Tensor, tile: &DimVec<u64>, stride: u64) -> u64 {
    let t = |d: Dim| tile[d];
    match (kind, tensor) {
        (LayerKind::Conv | LayerKind::Gemm, Tensor::Weight) => {
            t(Dim::K) * t(Dim::C) * t(Dim::R) * t(Dim::S)
        }
        (LayerKind::DepthwiseConv, Tensor::Weight) => t(Dim::K) * t(Dim::R) * t(Dim::S),
        (LayerKind::Conv | LayerKind::Gemm, Tensor::Input) => {
            let h = (t(Dim::Y) - 1) * stride + t(Dim::R);
            let w = (t(Dim::X) - 1) * stride + t(Dim::S);
            t(Dim::C) * h * w
        }
        (LayerKind::DepthwiseConv, Tensor::Input) => {
            let h = (t(Dim::Y) - 1) * stride + t(Dim::R);
            let w = (t(Dim::X) - 1) * stride + t(Dim::S);
            t(Dim::K) * h * w
        }
        (_, Tensor::Output) => t(Dim::K) * t(Dim::Y) * t(Dim::X),
    }
}

/// One operator of a DNN model: a named 6-dim loop nest with a stride.
///
/// Extents use *output* spatial coordinates (`Y`, `X` are output rows and
/// columns); the input halo is reconstructed by [`tensor_footprint`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    name: String,
    kind: LayerKind,
    dims: DimVec<u64>,
    stride: u64,
}

impl Layer {
    /// Creates a dense convolution layer.
    ///
    /// `k, c` are output/input channels; `y, x` output rows/cols; `r, s`
    /// filter rows/cols; `stride` the convolution stride.
    ///
    /// # Panics
    ///
    /// Panics if any extent or the stride is zero.
    pub fn conv(
        name: impl Into<String>,
        k: u64,
        c: u64,
        y: u64,
        x: u64,
        r: u64,
        s: u64,
        stride: u64,
    ) -> Layer {
        let dims = DimVec([k, c, y, x, r, s]);
        assert!(dims.all_positive() && stride >= 1, "layer extents must be positive");
        Layer { name: name.into(), kind: LayerKind::Conv, dims, stride }
    }

    /// Creates a depthwise convolution layer with `k` channels.
    ///
    /// # Panics
    ///
    /// Panics if any extent or the stride is zero.
    pub fn depthwise(
        name: impl Into<String>,
        k: u64,
        y: u64,
        x: u64,
        r: u64,
        s: u64,
        stride: u64,
    ) -> Layer {
        let dims = DimVec([k, 1, y, x, r, s]);
        assert!(dims.all_positive() && stride >= 1, "layer extents must be positive");
        Layer { name: name.into(), kind: LayerKind::DepthwiseConv, dims, stride }
    }

    /// Creates a GEMM layer computing `O[m,n] = Σ_k A[m,k]·B[k,n]`.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn gemm(name: impl Into<String>, m: u64, n: u64, k: u64) -> Layer {
        let dims = DimVec([m, k, n, 1, 1, 1]);
        assert!(dims.all_positive(), "layer extents must be positive");
        Layer { name: name.into(), kind: LayerKind::Gemm, dims, stride: 1 }
    }

    /// The layer's name (unique within a model).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the layer (used when composing models).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The operator family.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Loop-nest extents in canonical `K, C, Y, X, R, S` order.
    pub fn dims(&self) -> &DimVec<u64> {
        &self.dims
    }

    /// Convolution stride (1 for GEMMs).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Total multiply-accumulate operations: the product of all six extents.
    ///
    /// This is invariant under any mapping — a property the cost-model test
    /// suite checks.
    pub fn macs(&self) -> u64 {
        self.dims.product()
    }

    /// Footprint of `tensor` over the whole layer, in words.
    pub fn tensor_size(&self, tensor: Tensor) -> u64 {
        tensor_footprint(self.kind, tensor, &self.dims, self.stride)
    }

    /// Sum of all three tensor footprints over the whole layer, in words.
    pub fn total_data(&self) -> u64 {
        Tensor::ALL.iter().map(|&t| self.tensor_size(t)).sum()
    }

    /// Arithmetic intensity: MACs per data word moved at minimum.
    ///
    /// CNN layers land in the hundreds (compute-bound); embedding gathers
    /// land below 1 (memory-bound). The paper's edge/cloud narratives hinge
    /// on this spread.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.macs() as f64 / self.total_data() as f64
    }

    /// A shape key identifying layers that are interchangeable for mapping
    /// purposes (same kind, extents, and stride, ignoring the name).
    pub fn shape_key(&self) -> (LayerKind, DimVec<u64>, u64) {
        (self.kind, self.dims, self.stride)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:?} {} s{}", self.name, self.kind, self.dims, self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_macs_and_footprints() {
        // 64 output channels, 32 input, 16x16 outputs, 3x3 filters.
        let l = Layer::conv("l", 64, 32, 16, 16, 3, 3, 1);
        assert_eq!(l.macs(), 64 * 32 * 16 * 16 * 3 * 3);
        assert_eq!(l.tensor_size(Tensor::Weight), 64 * 32 * 3 * 3);
        assert_eq!(l.tensor_size(Tensor::Output), 64 * 16 * 16);
        // Input includes the halo: (16-1)*1+3 = 18 per spatial dim.
        assert_eq!(l.tensor_size(Tensor::Input), 32 * 18 * 18);
    }

    #[test]
    fn strided_conv_halo() {
        let l = Layer::conv("l", 8, 8, 10, 10, 3, 3, 2);
        // (10-1)*2+3 = 21.
        assert_eq!(l.tensor_size(Tensor::Input), 8 * 21 * 21);
    }

    #[test]
    fn gemm_maps_to_conv_dims() {
        let l = Layer::gemm("g", 768, 512, 3072);
        assert_eq!(l.dims()[Dim::K], 768);
        assert_eq!(l.dims()[Dim::C], 3072);
        assert_eq!(l.dims()[Dim::Y], 512);
        assert_eq!(l.macs(), 768 * 512 * 3072);
        assert_eq!(l.tensor_size(Tensor::Weight), 768 * 3072);
        assert_eq!(l.tensor_size(Tensor::Input), 3072 * 512);
        assert_eq!(l.tensor_size(Tensor::Output), 768 * 512);
    }

    #[test]
    fn depthwise_input_is_k_indexed() {
        let l = Layer::depthwise("dw", 32, 14, 14, 3, 3, 1);
        assert_eq!(l.dims()[Dim::C], 1);
        assert_eq!(l.tensor_size(Tensor::Weight), 32 * 3 * 3);
        assert_eq!(l.tensor_size(Tensor::Input), 32 * 16 * 16);
        let rel = LayerKind::DepthwiseConv.relevance(Tensor::Input);
        assert!(rel[Dim::K]);
        assert!(!rel[Dim::C]);
    }

    #[test]
    fn relevance_masks_cover_expected_dims() {
        let w = LayerKind::Conv.relevance(Tensor::Weight);
        assert_eq!(Dim::ALL.map(|d| w[d]), [true, true, false, false, true, true]);
        let o = LayerKind::Gemm.relevance(Tensor::Output);
        assert_eq!(Dim::ALL.map(|d| o[d]), [true, false, true, true, false, false]);
    }

    #[test]
    fn embedding_gather_is_memory_bound() {
        // Embedding row gather: 64-wide rows, batch 256, no reduction.
        let l = Layer::gemm("emb", 64, 256, 1);
        assert!(l.arithmetic_intensity() < 1.0);
        let conv = Layer::conv("c", 256, 256, 14, 14, 3, 3, 1);
        assert!(conv.arithmetic_intensity() > 50.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let _ = Layer::conv("bad", 0, 1, 1, 1, 1, 1, 1);
    }

    #[test]
    fn shape_key_ignores_name() {
        let a = Layer::conv("a", 8, 8, 8, 8, 3, 3, 1);
        let b = Layer::conv("b", 8, 8, 8, 8, 3, 3, 1);
        assert_eq!(a.shape_key(), b.shape_key());
    }
}
