//! The six canonical loop dimensions and a small fixed-size map keyed by them.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Number of loop dimensions in a convolution-shaped workload.
pub const NUM_DIMS: usize = 6;

/// A loop dimension of a convolution-shaped workload.
///
/// The naming follows the paper (Fig. 3(g)): `K` output channels, `C` input
/// channels, `Y`/`X` output rows/columns, `R`/`S` filter rows/columns.
/// GEMMs are expressed with `K←M, C←K, Y←N, X=R=S=1` (see
/// [`LayerKind::Gemm`](crate::LayerKind::Gemm)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Dim {
    /// Output channels.
    K = 0,
    /// Input channels (reduction).
    C = 1,
    /// Output rows.
    Y = 2,
    /// Output columns.
    X = 3,
    /// Filter rows (reduction).
    R = 4,
    /// Filter columns (reduction).
    S = 5,
}

impl Dim {
    /// All dimensions, in canonical `K, C, Y, X, R, S` order.
    pub const ALL: [Dim; NUM_DIMS] = [Dim::K, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S];

    /// Returns the canonical index of this dimension (0..6).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns the dimension with canonical index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 6`.
    #[inline]
    pub fn from_index(i: usize) -> Dim {
        Dim::ALL[i]
    }

    /// Whether this dimension participates in the output reduction
    /// (`C`, `R`, `S` accumulate partial sums; `K`, `Y`, `X` index outputs).
    #[inline]
    pub fn is_reduction(self) -> bool {
        matches!(self, Dim::C | Dim::R | Dim::S)
    }

    /// One-letter name used in encodings and reports.
    pub fn letter(self) -> char {
        match self {
            Dim::K => 'K',
            Dim::C => 'C',
            Dim::Y => 'Y',
            Dim::X => 'X',
            Dim::R => 'R',
            Dim::S => 'S',
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A fixed-size map from [`Dim`] to `T`.
///
/// This is the workhorse container of the whole reproduction: workload
/// extents, tile sizes, and iteration counts are all `DimVec`s.
///
/// # Examples
///
/// ```
/// use digamma_workload::{Dim, DimVec};
///
/// let mut tiles = DimVec::splat(1u64);
/// tiles[Dim::K] = 16;
/// assert_eq!(tiles.product(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimVec<T>(pub [T; NUM_DIMS]);

impl<T: Copy> DimVec<T> {
    /// Creates a `DimVec` with every entry set to `value`.
    pub fn splat(value: T) -> Self {
        DimVec([value; NUM_DIMS])
    }

    /// Applies `f` to every entry, producing a new `DimVec`.
    pub fn map<U, F: FnMut(T) -> U>(self, mut f: F) -> DimVec<U> {
        let [k, c, y, x, r, s] = self.0;
        DimVec([f(k), f(c), f(y), f(x), f(r), f(s)])
    }

    /// Combines two `DimVec`s entry-wise.
    pub fn zip_with<U: Copy, V, F: FnMut(T, U) -> V>(
        self,
        other: DimVec<U>,
        mut f: F,
    ) -> DimVec<V> {
        let a = self.0;
        let b = other.0;
        DimVec([
            f(a[0], b[0]),
            f(a[1], b[1]),
            f(a[2], b[2]),
            f(a[3], b[3]),
            f(a[4], b[4]),
            f(a[5], b[5]),
        ])
    }

    /// Iterates `(Dim, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Dim, T)> + '_ {
        Dim::ALL.iter().map(move |&d| (d, self.0[d.index()]))
    }
}

impl DimVec<u64> {
    /// Product of all entries (uses `u128` internally to avoid overflow).
    ///
    /// # Panics
    ///
    /// Panics if the product does not fit in `u64` (workload extents in this
    /// crate are far below that).
    pub fn product(&self) -> u64 {
        let p: u128 = self.0.iter().map(|&v| v as u128).product();
        u64::try_from(p).expect("dimension product overflows u64")
    }

    /// Entry-wise minimum with another `DimVec`.
    pub fn min(&self, other: &DimVec<u64>) -> DimVec<u64> {
        self.zip_with(*other, u64::min)
    }

    /// True when every entry is at least 1.
    pub fn all_positive(&self) -> bool {
        self.0.iter().all(|&v| v >= 1)
    }

    /// True when `self[d] <= other[d]` for every dimension.
    pub fn fits_within(&self, other: &DimVec<u64>) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }
}

impl<T> Index<Dim> for DimVec<T> {
    type Output = T;
    #[inline]
    fn index(&self, d: Dim) -> &T {
        &self.0[d.index()]
    }
}

impl<T> IndexMut<Dim> for DimVec<T> {
    #[inline]
    fn index_mut(&mut self, d: Dim) -> &mut T {
        &mut self.0[d.index()]
    }
}

impl<T: Copy + Default> Default for DimVec<T> {
    fn default() -> Self {
        DimVec([T::default(); NUM_DIMS])
    }
}

impl<T: fmt::Display> fmt::Display for DimVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in Dim::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}:{}", d, self.0[i])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_roundtrips_through_index() {
        for d in Dim::ALL {
            assert_eq!(Dim::from_index(d.index()), d);
        }
    }

    #[test]
    fn reduction_dims_are_c_r_s() {
        let reductions: Vec<Dim> = Dim::ALL.iter().copied().filter(|d| d.is_reduction()).collect();
        assert_eq!(reductions, vec![Dim::C, Dim::R, Dim::S]);
    }

    #[test]
    fn dimvec_indexing_and_product() {
        let mut v = DimVec::splat(2u64);
        v[Dim::Y] = 5;
        assert_eq!(v[Dim::Y], 5);
        assert_eq!(v.product(), 2 * 2 * 5 * 2 * 2 * 2);
    }

    #[test]
    fn dimvec_zip_and_min() {
        let a = DimVec([1u64, 2, 3, 4, 5, 6]);
        let b = DimVec([6u64, 5, 4, 3, 2, 1]);
        assert_eq!(a.min(&b), DimVec([1, 2, 3, 3, 2, 1]));
        let sum = a.zip_with(b, |x, y| x + y);
        assert_eq!(sum, DimVec::splat(7));
    }

    #[test]
    fn fits_within_is_entrywise() {
        let small = DimVec([1u64, 2, 3, 1, 1, 1]);
        let big = DimVec([2u64, 2, 3, 1, 1, 1]);
        assert!(small.fits_within(&big));
        assert!(!big.fits_within(&small));
    }

    #[test]
    fn display_is_nonempty() {
        let v = DimVec::splat(3u64);
        let s = format!("{v}");
        assert!(s.contains("K:3"));
        assert!(s.contains("S:3"));
    }
}
