//! The seven DNN models evaluated in the DiGamma paper.
//!
//! Three application domains, matching Sec. V-A:
//!
//! * vision CNNs — [`mobilenet_v2`], [`resnet18`], [`resnet50`], [`mnasnet`],
//! * language — [`bert`] (BERT-base encoder, sequence length 512),
//! * recommendation — [`dlrm`], [`ncf`] (batched MLPs + embedding gathers).
//!
//! Shapes are layer-accurate for 224×224 ImageNet inputs (CNNs) and standard
//! published configurations (BERT-base, DLRM/NCF with batch 256). Batch is
//! folded into the GEMM `N` dimension; CNNs use batch 1 as in the paper's
//! latency-per-inference setting.

mod bert;
mod mobile;
mod recsys;
mod resnet;
mod vgg;

pub use bert::bert;
pub use mobile::{mnasnet, mobilenet_v2};
pub use recsys::{dlrm, ncf};
pub use resnet::{resnet18, resnet50};
pub use vgg::vgg16;

use crate::Model;

/// All seven paper models, in the order used by the paper's tables.
pub fn all_models() -> Vec<Model> {
    vec![resnet18(), resnet50(), mobilenet_v2(), mnasnet(), bert(), dlrm(), ncf()]
}

/// Looks up a model by its table name (`resnet18`, `resnet50`,
/// `mbnet-v2`, `mnasnet`, `bert`, `ncf`, `dlrm`), plus the [`vgg16`]
/// extension workload.
pub fn by_name(name: &str) -> Option<Model> {
    match name.to_ascii_lowercase().as_str() {
        "resnet18" => Some(resnet18()),
        "resnet50" => Some(resnet50()),
        "mbnet-v2" | "mobilenetv2" | "mobilenet_v2" => Some(mobilenet_v2()),
        "mnasnet" => Some(mnasnet()),
        "bert" => Some(bert()),
        "dlrm" => Some(dlrm()),
        "ncf" => Some(ncf()),
        "vgg16" => Some(vgg16()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_has_seven_entries() {
        let models = all_models();
        assert_eq!(models.len(), 7);
        let names: Vec<&str> = models.iter().map(|m| m.name()).collect();
        assert!(names.contains(&"bert"));
        assert!(names.contains(&"dlrm"));
    }

    #[test]
    fn by_name_resolves_paper_spellings() {
        for name in ["Resnet18", "resnet50", "Mbnet-V2", "Mnasnet", "BERT", "NCF", "DLRM"] {
            assert!(by_name(name).is_some(), "missing model {name}");
        }
        assert!(by_name("vgg").is_none());
    }

    #[test]
    fn application_domains_have_distinct_intensity() {
        // CNNs are compute-intensive; recommendation models carry
        // memory-bound layers (paper Sec. V-C). The distinction shows up
        // per layer: every ResNet conv has high intensity, while DLRM's
        // embedding gathers sit below one MAC per word.
        // (The batch-1 classifier FC is legitimately memory-bound, so only
        // convolution layers are held to the compute-bound standard.)
        let cnn_min = resnet50()
            .layers()
            .iter()
            .filter(|l| l.kind() != crate::LayerKind::Gemm)
            .map(|l| l.arithmetic_intensity())
            .fold(f64::INFINITY, f64::min);
        let rec_min =
            dlrm().layers().iter().map(|l| l.arithmetic_intensity()).fold(f64::INFINITY, f64::min);
        assert!(cnn_min > 5.0, "resnet50 min intensity {cnn_min}");
        assert!(rec_min < 1.0, "dlrm min intensity {rec_min}");
    }
}
