//! ResNet-18 and ResNet-50 for 224×224 inputs.

use crate::{Layer, Model};

/// ResNet-18 (He et al., 2016), 224×224 input, ~1.8 GMACs.
pub fn resnet18() -> Model {
    let mut layers = vec![Layer::conv("conv1", 64, 3, 112, 112, 7, 7, 2)];
    // Four stages of two basic blocks each. (channels, output size, downsample)
    let stages: [(u64, u64, bool); 4] =
        [(64, 56, false), (128, 28, true), (256, 14, true), (512, 7, true)];
    let mut cin = 64;
    for (si, &(ch, sz, down)) in stages.iter().enumerate() {
        for b in 0..2 {
            let stride = if down && b == 0 { 2 } else { 1 };
            let block_cin = if b == 0 { cin } else { ch };
            layers.push(Layer::conv(
                format!("s{si}b{b}_conv1"),
                ch,
                block_cin,
                sz,
                sz,
                3,
                3,
                stride,
            ));
            layers.push(Layer::conv(format!("s{si}b{b}_conv2"), ch, ch, sz, sz, 3, 3, 1));
            if b == 0 && down {
                layers.push(Layer::conv(format!("s{si}_short"), ch, cin, sz, sz, 1, 1, 2));
            }
        }
        cin = ch;
    }
    layers.push(Layer::gemm("fc", 1000, 1, 512));
    Model::new("resnet18", layers)
}

/// ResNet-50 (He et al., 2016), 224×224 input, ~4.1 GMACs.
pub fn resnet50() -> Model {
    let mut layers = vec![Layer::conv("conv1", 64, 3, 112, 112, 7, 7, 2)];
    // (bottleneck mid channels, output channels, blocks, output size)
    let stages: [(u64, u64, u64, u64); 4] =
        [(64, 256, 3, 56), (128, 512, 4, 28), (256, 1024, 6, 14), (512, 2048, 3, 7)];
    let mut cin = 64;
    let mut size_in = 56; // after the stem max-pool
    for (si, &(mid, cout, blocks, sz)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let stride = if si > 0 && b == 0 { 2 } else { 1 };
            let block_cin = if b == 0 { cin } else { cout };
            let in_sz = if b == 0 { size_in } else { sz };
            // 1x1 reduce at input resolution, 3x3 (carries the stride), 1x1 expand.
            layers.push(Layer::conv(
                format!("s{si}b{b}_c1"),
                mid,
                block_cin,
                in_sz,
                in_sz,
                1,
                1,
                1,
            ));
            layers.push(Layer::conv(format!("s{si}b{b}_c2"), mid, mid, sz, sz, 3, 3, stride));
            layers.push(Layer::conv(format!("s{si}b{b}_c3"), cout, mid, sz, sz, 1, 1, 1));
            if b == 0 {
                layers.push(Layer::conv(
                    format!("s{si}_short"),
                    cout,
                    block_cin,
                    sz,
                    sz,
                    1,
                    1,
                    stride,
                ));
            }
        }
        cin = cout;
        size_in = sz;
    }
    layers.push(Layer::gemm("fc", 1000, 1, 2048));
    Model::new("resnet50", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_macs_near_published() {
        let g = resnet18().total_macs() as f64 / 1e9;
        assert!((1.4..2.2).contains(&g), "resnet18 GMACs = {g}");
    }

    #[test]
    fn resnet50_macs_near_published() {
        let g = resnet50().total_macs() as f64 / 1e9;
        assert!((3.5..4.6).contains(&g), "resnet50 GMACs = {g}");
    }

    #[test]
    fn resnet50_has_bottleneck_structure() {
        let m = resnet50();
        // 1 stem + 16 blocks * 3 convs + 4 shortcuts + 1 fc = 54 layers.
        assert_eq!(m.layers().len(), 54);
        // Deduplication compresses repeated blocks substantially.
        assert!(m.unique_layers().len() < m.layers().len());
    }

    #[test]
    fn resnet18_layer_count() {
        // 1 stem + 4 stages * (2 blocks * 2 convs) + 3 shortcuts + 1 fc = 21.
        assert_eq!(resnet18().layers().len(), 21);
    }
}
