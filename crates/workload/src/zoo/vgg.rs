//! VGG-16 (Simonyan & Zisserman, 2015): the canonical "deep CNN with
//! repeated shapes" workload.
//!
//! VGG's blocks stack identically-shaped 3×3 convolutions (conv3-256 ×3,
//! conv3-512 ×3 twice), so the model carries more layers than unique
//! shapes — 16 layers, 12 unique. That redundancy is what the batch-local
//! `(layer shape, mapping)` dedupe in the co-opt evaluation path (and the
//! unique-layer dedup before it) exists to exploit, which makes this the
//! reference model for proving those counters move.

use crate::{Layer, Model};

/// VGG-16 for 224×224 ImageNet inputs, batch 1 (the paper's
/// latency-per-inference setting). ~15.5 GMACs.
pub fn vgg16() -> Model {
    let layers = vec![
        Layer::conv("conv1_1", 64, 3, 224, 224, 3, 3, 1),
        Layer::conv("conv1_2", 64, 64, 224, 224, 3, 3, 1),
        Layer::conv("conv2_1", 128, 64, 112, 112, 3, 3, 1),
        Layer::conv("conv2_2", 128, 128, 112, 112, 3, 3, 1),
        Layer::conv("conv3_1", 256, 128, 56, 56, 3, 3, 1),
        Layer::conv("conv3_2", 256, 256, 56, 56, 3, 3, 1),
        Layer::conv("conv3_3", 256, 256, 56, 56, 3, 3, 1),
        Layer::conv("conv4_1", 512, 256, 28, 28, 3, 3, 1),
        Layer::conv("conv4_2", 512, 512, 28, 28, 3, 3, 1),
        Layer::conv("conv4_3", 512, 512, 28, 28, 3, 3, 1),
        Layer::conv("conv5_1", 512, 512, 14, 14, 3, 3, 1),
        Layer::conv("conv5_2", 512, 512, 14, 14, 3, 3, 1),
        Layer::conv("conv5_3", 512, 512, 14, 14, 3, 3, 1),
        Layer::gemm("fc6", 4096, 1, 512 * 7 * 7),
        Layer::gemm("fc7", 4096, 1, 4096),
        Layer::gemm("fc8", 1000, 1, 4096),
    ];
    Model::new("vgg16", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_macs_near_published() {
        let macs = vgg16().total_macs() as f64;
        // Published: ~15.5 GMACs per 224×224 inference.
        assert!((macs - 15.5e9).abs() / 15.5e9 < 0.02, "got {macs:.3e}");
    }

    #[test]
    fn vgg16_repeats_shapes() {
        let m = vgg16();
        assert_eq!(m.layers().len(), 16);
        let unique = m.unique_layers();
        assert_eq!(unique.len(), 12, "conv3_3 / conv4_3 / conv5_2+3 dedupe");
        let repeated: u64 = unique.iter().map(|u| u.count - 1).sum();
        assert_eq!(repeated, 4);
    }
}
