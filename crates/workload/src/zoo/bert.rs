//! BERT-base encoder as a sequence of GEMMs.

use crate::{Layer, Model};

/// BERT-base (Devlin et al., 2019): 12 encoder layers, hidden 768,
/// 12 heads, FFN 3072, sequence length 512. ~48 GMACs per sequence.
///
/// Every operator is a GEMM; attention scores / context GEMMs are emitted
/// per head (64-wide), which is exactly the granularity a spatial
/// accelerator maps.
pub fn bert() -> Model {
    const LAYERS: u64 = 12;
    const HIDDEN: u64 = 768;
    const HEADS: u64 = 12;
    const HEAD_DIM: u64 = HIDDEN / HEADS;
    const SEQ: u64 = 512;
    const FFN: u64 = 3072;

    let mut layers = Vec::new();
    for l in 0..LAYERS {
        for proj in ["q", "k", "v"] {
            layers.push(Layer::gemm(format!("l{l}_{proj}"), HIDDEN, SEQ, HIDDEN));
        }
        for h in 0..HEADS {
            // scores = Q·Kᵀ : [SEQ×SEQ] with reduction over HEAD_DIM.
            layers.push(Layer::gemm(format!("l{l}_h{h}_scores"), SEQ, SEQ, HEAD_DIM));
            // context = scores·V : [SEQ×HEAD_DIM] with reduction over SEQ.
            layers.push(Layer::gemm(format!("l{l}_h{h}_ctx"), SEQ, HEAD_DIM, SEQ));
        }
        layers.push(Layer::gemm(format!("l{l}_proj"), HIDDEN, SEQ, HIDDEN));
        layers.push(Layer::gemm(format!("l{l}_ffn1"), FFN, SEQ, HIDDEN));
        layers.push(Layer::gemm(format!("l{l}_ffn2"), HIDDEN, SEQ, FFN));
    }
    Model::new("bert", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_macs_near_published() {
        // 12 layers * (4*768*512*768 + 24*512*512*64 + 2*3072*512*768) ≈ 48 G.
        let g = bert().total_macs() as f64 / 1e9;
        assert!((42.0..55.0).contains(&g), "bert GMACs = {g}");
    }

    #[test]
    fn bert_dedups_to_six_unique_shapes() {
        let uniq = bert().unique_layers();
        // qkv+proj share one shape; scores; ctx; ffn1; ffn2 → 5 shapes.
        assert_eq!(uniq.len(), 5);
        let total: u64 = uniq.iter().map(|u| u.count).sum();
        assert_eq!(total as usize, bert().layers().len());
    }

    #[test]
    fn attention_gemms_are_per_head() {
        let m = bert();
        let scores = m.layers().iter().filter(|l| l.name().contains("scores")).count();
        assert_eq!(scores, 12 * 12);
    }
}
