//! MobileNetV2 and MnasNet-B1: inverted-residual CNNs for 224×224 inputs.

use crate::{Layer, Model};

/// One inverted-residual block: optional 1×1 expand, depthwise k×k
/// (carries the stride), 1×1 project.
fn inverted_residual(
    layers: &mut Vec<Layer>,
    tag: &str,
    cin: u64,
    cout: u64,
    expand: u64,
    kernel: u64,
    stride: u64,
    in_sz: u64,
    out_sz: u64,
) {
    let hidden = cin * expand;
    if expand > 1 {
        layers.push(Layer::conv(format!("{tag}_expand"), hidden, cin, in_sz, in_sz, 1, 1, 1));
    }
    layers.push(Layer::depthwise(
        format!("{tag}_dw"),
        hidden,
        out_sz,
        out_sz,
        kernel,
        kernel,
        stride,
    ));
    layers.push(Layer::conv(format!("{tag}_project"), cout, hidden, out_sz, out_sz, 1, 1, 1));
}

/// Expands a `(expand, cout, repeats, stride, kernel)` stage table into layers.
fn build_stages(
    layers: &mut Vec<Layer>,
    table: &[(u64, u64, u64, u64, u64)],
    mut cin: u64,
    mut sz: u64,
) -> (u64, u64) {
    for (si, &(t, c, n, s, k)) in table.iter().enumerate() {
        for b in 0..n {
            let stride = if b == 0 { s } else { 1 };
            let in_sz = sz;
            let out_sz = if stride == 2 { sz / 2 } else { sz };
            inverted_residual(layers, &format!("st{si}b{b}"), cin, c, t, k, stride, in_sz, out_sz);
            cin = c;
            sz = out_sz;
        }
    }
    (cin, sz)
}

/// MobileNetV2 (Sandler et al., 2018), 224×224 input, ~0.3 GMACs.
pub fn mobilenet_v2() -> Model {
    let mut layers = vec![Layer::conv("stem", 32, 3, 112, 112, 3, 3, 2)];
    // (expand t, channels c, repeats n, stride s, kernel k) — Table 2 of the paper.
    let table: [(u64, u64, u64, u64, u64); 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 32, 3, 2, 3),
        (6, 64, 4, 2, 3),
        (6, 96, 3, 1, 3),
        (6, 160, 3, 2, 3),
        (6, 320, 1, 1, 3),
    ];
    let (cin, sz) = build_stages(&mut layers, &table, 32, 112);
    layers.push(Layer::conv("head", 1280, cin, sz, sz, 1, 1, 1));
    layers.push(Layer::gemm("fc", 1000, 1, 1280));
    Model::new("mbnet-v2", layers)
}

/// MnasNet-B1 (Tan et al., 2019), 224×224 input, ~0.3 GMACs.
///
/// Uses the B1 stage table (mixed 3×3 / 5×5 kernels, no squeeze-excite);
/// SE blocks are negligible MACs and are omitted.
pub fn mnasnet() -> Model {
    let mut layers = vec![
        Layer::conv("stem", 32, 3, 112, 112, 3, 3, 2),
        // SepConv 3x3 stage: depthwise + pointwise to 16 channels.
        Layer::depthwise("sep_dw", 32, 112, 112, 3, 3, 1),
        Layer::conv("sep_pw", 16, 32, 112, 112, 1, 1, 1),
    ];
    let table: [(u64, u64, u64, u64, u64); 6] = [
        (3, 24, 3, 2, 3),
        (3, 40, 3, 2, 5),
        (6, 80, 3, 2, 5),
        (6, 96, 2, 1, 3),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    let (cin, sz) = build_stages(&mut layers, &table, 16, 112);
    layers.push(Layer::conv("head", 1280, cin, sz, sz, 1, 1, 1));
    layers.push(Layer::gemm("fc", 1000, 1, 1280));
    Model::new("mnasnet", layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    #[test]
    fn mobilenet_macs_near_published() {
        let g = mobilenet_v2().total_macs() as f64 / 1e9;
        assert!((0.25..0.45).contains(&g), "mbnet-v2 GMACs = {g}");
    }

    #[test]
    fn mnasnet_macs_near_published() {
        let g = mnasnet().total_macs() as f64 / 1e9;
        assert!((0.25..0.50).contains(&g), "mnasnet GMACs = {g}");
    }

    #[test]
    fn mobilenet_contains_depthwise_layers() {
        let m = mobilenet_v2();
        let dw = m.layers().iter().filter(|l| l.kind() == LayerKind::DepthwiseConv).count();
        // One depthwise per inverted-residual block: 1+2+3+4+3+3+1 = 17.
        assert_eq!(dw, 17);
    }

    #[test]
    fn mnasnet_uses_5x5_kernels() {
        let m = mnasnet();
        assert!(m
            .layers()
            .iter()
            .any(|l| l.kind() == LayerKind::DepthwiseConv && l.dims()[crate::Dim::R] == 5));
    }

    #[test]
    fn spatial_sizes_shrink_to_seven() {
        // The final head conv must operate at 7x7.
        for m in [mobilenet_v2(), mnasnet()] {
            let head = m.layers().iter().find(|l| l.name() == "head").unwrap();
            assert_eq!(head.dims()[crate::Dim::Y], 7, "{}", m.name());
        }
    }
}
