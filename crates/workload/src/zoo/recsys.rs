//! Recommendation models: DLRM and NCF, batch 256.
//!
//! Embedding-table row gathers are modelled as reduction-free GEMMs
//! (`K = embedding dim, Y = batch, C = 1`): one output word per word
//! fetched, which exercises exactly the memory-bound code path the paper's
//! recommendation workloads stress.

use crate::{Layer, Model};

const BATCH: u64 = 256;

/// DLRM (Naumov et al., 2019): 26 embedding gathers (dim 64), bottom MLP
/// 13→512→256→64, top MLP →512→256→1, batch 256.
pub fn dlrm() -> Model {
    let mut layers = Vec::new();
    // Bottom MLP over the 13 dense features.
    layers.push(Layer::gemm("bot0", 512, BATCH, 13));
    layers.push(Layer::gemm("bot1", 256, BATCH, 512));
    layers.push(Layer::gemm("bot2", 64, BATCH, 256));
    // 26 sparse-feature embedding gathers, dim 64.
    for t in 0..26 {
        layers.push(Layer::gemm(format!("emb{t}"), 64, BATCH, 1));
    }
    // Pairwise feature interaction output (27 choose 2 = 351) concatenated
    // with the bottom-MLP output (64) feeds the top MLP.
    layers.push(Layer::gemm("top0", 512, BATCH, 415));
    layers.push(Layer::gemm("top1", 256, BATCH, 512));
    layers.push(Layer::gemm("top2", 1, BATCH, 256));
    Model::new("dlrm", layers)
}

/// NCF / NeuMF (He et al., 2017): GMF + MLP towers, embedding dim 64,
/// MLP pyramid 128→256→128→64, batch 256.
pub fn ncf() -> Model {
    let mut layers = Vec::new();
    // User/item embeddings for both the GMF and MLP towers.
    for name in ["gmf_user", "gmf_item", "mlp_user", "mlp_item"] {
        layers.push(Layer::gemm(format!("emb_{name}"), 64, BATCH, 1));
    }
    // MLP tower over the concatenated 128-dim embedding.
    layers.push(Layer::gemm("mlp0", 256, BATCH, 128));
    layers.push(Layer::gemm("mlp1", 128, BATCH, 256));
    layers.push(Layer::gemm("mlp2", 64, BATCH, 128));
    // NeuMF head over concat(GMF 64, MLP 64).
    layers.push(Layer::gemm("head", 1, BATCH, 128));
    Model::new("ncf", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlrm_is_memory_bound() {
        let m = dlrm();
        // Every embedding gather moves more data than it computes.
        for l in m.layers().iter().filter(|l| l.name().starts_with("emb")) {
            assert!(l.arithmetic_intensity() < 1.0, "{} intensity", l.name());
        }
        // The 26 gathers dominate the layer count.
        assert_eq!(m.layers().iter().filter(|l| l.name().starts_with("emb")).count(), 26);
    }

    #[test]
    fn ncf_structure() {
        let m = ncf();
        assert_eq!(m.layers().len(), 8);
        let emb: u64 =
            m.layers().iter().filter(|l| l.name().starts_with("emb")).map(|l| l.macs()).sum();
        assert_eq!(emb, 4 * 64 * BATCH);
    }

    #[test]
    fn embedding_gathers_dedup() {
        // All 26 DLRM gathers share one shape.
        let uniq = dlrm().unique_layers();
        let gather = uniq.iter().find(|u| u.layer.name() == "emb0").unwrap();
        assert_eq!(gather.count, 26);
    }

    #[test]
    fn recsys_macs_are_small() {
        assert!(dlrm().total_macs() < 200_000_000);
        assert!(ncf().total_macs() < 100_000_000);
    }
}
