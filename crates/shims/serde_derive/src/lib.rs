//! Offline in-tree shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so
//! they are serialization-ready, but nothing in-tree serializes yet and
//! the build container has no crates.io access. These derives therefore
//! expand to nothing: the `#[derive(Serialize, Deserialize)]` attributes
//! compile, carry no behavior, and can be revived by swapping the real
//! `serde`/`serde_derive` back into the workspace manifest.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
