//! Offline in-tree shim for the subset of `criterion` this workspace
//! uses: `Criterion::bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! It is a plain wall-clock harness — a short warm-up, then timed
//! batches with a median-of-batches estimate — not a statistical engine.
//! Numbers are printed in criterion's `name ... time: [x]` shape so
//! existing eyeballs and scripts keep working. Swap the real criterion
//! back into the workspace manifest for serious measurements.

#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (API-compatible subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many routine calls per setup.
    SmallInput,
    /// Large inputs: one routine call per setup.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// The benchmark context handed to each registered function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints a timing estimate.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { estimate_ns: 0.0 };
        f(&mut bencher);
        println!("{id:<44} time: [{}]", format_ns(bencher.estimate_ns));
        self
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    estimate_ns: f64,
}

/// Target wall-clock spent measuring each benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

impl Bencher {
    /// Times `routine` called in a tight loop.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: also discovers a per-batch iteration count that keeps
        // timer overhead below ~1% of a batch.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            calls += 1;
        }
        let per_call = WARMUP_BUDGET.as_secs_f64() / calls.max(1) as f64;
        let batch = ((1e-4 / per_call.max(1e-12)) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < MEASURE_BUDGET || samples.is_empty() {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        self.estimate_ns = median(&mut samples) * 1e9;
    }

    /// Times `routine` over inputs produced by `setup`; only the routine
    /// is on the clock.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET {
            let input = setup();
            black_box(routine(input));
            calls += 1;
        }

        let mut samples = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < MEASURE_BUDGET || samples.is_empty() {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples.push(t.elapsed().as_secs_f64());
        }
        self.estimate_ns = median(&mut samples) * 1e9;
        let _ = calls;
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_positive_estimate() {
        let mut b = Bencher { estimate_ns: 0.0 };
        b.iter(|| 2u64.wrapping_mul(3));
        assert!(b.estimate_ns > 0.0);
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut b = Bencher { estimate_ns: 0.0 };
        b.iter_batched(|| vec![1u64; 16], |v| v.iter().sum::<u64>(), BatchSize::SmallInput);
        assert!(b.estimate_ns > 0.0);
    }

    #[test]
    fn format_covers_all_scales() {
        assert!(format_ns(5.0).ends_with("ns"));
        assert!(format_ns(5_000.0).ends_with("µs"));
        assert!(format_ns(5_000_000.0).ends_with("ms"));
        assert!(format_ns(5e9).ends_with(" s"));
    }
}
