//! Offline in-tree shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build container has no crates.io access, so this crate stands in
//! for the real `rand`. It provides:
//!
//! * [`rngs::SmallRng`] — a small, fast, non-cryptographic generator
//!   (xoshiro256++, the same family the real `SmallRng` uses on 64-bit
//!   targets), seeded deterministically via SplitMix64,
//! * [`Rng`] — `gen_range` over integer/float ranges and `gen_bool`,
//! * [`SeedableRng`] — `seed_from_u64`,
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! Only determinism and statistical plausibility matter for this
//! workspace (searches and property tests); the exact output streams do
//! NOT match the real `rand`, so swapping the real crate back in will
//! change seeded search trajectories but nothing else.

#![warn(missing_docs)]

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support (the `seed_from_u64` entry point the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with
    /// SplitMix64 so similar seeds yield unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Converts 64 random bits into a `f64` uniform in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits: exact dyadic rationals in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a value can be sampled from (the shim's equivalent of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(i32, i64, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against FP rounding pushing the sample onto the open end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + (end - start) * unit_f64(rng.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ (Blackman & Vigna).
    ///
    /// Matches the role (not the stream) of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (the shim's `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5u64..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn unit_f64_stays_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&v));
        }
    }
}
