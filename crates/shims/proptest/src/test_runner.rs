//! The deterministic sampling runner behind the `proptest!` macro.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-test configuration (only `cases` is honored by the shim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Source of randomness for strategies.
///
/// Always seeded with a fixed constant, so a property explores the same
/// case sequence on every run — failures are reproducible by design.
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: SmallRng,
}

impl Default for TestRunner {
    fn default() -> TestRunner {
        TestRunner { rng: SmallRng::seed_from_u64(0x0BAD_5EED_CAFE_F00D) }
    }
}

impl TestRunner {
    /// The runner's RNG, for strategies to draw from.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// Prints the failing case index if a property body panics (the shim's
/// substitute for proptest's failure persistence).
#[derive(Debug)]
pub struct CaseGuard {
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arms a guard for case number `case`.
    pub fn new(case: u32) -> CaseGuard {
        CaseGuard { case, armed: true }
    }

    /// Marks the case as passed; the guard stays silent on drop.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest shim: property failed on case #{} \
                 (cases are deterministic; rerun reproduces it)",
                self.case
            );
        }
    }
}
