//! `prop::collection` — strategies for containers.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use rand::Rng;

/// A `Vec` whose length is drawn from `len` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let n = runner.rng().gen_range(self.len.clone());
        (0..n).map(|_| self.element.sample(runner)).collect()
    }
}
