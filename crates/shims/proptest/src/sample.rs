//! `prop::sample` — choosing among explicit values.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use rand::Rng;

/// Uniformly selects one of the given values.
///
/// # Panics
///
/// The returned strategy panics when sampled if `values` is empty.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    Select { values }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, runner: &mut TestRunner) -> T {
        assert!(!self.values.is_empty(), "prop::sample::select on empty set");
        let i = runner.rng().gen_range(0..self.values.len());
        self.values[i].clone()
    }
}
