//! `prop::array` — fixed-size arrays of independently drawn elements.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// A `[T; 6]` with each element drawn independently from `element`.
pub fn uniform6<S: Strategy>(element: S) -> UniformArray<S, 6> {
    UniformArray { element }
}

/// See [`uniform6`].
#[derive(Debug, Clone)]
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn sample(&self, runner: &mut TestRunner) -> [S::Value; N] {
        core::array::from_fn(|_| self.element.sample(runner))
    }
}
