//! Offline in-tree shim for the subset of `proptest` this workspace uses.
//!
//! The build container has no crates.io access, so this crate stands in
//! for the real proptest. It keeps the same API shape — the `proptest!`
//! macro, `Strategy` combinators (`prop_map`, `prop_shuffle`), range and
//! tuple strategies, `prop::sample::select`, `prop::collection::vec`,
//! `prop::array::uniform6`, `TestRunner`/`ValueTree` — but runs plain
//! deterministic random sampling with **no shrinking**: a failing case
//! panics with the case index so it can be replayed (the runner is
//! seeded with a fixed constant, so every run explores the same cases).

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod array;
pub mod collection;
pub mod sample;

/// The most common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that samples its strategies `config.cases` times
/// and runs the body on every sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$attr:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::default();
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut runner);
                    )+
                    let guard = $crate::test_runner::CaseGuard::new(case);
                    $body
                    guard.disarm();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body (panics on failure; this
/// shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}
