//! Strategies: composable value generators.

use crate::test_runner::TestRunner;
use rand::seq::SliceRandom;
use rand::Rng;

/// A generator of test values (the shim keeps proptest's name and
/// combinator surface, minus shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Uniformly permutes produced collections (arrays or vectors).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }

    /// Samples a value wrapped in a [`ValueTree`] (compatibility with
    /// explicit `TestRunner` use; the shim's trees do not shrink).
    fn new_tree(&self, runner: &mut TestRunner) -> Result<Sampled<Self::Value>, String> {
        Ok(Sampled(self.sample(runner)))
    }
}

/// A sampled value posing as proptest's shrinkable tree.
pub trait ValueTree {
    /// The type of value in the tree.
    type Value;

    /// The current (only) value.
    fn current(&self) -> Self::Value;
}

/// The shim's only tree shape: a single sampled value.
#[derive(Debug, Clone)]
pub struct Sampled<T>(pub T);

impl<T: Clone> ValueTree for Sampled<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }
}

/// A strategy always producing clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.sample(runner))
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn sample(&self, runner: &mut TestRunner) -> S::Value {
        let mut value = self.inner.sample(runner);
        value.shuffle_in_place(runner);
        value
    }
}

/// Collections `prop_shuffle` knows how to permute.
pub trait Shuffleable {
    /// Fisher–Yates shuffle using the runner's RNG.
    fn shuffle_in_place(&mut self, runner: &mut TestRunner);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle_in_place(&mut self, runner: &mut TestRunner) {
        self.as_mut_slice().shuffle(runner.rng());
    }
}

impl<T, const N: usize> Shuffleable for [T; N] {
    fn shuffle_in_place(&mut self, runner: &mut TestRunner) {
        self.as_mut_slice().shuffle(runner.rng());
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(i32, i64, u32, u64, usize, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.sample(runner),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6)
}
