//! Offline in-tree shim for the subset of `serde` this workspace uses.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (no
//! `#[serde(...)]` attributes, no serializer in tree), so this shim just
//! re-exports the no-op derives from the sibling `serde_derive` shim.
//! Swapping the real serde back in is a one-line workspace change.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
