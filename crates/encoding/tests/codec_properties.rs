//! Property-based tests for the encoding layer: every vector decodes to
//! a valid design, repair is idempotent, and the codec round-trips.

use digamma_costmodel::Platform;
use digamma_encoding::{repair, Codec, Genome};
use digamma_workload::zoo;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary (even wildly out-of-range) vectors decode to genomes
    /// whose mappings validate on every layer.
    #[test]
    fn any_vector_decodes_valid(values in prop::collection::vec(-10.0f64..10.0, 0..4), seed in 0u64..1_000) {
        let unique = zoo::dlrm().unique_layers();
        let platform = Platform::edge();
        let codec = Codec::new(&unique, &platform, 2);
        // Build a full-length vector from the short random prefix.
        let x: Vec<f64> = (0..codec.dimension())
            .map(|i| values.get(i % values.len().max(1)).copied()
                .unwrap_or((seed as f64 + i as f64).sin()))
            .collect();
        let genome = codec.decode(&x);
        prop_assert!(genome.num_pes() <= platform.max_pes);
        for (u, m) in unique.iter().zip(genome.decode(&unique)) {
            prop_assert!(m.validate(&u.layer).is_ok());
        }
    }

    /// encode→decode is the identity on repaired genomes for both 2- and
    /// 3-level encodings.
    #[test]
    fn roundtrip_identity(seed in 0u64..2_000, levels in 2usize..=3) {
        let unique = zoo::ncf().unique_layers();
        let platform = Platform::cloud();
        let codec = Codec::new(&unique, &platform, levels);
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Genome::random(&mut rng, &unique, &platform, levels);
        let back = codec.decode(&codec.encode(&g));
        prop_assert_eq!(back, g);
    }

    /// encode→decode round-trips for *arbitrary valid* genomes — not
    /// just fresh random ones: any damaged genome becomes valid again
    /// through `repair` (the invariant every searcher maintains), and
    /// the codec must round-trip those too, for both level counts.
    #[test]
    fn roundtrip_identity_on_repaired_damage(
        seed in 0u64..2_000,
        fanout0 in 0u64..1_000_000,
        fanout1 in 0u64..1_000_000,
        tile in 0u64..1_000_000,
        levels in 2usize..=3,
    ) {
        let unique = zoo::ncf().unique_layers();
        let platform = Platform::edge();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = Genome::random(&mut rng, &unique, &platform, levels);
        // Arbitrary damage to HW and mapping genes…
        g.fanouts[0] = fanout0;
        g.fanouts[1] = fanout1;
        g.layers[0].levels[0].tile = digamma_workload::DimVec::splat(tile);
        let li = (seed as usize) % g.layers.len();
        g.layers[li].levels[levels - 1].tile =
            digamma_workload::DimVec::splat(tile / 7 + 1);
        // …made valid again by repair, which every searcher guarantees.
        repair(&mut g, &unique, &platform);
        let codec = Codec::new(&unique, &platform, levels);
        let back = codec.decode(&codec.encode(&g));
        prop_assert_eq!(back, g);
    }

    /// Repair is idempotent for arbitrary damage.
    #[test]
    fn repair_idempotent(seed in 0u64..2_000, fanout0 in 0u64..1_000_000, tile in 0u64..1_000_000) {
        let unique = zoo::ncf().unique_layers();
        let platform = Platform::edge();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = Genome::random(&mut rng, &unique, &platform, 2);
        g.fanouts[0] = fanout0;
        g.layers[0].levels[0].tile = digamma_workload::DimVec::splat(tile);
        repair(&mut g, &unique, &platform);
        let once = g.clone();
        repair(&mut g, &unique, &platform);
        prop_assert_eq!(g, once);
    }

    /// Mappings built from a genome rebuild the same genome through
    /// `from_mappings` (the template/grid-search path).
    #[test]
    fn from_mappings_inverts_decode(seed in 0u64..2_000) {
        let unique = zoo::dlrm().unique_layers();
        let platform = Platform::edge();
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Genome::random(&mut rng, &unique, &platform, 2);
        let mappings = g.decode(&unique);
        let rebuilt = Genome::from_mappings(&mappings);
        // decode() repairs (nests tiles), so compare decoded forms.
        prop_assert_eq!(rebuilt.decode(&unique), mappings);
    }
}
