//! Design-point encoding for HW-Mapping co-optimization (paper Sec. III-C).
//!
//! A design point couples *hardware genes* (per-level PE fan-outs π, from
//! which buffer sizes are derived) with *mapping genes* (per unique layer,
//! per level: loop order, parallel dimension, tile sizes). This crate
//! provides:
//!
//! * [`Genome`] — the structured encoding DiGamma's genetic operators act
//!   on, with [`Genome::decode`] producing validated
//!   [`Mapping`](digamma_costmodel::Mapping)s,
//! * [`repair`] — the normalization pass that clamps and nests tiles so
//!   any perturbed genome decodes to a structurally valid design,
//! * [`Codec`] — a `[0,1]^d` continuous-vector view of the same space
//!   ("random-key" ordering, log-scaled sizes) so that black-box
//!   optimizers (PSO, DE, CMA-ES, …) can search it, and
//! * [`space`] — design-space cardinality calculators reproducing the
//!   O(10¹²) / O(10²⁴) / O(10³⁶) estimates of Sec. I–II.
//!
//! # Example
//!
//! ```
//! use digamma_encoding::{Codec, Genome};
//! use digamma_costmodel::Platform;
//! use digamma_workload::zoo;
//! use rand::SeedableRng;
//!
//! let model = zoo::mnasnet();
//! let unique = model.unique_layers();
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let genome = Genome::random(&mut rng, &unique, &Platform::edge(), 2);
//! let mappings = genome.decode(&unique);
//! assert_eq!(mappings.len(), unique.len());
//! for (u, m) in unique.iter().zip(&mappings) {
//!     m.validate(&u.layer).expect("decoded mappings are always valid");
//! }
//! // The same genome round-trips through the continuous codec.
//! let codec = Codec::new(&unique, &Platform::edge(), 2);
//! let x = codec.encode(&genome);
//! assert_eq!(x.len(), codec.dimension());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod codec;
mod genome;
mod repair;
pub mod space;
mod text;

pub use codec::Codec;
pub use genome::{Genome, LayerGenes, LevelGenes};
pub use repair::repair;
pub use text::GenomeParseError;
