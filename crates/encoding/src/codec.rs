//! Continuous-vector view of the genome for black-box optimizers.
//!
//! Nevergrad-style algorithms (PSO, DE, CMA-ES, …) search `[0,1]^d`. This
//! codec maps such vectors onto [`Genome`]s:
//!
//! * fan-outs and tile sizes are **log-scaled** (`v = round(max^x)`), so a
//!   uniform step in `x` is a multiplicative step in the size — the
//!   natural metric for tiling;
//! * loop orders use the **random-key** trick: six keys per level, sorted
//!   ascending, yield the permutation;
//! * the parallel dimension is a 6-way bucket.
//!
//! Every vector decodes to a *valid* design point (decode ends with
//! [`repair`]), which is what makes the comparison of Fig. 5 fair: no
//! baseline ever wastes samples on structurally broken mappings.

use crate::genome::{Genome, LayerGenes, LevelGenes};
use crate::repair::repair;
use digamma_costmodel::Platform;
use digamma_workload::{Dim, DimVec, UniqueLayer, NUM_DIMS};

/// Genes per (layer, level): 6 order keys + 1 parallel bucket + 6 tiles.
const GENES_PER_LEVEL: usize = 2 * NUM_DIMS + 1;

/// Bidirectional mapping between `[0,1]^d` vectors and [`Genome`]s.
#[derive(Debug, Clone)]
pub struct Codec {
    unique: Vec<UniqueLayer>,
    platform: Platform,
    num_levels: usize,
}

impl Codec {
    /// Creates a codec for a model's unique layers on a platform.
    pub fn new(unique: &[UniqueLayer], platform: &Platform, num_levels: usize) -> Codec {
        assert!(num_levels >= 1, "need at least one level");
        Codec { unique: unique.to_vec(), platform: platform.clone(), num_levels }
    }

    /// The search-space dimensionality `d`.
    pub fn dimension(&self) -> usize {
        self.num_levels + self.unique.len() * self.num_levels * GENES_PER_LEVEL
    }

    /// The unique layers this codec encodes mappings for.
    pub fn unique_layers(&self) -> &[UniqueLayer] {
        &self.unique
    }

    /// Decodes a vector into a repaired, always-valid genome.
    ///
    /// Coordinates are clamped into `[0,1]` first, so optimizers need not
    /// respect bounds exactly.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dimension()`.
    pub fn decode(&self, x: &[f64]) -> Genome {
        assert_eq!(x.len(), self.dimension(), "vector length mismatch");
        let clamp = |v: f64| if v.is_finite() { v.clamp(0.0, 1.0) } else { 0.5 };

        let fanouts: Vec<u64> =
            (0..self.num_levels).map(|i| log_scale(clamp(x[i]), self.platform.max_pes)).collect();

        let mut layers = Vec::with_capacity(self.unique.len());
        let mut off = self.num_levels;
        for u in &self.unique {
            let mut levels = Vec::with_capacity(self.num_levels);
            for _ in 0..self.num_levels {
                let keys = &x[off..off + NUM_DIMS];
                let order = order_from_keys(keys);
                let spatial_idx =
                    ((clamp(x[off + NUM_DIMS]) * NUM_DIMS as f64) as usize).min(NUM_DIMS - 1);
                let spatial_dim = Dim::from_index(spatial_idx);
                let mut tile = DimVec::splat(1u64);
                for (i, d) in Dim::ALL.iter().enumerate() {
                    let extent = u.layer.dims()[*d];
                    tile[*d] = log_scale(clamp(x[off + NUM_DIMS + 1 + i]), extent);
                }
                levels.push(LevelGenes { spatial_dim, order, tile });
                off += GENES_PER_LEVEL;
            }
            layers.push(LayerGenes { levels });
        }

        let mut genome = Genome { fanouts, layers };
        repair(&mut genome, &self.unique, &self.platform);
        genome
    }

    /// Encodes a genome back into a vector (the center of each gene's
    /// pre-image, so `decode(encode(g)) == g` for repaired genomes).
    pub fn encode(&self, genome: &Genome) -> Vec<f64> {
        let mut x = Vec::with_capacity(self.dimension());
        for &f in &genome.fanouts {
            x.push(log_unscale(f, self.platform.max_pes));
        }
        for (lg, u) in genome.layers.iter().zip(&self.unique) {
            for level in &lg.levels {
                // Keys: dim at order position p gets key centered in its slot.
                let mut keys = [0.0f64; NUM_DIMS];
                for (pos, d) in level.order.iter().enumerate() {
                    keys[d.index()] = (pos as f64 + 0.5) / NUM_DIMS as f64;
                }
                x.extend_from_slice(&keys);
                x.push((level.spatial_dim.index() as f64 + 0.5) / NUM_DIMS as f64);
                for d in Dim::ALL {
                    x.push(log_unscale(level.tile[d], u.layer.dims()[d]));
                }
            }
        }
        x
    }
}

/// `x ∈ [0,1] → round(max^x)`, clamped to `[1, max]`.
fn log_scale(x: f64, max: u64) -> u64 {
    if max <= 1 {
        return 1;
    }
    let v = (max as f64).powf(x).round() as u64;
    v.clamp(1, max)
}

/// Inverse of [`log_scale`] (center value: `ln(v)/ln(max)`).
fn log_unscale(v: u64, max: u64) -> f64 {
    if max <= 1 || v <= 1 {
        return 0.0;
    }
    (v as f64).ln() / (max as f64).ln()
}

/// Random-key decoding: sort dims by ascending key (ties break on
/// canonical index, keeping decoding deterministic).
fn order_from_keys(keys: &[f64]) -> [Dim; NUM_DIMS] {
    let mut indexed: Vec<(usize, f64)> =
        keys.iter().enumerate().map(|(i, &k)| (i, if k.is_finite() { k } else { 0.5 })).collect();
    indexed.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut order = Dim::ALL;
    for (pos, (dim_idx, _)) in indexed.iter().enumerate() {
        order[pos] = Dim::from_index(*dim_idx);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_workload::zoo;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn codec() -> Codec {
        let unique = zoo::ncf().unique_layers();
        Codec::new(&unique, &Platform::edge(), 2)
    }

    #[test]
    fn dimension_matches_layout() {
        let c = codec();
        let n_layers = c.unique_layers().len();
        assert_eq!(c.dimension(), 2 + n_layers * 2 * 13);
    }

    #[test]
    fn any_vector_decodes_to_valid_mappings() {
        let c = codec();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..100 {
            let x: Vec<f64> = (0..c.dimension()).map(|_| rng.gen_range(-0.5..1.5)).collect();
            let g = c.decode(&x);
            for (u, m) in c.unique_layers().iter().zip(g.decode(c.unique_layers())) {
                m.validate(&u.layer).unwrap();
            }
        }
    }

    #[test]
    fn nan_coordinates_are_tolerated() {
        let c = codec();
        let x = vec![f64::NAN; c.dimension()];
        let g = c.decode(&x);
        for (u, m) in c.unique_layers().iter().zip(g.decode(c.unique_layers())) {
            m.validate(&u.layer).unwrap();
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = codec();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..20 {
            let g = Genome::random(&mut rng, c.unique_layers(), &Platform::edge(), 2);
            let x = c.encode(&g);
            assert_eq!(x.len(), c.dimension());
            let g2 = c.decode(&x);
            assert_eq!(g, g2, "decode(encode(g)) must reproduce g");
        }
    }

    #[test]
    fn order_from_keys_sorts_ascending() {
        let keys = [0.9, 0.1, 0.5, 0.3, 0.7, 0.2];
        let order = order_from_keys(&keys);
        assert_eq!(order[0], Dim::C); // key 0.1
        assert_eq!(order[5], Dim::K); // key 0.9
    }

    #[test]
    fn log_scale_endpoints() {
        assert_eq!(log_scale(0.0, 1024), 1);
        assert_eq!(log_scale(1.0, 1024), 1024);
        assert_eq!(log_scale(0.5, 1024), 32);
        assert_eq!(log_scale(0.7, 1), 1);
    }
}
