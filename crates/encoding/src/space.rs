//! Design-space cardinality calculators (paper Sec. I–II, experiment E4).
//!
//! The paper motivates co-optimization with three numbers: a mapping space
//! of O(10²⁴) per model, a HW space of O(10¹²) under a 128×128-PE /
//! 100 MB envelope, and their O(10³⁶) cross product. These functions
//! reproduce those estimates from first principles; everything works in
//! log₁₀ to avoid overflow.

use digamma_workload::{Dim, Model};

/// log₁₀ of the number of mapping candidates for one model at the given
/// number of cluster levels: per unique layer and level, `6!` loop orders
/// × 6 parallel-dim choices × `Π_d extent_d` tile choices.
pub fn log10_mapping_space(model: &Model, num_levels: u32) -> f64 {
    let per_level_order: f64 = (720.0f64 * 6.0).log10(); // 6! orders × 6 parallel dims
    model
        .unique_layers()
        .iter()
        .map(|u| {
            let tiles: f64 = Dim::ALL.iter().map(|&d| (u.layer.dims()[d] as f64).log10()).sum();
            num_levels as f64 * (per_level_order + tiles)
        })
        .sum()
}

/// log₁₀ of the hardware configuration space under the paper's envelope
/// (footnote 1): PE arrays up to `max_pe_side × max_pe_side`, buffers up
/// to `max_buffer_bytes` allocated between two levels.
pub fn log10_hw_space(max_pe_side: u64, max_buffer_bytes: u64) -> f64 {
    // Every (width, height) PE-array shape × every split of the buffer
    // budget between L1 and L2 (byte granularity).
    let shapes = (max_pe_side as f64).log10() * 2.0;
    let buffers = (max_buffer_bytes as f64).log10();
    shapes + buffers
}

/// The paper's own envelope: 128×128 PEs, 100 MB of buffer → O(10¹²).
pub fn paper_hw_space_log10() -> f64 {
    log10_hw_space(128, 100_000_000)
}

/// log₁₀ of the joint HW × mapping space for a model.
pub fn log10_joint_space(model: &Model, num_levels: u32) -> f64 {
    paper_hw_space_log10() + log10_mapping_space(model, num_levels)
}

/// Sampling cost of naive two-loop optimization (Sec. II-C): an outer HW
/// optimizer taking `outer_samples` points, each requiring a full inner
/// mapping search of `inner_samples` points.
pub fn two_loop_sample_cost(outer_samples: u64, inner_samples: u64) -> u64 {
    outer_samples.saturating_mul(inner_samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_workload::zoo;

    #[test]
    fn paper_hw_space_is_order_1e12() {
        let l = paper_hw_space_log10();
        assert!((12.0..13.0).contains(&l), "log10 HW space = {l}");
    }

    #[test]
    fn mapping_space_is_astronomical_for_cnns() {
        // The paper quotes O(10²⁴) for a single mapper (GAMMA, per layer
        // searches); across a full model at 2 levels, the space is far
        // beyond that.
        let l = log10_mapping_space(&zoo::resnet18(), 2);
        assert!(l > 24.0, "log10 mapping space = {l}");
    }

    #[test]
    fn joint_space_exceeds_1e36() {
        let l = log10_joint_space(&zoo::mnasnet(), 2);
        assert!(l > 36.0, "log10 joint space = {l}");
    }

    #[test]
    fn two_loop_cost_matches_paper_example() {
        // "outer-loop can easily require more than 10K sampling points"
        // × GAMMA's ~160-sample-per-generation budget → 1.6 M points.
        assert_eq!(two_loop_sample_cost(10_000, 160), 1_600_000);
    }

    #[test]
    fn more_levels_grow_the_space() {
        let m = zoo::ncf();
        assert!(log10_mapping_space(&m, 3) > log10_mapping_space(&m, 2));
    }
}
