//! Exact-roundtrip text serialization for [`Genome`]s.
//!
//! The checkpoint/resume subsystem persists whole GA populations as
//! text; the workspace's serde is a no-op shim, so the format is
//! hand-rolled here where the genome's structure lives. Every gene is an
//! integer or an enum, so the encoding is exact — parsing the rendered
//! string always reproduces the genome bit-for-bit.
//!
//! Grammar (one line per genome, no whitespace):
//!
//! ```text
//! genome := fanouts ( "|" layer )*
//! fanouts := u64 ( "," u64 )*
//! layer  := level ( ";" level )*
//! level  := dim "," order "," u64 "," u64 "," u64 "," u64 "," u64 "," u64
//! dim    := "K" | "C" | "Y" | "X" | "R" | "S"
//! order  := six dim letters forming a permutation
//! ```
//!
//! e.g. a two-level, one-layer genome:
//! `8,16|K,KCYXRS,4,4,16,16,3,3;Y,CKYXRS,1,4,2,16,3,3`

use crate::genome::{Genome, LayerGenes, LevelGenes};
use digamma_workload::{Dim, DimVec, NUM_DIMS};
use std::fmt;

/// Why a genome string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenomeParseError {
    message: String,
}

impl GenomeParseError {
    fn new(message: impl Into<String>) -> GenomeParseError {
        GenomeParseError { message: message.into() }
    }
}

impl fmt::Display for GenomeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid genome text: {}", self.message)
    }
}

impl std::error::Error for GenomeParseError {}

fn dim_from_letter(c: char) -> Result<Dim, GenomeParseError> {
    Dim::ALL
        .into_iter()
        .find(|d| d.letter() == c)
        .ok_or_else(|| GenomeParseError::new(format!("unknown dim letter {c:?}")))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, GenomeParseError> {
    s.parse().map_err(|_| GenomeParseError::new(format!("bad {what}: {s:?}")))
}

fn parse_level(s: &str) -> Result<LevelGenes, GenomeParseError> {
    let fields: Vec<&str> = s.split(',').collect();
    if fields.len() != 2 + NUM_DIMS {
        return Err(GenomeParseError::new(format!(
            "level needs {} comma-separated fields, got {}",
            2 + NUM_DIMS,
            fields.len()
        )));
    }
    let mut p = fields[0].chars();
    let spatial_dim = match (p.next(), p.next()) {
        (Some(c), None) => dim_from_letter(c)?,
        _ => return Err(GenomeParseError::new(format!("bad P gene: {:?}", fields[0]))),
    };
    let letters: Vec<char> = fields[1].chars().collect();
    if letters.len() != NUM_DIMS {
        return Err(GenomeParseError::new(format!("bad order: {:?}", fields[1])));
    }
    let mut order = [Dim::K; NUM_DIMS];
    let mut seen = [false; NUM_DIMS];
    for (slot, &c) in order.iter_mut().zip(&letters) {
        let d = dim_from_letter(c)?;
        if std::mem::replace(&mut seen[d.index()], true) {
            return Err(GenomeParseError::new(format!("order repeats {c}: {:?}", fields[1])));
        }
        *slot = d;
    }
    let mut tile = DimVec::splat(1u64);
    for (i, d) in Dim::ALL.into_iter().enumerate() {
        tile[d] = parse_u64(fields[2 + i], "tile extent")?;
    }
    Ok(LevelGenes { spatial_dim, order, tile })
}

impl Genome {
    /// Renders the genome as one line of text (see the module grammar).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (i, f) in self.fanouts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&f.to_string());
        }
        for lg in &self.layers {
            out.push('|');
            for (li, level) in lg.levels.iter().enumerate() {
                if li > 0 {
                    out.push(';');
                }
                out.push(level.spatial_dim.letter());
                out.push(',');
                for d in level.order {
                    out.push(d.letter());
                }
                for d in Dim::ALL {
                    out.push(',');
                    out.push_str(&level.tile[d].to_string());
                }
            }
        }
        out
    }

    /// Parses a genome rendered by [`Genome::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`GenomeParseError`] on malformed input; structural checks
    /// beyond the grammar (level counts matching fan-outs, tile nesting)
    /// are the caller's business, exactly as with a freshly mutated
    /// genome.
    pub fn from_text(s: &str) -> Result<Genome, GenomeParseError> {
        let mut parts = s.trim().split('|');
        let fanout_part = parts.next().unwrap_or("");
        let fanouts = fanout_part
            .split(',')
            .map(|f| parse_u64(f, "fanout"))
            .collect::<Result<Vec<u64>, _>>()?;
        if fanouts.is_empty() {
            return Err(GenomeParseError::new("no fanouts"));
        }
        let mut layers = Vec::new();
        for layer_part in parts {
            let levels =
                layer_part.split(';').map(parse_level).collect::<Result<Vec<LevelGenes>, _>>()?;
            if levels.len() != fanouts.len() {
                return Err(GenomeParseError::new(format!(
                    "layer has {} levels but genome has {} fanouts",
                    levels.len(),
                    fanouts.len()
                )));
            }
            layers.push(LayerGenes { levels });
        }
        Ok(Genome { fanouts, layers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_costmodel::Platform;
    use digamma_workload::zoo;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_genomes_roundtrip_exactly() {
        let unique = zoo::resnet18().unique_layers();
        let mut rng = SmallRng::seed_from_u64(31);
        for levels in [2, 3] {
            for _ in 0..25 {
                let g = Genome::random(&mut rng, &unique, &Platform::cloud(), levels);
                let text = g.to_text();
                let parsed = Genome::from_text(&text).expect("rendered genomes parse");
                assert_eq!(parsed, g);
                // The rendering is canonical: re-rendering is stable.
                assert_eq!(parsed.to_text(), text);
            }
        }
    }

    #[test]
    fn text_is_single_line_without_spaces() {
        let unique = zoo::ncf().unique_layers();
        let mut rng = SmallRng::seed_from_u64(5);
        let g = Genome::random(&mut rng, &unique, &Platform::edge(), 2);
        let text = g.to_text();
        assert!(!text.contains('\n') && !text.contains(' '), "{text}");
    }

    #[test]
    fn hardware_only_genome_roundtrips() {
        let g = Genome { fanouts: vec![4, 8, 2], layers: vec![] };
        assert_eq!(Genome::from_text(&g.to_text()).unwrap(), g);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "x",
            "8,16|K,KCYXRS,1,2,3",                             // too few fields
            "8,16|K,KCYXRS,1,2,3,4,5,x",                       // bad tile
            "8,16|Q,KCYXRS,1,2,3,4,5,6",                       // bad P gene
            "8,16|K,KKYXRS,1,2,3,4,5,6",                       // repeated order letter
            "8,16|K,KCYXR,1,2,3,4,5,6",                        // short order
            "8,16|K,KCYXRS,1,2,3,4,5,6",                       // 1 level vs 2 fanouts
            "8,16|KC,KCYXRS,1,2,3,4,5,6;K,KCYXRS,1,1,1,1,1,1", // long P gene
        ] {
            assert!(Genome::from_text(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn example_from_grammar_parses() {
        let g = Genome::from_text("8,16|K,KCYXRS,4,4,16,16,3,3;Y,CKYXRS,1,4,2,16,3,3").unwrap();
        assert_eq!(g.fanouts, vec![8, 16]);
        assert_eq!(g.layers.len(), 1);
        assert_eq!(g.layers[0].levels[1].spatial_dim, Dim::Y);
        assert_eq!(g.layers[0].levels[1].order[0], Dim::C);
        assert_eq!(g.layers[0].levels[0].tile[Dim::Y], 16);
    }
}
