//! Genome repair: normalize arbitrary gene values into a valid design.
//!
//! Genetic operators and continuous decoders are allowed to produce
//! out-of-range values; repair is the single place that restores the
//! structural invariants the cost model demands:
//!
//! 1. every fan-out ≥ 1 and the PE product within the platform cap,
//! 2. every tile extent in `[1, layer extent]`,
//! 3. tiles nested (each level's tile fits its parent's).
//!
//! Repair is idempotent, a property the test suite checks.

use crate::genome::Genome;
use digamma_costmodel::Platform;
use digamma_workload::UniqueLayer;

/// Fully repairs a genome in place (fan-outs, clamping, nesting).
pub fn repair(genome: &mut Genome, unique: &[UniqueLayer], platform: &Platform) {
    repair_fanouts(genome, platform);
    nest_tiles(genome, unique);
}

/// Clamps fan-outs to ≥ 1 and shrinks the largest fan-outs until the PE
/// product respects the platform cap.
pub(crate) fn repair_fanouts(genome: &mut Genome, platform: &Platform) {
    for f in &mut genome.fanouts {
        *f = (*f).max(1);
    }
    // Halve the largest fan-out until within budget; terminates because
    // the product strictly decreases while any fan-out exceeds 1.
    while genome.fanouts.iter().product::<u64>() > platform.max_pes {
        let largest = genome
            .fanouts
            .iter()
            .enumerate()
            .max_by_key(|(_, &f)| f)
            .map(|(i, _)| i)
            .expect("non-empty fan-outs");
        genome.fanouts[largest] = (genome.fanouts[largest] / 2).max(1);
    }
}

/// Clamps tiles into layer extents and enforces parent⊇child nesting.
pub(crate) fn nest_tiles(genome: &mut Genome, unique: &[UniqueLayer]) {
    for (layer_genes, u) in genome.layers.iter_mut().zip(unique) {
        let mut parent = *u.layer.dims();
        for level in &mut layer_genes.levels {
            level.tile = level.tile.map(|t| t.max(1)).min(&parent);
            parent = level.tile;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{Genome, LayerGenes, LevelGenes};
    use digamma_workload::{DimVec, Layer, UniqueLayer};

    fn unique() -> Vec<UniqueLayer> {
        vec![UniqueLayer { layer: Layer::conv("l", 64, 32, 16, 16, 3, 3, 1), count: 1 }]
    }

    fn broken_genome() -> Genome {
        Genome {
            fanouts: vec![0, 1 << 40],
            layers: vec![LayerGenes {
                levels: vec![
                    LevelGenes { tile: DimVec::splat(0), ..LevelGenes::unit() },
                    LevelGenes { tile: DimVec::splat(u64::MAX), ..LevelGenes::unit() },
                ],
            }],
        }
    }

    #[test]
    fn repair_fixes_everything() {
        let mut g = broken_genome();
        let platform = Platform::edge();
        repair(&mut g, &unique(), &platform);
        assert!(g.num_pes() <= platform.max_pes);
        assert!(g.fanouts.iter().all(|&f| f >= 1));
        for m in g.decode(&unique()) {
            m.validate(&unique()[0].layer).unwrap();
        }
    }

    #[test]
    fn repair_is_idempotent() {
        let mut g = broken_genome();
        let platform = Platform::edge();
        repair(&mut g, &unique(), &platform);
        let once = g.clone();
        repair(&mut g, &unique(), &platform);
        assert_eq!(g, once);
    }

    #[test]
    fn repair_preserves_valid_genomes() {
        let mut g = Genome {
            fanouts: vec![4, 8],
            layers: vec![LayerGenes {
                levels: vec![
                    LevelGenes { tile: DimVec([16, 32, 8, 16, 3, 3]), ..LevelGenes::unit() },
                    LevelGenes { tile: DimVec([4, 8, 2, 4, 3, 1]), ..LevelGenes::unit() },
                ],
            }],
        };
        let before = g.clone();
        repair(&mut g, &unique(), &Platform::edge());
        assert_eq!(g, before, "valid genomes must pass through untouched");
    }

    #[test]
    fn fanout_cap_shrinks_largest_first() {
        let mut g = broken_genome();
        repair_fanouts(&mut g, &Platform::edge());
        // The zero fan-out became 1; the huge one was halved down.
        assert_eq!(g.fanouts[0], 1);
        assert!(g.fanouts[1] <= Platform::edge().max_pes);
    }
}
