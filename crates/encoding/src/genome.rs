//! The structured design-point genome.

use crate::repair;
use digamma_costmodel::{LevelSpec, Mapping, Platform};
use digamma_workload::{Dim, DimVec, UniqueLayer, NUM_DIMS};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Mapping genes for one cluster level of one layer: the key order, the
/// `P` gene, and the tile-size values of the paper's key/value encoding
/// (Fig. 3(b-c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelGenes {
    /// Which dimension this level parallelizes across its fan-out.
    pub spatial_dim: Dim,
    /// Temporal loop order, outermost first.
    pub order: [Dim; NUM_DIMS],
    /// Tile extents handed to each sub-unit.
    pub tile: DimVec<u64>,
}

impl LevelGenes {
    /// Canonical-order genes with unit tiles.
    pub fn unit() -> LevelGenes {
        LevelGenes { spatial_dim: Dim::K, order: Dim::ALL, tile: DimVec::splat(1) }
    }
}

/// Mapping genes for one unique layer: one [`LevelGenes`] per cluster
/// level, outermost first. The level count always matches the genome's
/// hardware fan-out count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerGenes {
    /// Per-level genes, outermost first.
    pub levels: Vec<LevelGenes>,
}

/// A full design point: shared hardware genes plus per-unique-layer
/// mapping genes.
///
/// The hardware genes are the per-level fan-outs π (PE array size and
/// aspect ratio); L1/L2 buffer sizes are *not* genes — they are derived
/// from the decoded mappings by the buffer allocation strategy
/// (paper Sec. IV-C).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Genome {
    /// Per-level PE fan-outs, outermost first (`[π_L2, π_L1]`).
    pub fanouts: Vec<u64>,
    /// Mapping genes, one entry per unique layer.
    pub layers: Vec<LayerGenes>,
}

impl Genome {
    /// Number of cluster levels.
    pub fn num_levels(&self) -> usize {
        self.fanouts.len()
    }

    /// Total PEs the hardware genes instantiate.
    pub fn num_pes(&self) -> u64 {
        self.fanouts.iter().product()
    }

    /// Samples a uniformly random (then repaired) genome.
    ///
    /// Fan-outs are sampled log-uniformly up to the platform's PE cap;
    /// tiles log-uniformly within each layer dimension; orders are random
    /// permutations. The result always decodes to valid mappings.
    pub fn random<R: Rng + ?Sized>(
        rng: &mut R,
        unique: &[UniqueLayer],
        platform: &Platform,
        num_levels: usize,
    ) -> Genome {
        assert!(num_levels >= 1, "need at least one level");
        let max_fanout = platform.max_pes;
        let fanouts = (0..num_levels).map(|_| log_uniform(rng, max_fanout)).collect();
        let layers = unique
            .iter()
            .map(|u| LayerGenes {
                levels: (0..num_levels)
                    .map(|_| {
                        let mut order = Dim::ALL;
                        order.shuffle(rng);
                        let spatial_dim = Dim::from_index(rng.gen_range(0..NUM_DIMS));
                        let tile = u.layer.dims().map(|extent| log_uniform(rng, extent));
                        LevelGenes { spatial_dim, order, tile }
                    })
                    .collect(),
            })
            .collect();
        let mut genome = Genome { fanouts, layers };
        repair(&mut genome, unique, platform);
        genome
    }

    /// Builds a genome from explicit per-layer mappings sharing one PE
    /// array (the inverse of [`Genome::decode`]); used by the template
    /// and grid-search baselines so every scheme reports the same design
    /// representation.
    ///
    /// # Panics
    ///
    /// Panics if `mappings` is empty or the mappings disagree on fan-outs.
    pub fn from_mappings(mappings: &[Mapping]) -> Genome {
        assert!(!mappings.is_empty(), "need at least one mapping");
        let fanouts = mappings[0].pe_shape();
        let layers = mappings
            .iter()
            .map(|m| {
                assert_eq!(m.pe_shape(), fanouts, "mappings must share the PE array");
                LayerGenes {
                    levels: m
                        .levels()
                        .iter()
                        .map(|l| LevelGenes {
                            spatial_dim: l.spatial_dim,
                            order: l.order,
                            tile: l.tile,
                        })
                        .collect(),
                }
            })
            .collect();
        Genome { fanouts, layers }
    }

    /// Decodes into one validated [`Mapping`] per unique layer.
    ///
    /// Decoding repairs a copy of the genome first (clamping and nesting
    /// tiles), so the result is always structurally valid — genetic
    /// operators and continuous optimizers may hand in sloppy genomes.
    ///
    /// # Panics
    ///
    /// Panics if `unique.len()` differs from the genome's layer count.
    pub fn decode(&self, unique: &[UniqueLayer]) -> Vec<Mapping> {
        self.decode_with_fanouts(unique, &self.fanouts)
    }

    /// [`Genome::decode`] with the hardware fan-outs overridden — the
    /// Fixed-HW path, where a constraint pins the PE array. Equivalent
    /// to cloning the genome, overwriting `fanouts`, and decoding, but
    /// without materializing that intermediate clone (decoding already
    /// clones once internally for repair; evaluators batch-decode whole
    /// populations, so the saving is per genome per generation).
    ///
    /// # Panics
    ///
    /// Panics if `unique.len()` differs from the genome's layer count,
    /// or `fanouts.len()` from its level count.
    pub fn decode_with_fanouts(&self, unique: &[UniqueLayer], fanouts: &[u64]) -> Vec<Mapping> {
        assert_eq!(unique.len(), self.layers.len(), "layer count mismatch");
        assert_eq!(fanouts.len(), self.num_levels(), "fan-out count mismatch");
        let mut repaired = self.clone();
        if repaired.fanouts != fanouts {
            repaired.fanouts.clear();
            repaired.fanouts.extend_from_slice(fanouts);
        }
        repair::nest_tiles(&mut repaired, unique);
        repaired
            .layers
            .iter()
            .map(|lg| {
                Mapping::new(
                    lg.levels
                        .iter()
                        .zip(&repaired.fanouts)
                        .map(|(genes, &fanout)| LevelSpec {
                            fanout,
                            spatial_dim: genes.spatial_dim,
                            order: genes.order,
                            tile: genes.tile,
                        })
                        .collect(),
                )
            })
            .collect()
    }
}

impl std::fmt::Display for Genome {
    /// Paper-style rendering (Fig. 3(b-c)): one line per level with the
    /// π gene, the `P` gene, and the ordered `key:value` tile genes;
    /// repeated for each unique layer.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (li, lg) in self.layers.iter().enumerate() {
            if self.layers.len() > 1 {
                writeln!(f, "layer {li}:")?;
            }
            for (level, (&fanout, genes)) in self.fanouts.iter().zip(&lg.levels).enumerate() {
                let tag = self.fanouts.len() - level; // L2 outer, L1 inner
                write!(f, "  pi_L{tag}:{fanout} P:{} |", genes.spatial_dim)?;
                for d in genes.order {
                    write!(f, " {}:{}", d, genes.tile[d])?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// Samples log-uniformly from `[1, max]` (inclusive).
pub(crate) fn log_uniform<R: Rng + ?Sized>(rng: &mut R, max: u64) -> u64 {
    if max <= 1 {
        return 1;
    }
    let exp = rng.gen_range(0.0..=(max as f64).ln());
    (exp.exp().round() as u64).clamp(1, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_workload::zoo;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_genomes_always_decode_valid() {
        let unique = zoo::resnet18().unique_layers();
        let platform = Platform::edge();
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..50 {
            let g = Genome::random(&mut rng, &unique, &platform, 2);
            let mappings = g.decode(&unique);
            for (u, m) in unique.iter().zip(&mappings) {
                m.validate(&u.layer).unwrap();
            }
            assert!(g.num_pes() <= platform.max_pes);
        }
    }

    #[test]
    fn three_level_genomes_decode() {
        let unique = zoo::ncf().unique_layers();
        let mut rng = SmallRng::seed_from_u64(1);
        let g = Genome::random(&mut rng, &unique, &Platform::cloud(), 3);
        assert_eq!(g.num_levels(), 3);
        for (u, m) in unique.iter().zip(g.decode(&unique)) {
            m.validate(&u.layer).unwrap();
            assert_eq!(m.levels().len(), 3);
        }
    }

    #[test]
    fn decode_repairs_sloppy_tiles() {
        let unique = zoo::ncf().unique_layers();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut g = Genome::random(&mut rng, &unique, &Platform::edge(), 2);
        // Deliberately break nesting: inner tile larger than outer.
        g.layers[0].levels[0].tile = DimVec::splat(2);
        g.layers[0].levels[1].tile = DimVec::splat(1_000_000);
        let m = &g.decode(&unique)[0];
        m.validate(&unique[0].layer).unwrap();
    }

    #[test]
    fn decode_with_fanouts_matches_clone_and_override() {
        let unique = zoo::ncf().unique_layers();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..20 {
            let g = Genome::random(&mut rng, &unique, &Platform::edge(), 2);
            let fixed = [4u64, 8];
            let mut overridden = g.clone();
            overridden.fanouts = fixed.to_vec();
            assert_eq!(g.decode_with_fanouts(&unique, &fixed), overridden.decode(&unique));
            // And with the genome's own fan-outs it is exactly `decode`.
            assert_eq!(g.decode_with_fanouts(&unique, &g.fanouts), g.decode(&unique));
        }
    }

    #[test]
    fn log_uniform_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = log_uniform(&mut rng, 64);
            assert!((1..=64).contains(&v));
        }
        assert_eq!(log_uniform(&mut rng, 1), 1);
    }

    #[test]
    fn log_uniform_favors_small_values_geometrically() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 10_000;
        let small = (0..n).filter(|_| log_uniform(&mut rng, 1024) <= 32).count();
        // Log-uniform: P(v ≤ 32) = ln(32)/ln(1024) = 0.5.
        let frac = small as f64 / n as f64;
        assert!((0.42..0.58).contains(&frac), "frac {frac}");
    }
}
