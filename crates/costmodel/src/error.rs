//! Evaluation errors.

use digamma_workload::DimVec;
use std::error::Error;
use std::fmt;

/// Why a mapping could not be evaluated.
///
/// These are *structural* failures (a malformed mapping). Designs that are
/// merely over budget evaluate fine and are penalized by the constraint
/// checker in the `digamma` crate instead.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A level has a fan-out of zero.
    ZeroFanout {
        /// Index of the offending level (0 = outermost).
        level: usize,
    },
    /// A level has a tile extent of zero.
    ZeroTile {
        /// Index of the offending level (0 = outermost).
        level: usize,
    },
    /// A level's tile does not fit inside its parent's tile.
    TileExceedsParent {
        /// Index of the offending level (0 = outermost).
        level: usize,
        /// The offending tile.
        tile: DimVec<u64>,
        /// The parent extents it must fit within.
        parent: DimVec<u64>,
    },
    /// A level's loop order is not a permutation of the six dims.
    InvalidOrder {
        /// Index of the offending level (0 = outermost).
        level: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::ZeroFanout { level } => write!(f, "level {level} has zero fan-out"),
            EvalError::ZeroTile { level } => write!(f, "level {level} has a zero tile extent"),
            EvalError::TileExceedsParent { level, tile, parent } => {
                write!(f, "level {level} tile {tile} exceeds parent extents {parent}")
            }
            EvalError::InvalidOrder { level } => {
                write!(f, "level {level} loop order is not a permutation")
            }
        }
    }
}

impl Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_level() {
        let e = EvalError::ZeroFanout { level: 1 };
        assert!(e.to_string().contains("level 1"));
        let e = EvalError::TileExceedsParent {
            level: 0,
            tile: DimVec::splat(9),
            parent: DimVec::splat(3),
        };
        assert!(e.to_string().contains("exceeds"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvalError>();
    }
}
