//! Reusable evaluation scratch: the allocation-free hot path.
//!
//! The search loop calls the cost model millions of times, and profiling
//! the evaluator showed the dominant overhead was not arithmetic but
//! allocator traffic: every [`crate::simulate`] tile step built fresh
//! `Vec`s of active units and `HashSet`s for multicast dedup, and every
//! [`Evaluator`](crate::Evaluator) call materialized two full reuse
//! analyses (one to derive the hardware, one to score it). This module
//! provides the arena those paths reuse instead:
//!
//! * [`EvalScratch`] — a bag of buffers threaded through
//!   [`Evaluator::evaluate_with_scratch`](crate::Evaluator::evaluate_with_scratch)
//!   and [`simulate_with_scratch`](crate::simulate::simulate_with_scratch).
//!   Buffers are cleared (capacity kept) rather than reallocated, so after
//!   the first evaluation the steady state allocates only what the
//!   returned report itself must own.
//! * [`TileSet`] — an open-addressed set of tile ids with O(1)
//!   generation-stamped clearing: bumping a counter invalidates every
//!   slot at once, so the per-step multicast/eviction dedup sets reset
//!   without touching memory.
//!
//! Equivalence contract: results produced through a scratch are
//! **bit-identical** to the allocating reference paths
//! ([`crate::simulate::simulate`], `Evaluator::evaluate_baseline`), and a
//! reused scratch must behave exactly like a fresh one. Both properties
//! are enforced by tests here and in the sibling modules; debug builds
//! additionally assert the scratch is pristine after every reset
//! ([`EvalScratch::debug_assert_pristine`]).

use crate::analysis::{Analysis, LinkTraffic};
use digamma_workload::{DimVec, NUM_DIMS};

/// A tensor-tile identity: the tile's origin projected onto the tensor's
/// relevant dimensions (irrelevant coordinates zeroed). Shared with the
/// simulator.
pub(crate) type TileId = [u64; NUM_DIMS];

/// Per-unit resident-tile state (one entry per tensor). Shared with the
/// simulator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct UnitCache {
    pub(crate) resident: [Option<TileId>; 3],
}

/// One active unit during a lockstep simulation step: its path id, tile
/// origin, and clipped extent. Shared with the simulator.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ActiveUnit {
    pub(crate) unit_id: usize,
    pub(crate) origin: DimVec<u64>,
    pub(crate) clipped: DimVec<u64>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn hash_tile(id: &TileId) -> u64 {
    let mut h = FNV_OFFSET;
    for &w in id {
        h ^= w;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Fold the high bits down: open addressing masks with the table
    // size, so the low bits must carry the whole hash.
    h ^ (h >> 32)
}

/// An open-addressed set of [`TileId`]s with generation-stamped O(1)
/// clearing (the "flushed tiles" structure of the scratch-based
/// simulator). Insertion and membership are a hash-and-probe; `clear`
/// bumps a generation counter instead of touching slots.
#[derive(Debug, Clone)]
pub(crate) struct TileSet {
    /// `(stamp, id)` slots; a slot is live iff `stamp == generation`.
    slots: Vec<(u64, TileId)>,
    generation: u64,
    len: usize,
}

impl Default for TileSet {
    fn default() -> TileSet {
        TileSet::new()
    }
}

impl TileSet {
    const MIN_SLOTS: usize = 16;

    pub(crate) fn new() -> TileSet {
        // Stamp 0 with generation 1 marks every slot empty from birth.
        TileSet { slots: vec![(0, [0; NUM_DIMS]); TileSet::MIN_SLOTS], generation: 1, len: 0 }
    }

    /// Number of live entries.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Drops every entry in O(1) by advancing the generation stamp.
    pub(crate) fn clear(&mut self) {
        self.generation += 1;
        self.len = 0;
    }

    /// Inserts `id`; returns `true` when it was not present.
    pub(crate) fn insert(&mut self, id: TileId) -> bool {
        // Keep the load factor under 3/4 so probes stay short.
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = hash_tile(&id) as usize & mask;
        loop {
            let slot = &mut self.slots[i];
            if slot.0 != self.generation {
                *slot = (self.generation, id);
                self.len += 1;
                return true;
            }
            if slot.1 == id {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    /// Whether `id` is present.
    pub(crate) fn contains(&self, id: &TileId) -> bool {
        let mask = self.slots.len() - 1;
        let mut i = hash_tile(id) as usize & mask;
        loop {
            let slot = &self.slots[i];
            if slot.0 != self.generation {
                return false;
            }
            if slot.1 == *id {
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    /// Iterates live entries (arbitrary order — callers only count or
    /// re-insert into another set).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &TileId> {
        let generation = self.generation;
        self.slots.iter().filter(move |s| s.0 == generation).map(|s| &s.1)
    }

    fn grow(&mut self) {
        let live: Vec<TileId> = self.iter().copied().collect();
        let new_len = (self.slots.len() * 2).max(TileSet::MIN_SLOTS);
        self.slots.clear();
        self.slots.resize(new_len, (0, [0; NUM_DIMS]));
        self.generation = 1;
        self.len = 0;
        for id in live {
            self.insert(id);
        }
    }
}

/// Reusable buffers for one evaluation thread. See the module docs.
///
/// A scratch is plain mutable state: thread it through the `_with_scratch`
/// entry points (one scratch per worker thread). It may be freely reused
/// across different layers, mappings, and platforms — every entry point
/// resets exactly the state it reads.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Reused reuse-analysis output (levels and buffer vectors keep
    /// their capacity between evaluations).
    pub(crate) analysis: Analysis,
    // --- simulator arenas ---
    /// Active units at the current depth ("parents").
    pub(crate) sim_parents: Vec<ActiveUnit>,
    /// Active units being built for the next depth ("children").
    pub(crate) sim_children: Vec<ActiveUnit>,
    /// Per-depth unit caches, addressed by unit path id.
    pub(crate) sim_caches: Vec<Vec<UnitCache>>,
    /// Output tile ids ever flushed at each level.
    pub(crate) sim_flushed: Vec<TileSet>,
    /// Per-step multicast dedup, one set per tensor.
    pub(crate) sim_delivered: [TileSet; 3],
    /// Per-step merged evictions.
    pub(crate) sim_evicted: TileSet,
    /// Per-step partial-sum readbacks.
    pub(crate) sim_read_back: TileSet,
    /// Per-level tensor footprints.
    pub(crate) sim_footprints: Vec<[u64; 3]>,
    /// Per-level iteration counts.
    pub(crate) sim_counts: Vec<DimVec<u64>>,
    /// Per-level accumulated traffic.
    pub(crate) sim_traffic: Vec<LinkTraffic>,
    /// The combined odometer.
    pub(crate) sim_idx: Vec<DimVec<u64>>,
}

impl EvalScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }

    /// Debug-only leak check: called right after an entry point resets
    /// the scratch, this asserts no state from a previous evaluation
    /// survived the reset. Release builds compile it away.
    pub(crate) fn debug_assert_pristine(&self, num_levels: usize) {
        #[cfg(debug_assertions)]
        {
            assert!(self.sim_children.is_empty(), "child arena not cleared");
            assert_eq!(self.sim_caches.len(), num_levels);
            for units in &self.sim_caches {
                assert!(
                    units.iter().all(|u| *u == UnitCache::default()),
                    "unit caches leaked resident tiles across evaluations"
                );
            }
            assert_eq!(self.sim_flushed.len(), num_levels);
            assert!(self.sim_flushed.iter().all(|s| s.len() == 0), "flushed sets leaked");
            assert!(self.sim_delivered.iter().all(|s| s.len() == 0), "delivered sets leaked");
            assert_eq!(self.sim_evicted.len(), 0, "evicted set leaked");
            assert_eq!(self.sim_read_back.len(), 0, "read-back set leaked");
            assert!(
                self.sim_traffic.iter().all(|t| *t == LinkTraffic::default()),
                "traffic accumulators leaked"
            );
            assert!(self.sim_idx.iter().all(|i| i.iter().all(|(_, v)| v == 0)));
        }
        #[cfg(not(debug_assertions))]
        let _ = num_levels;
    }

    /// Read access to the (last) analysis for the evaluator path.
    pub(crate) fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Mutable access for [`crate::analysis::analyze_into`].
    pub(crate) fn analysis_mut(&mut self) -> &mut Analysis {
        &mut self.analysis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seed: u64) -> TileId {
        let mut t = [0u64; NUM_DIMS];
        for (i, w) in t.iter_mut().enumerate() {
            *w = seed.wrapping_mul(i as u64 + 1);
        }
        t
    }

    #[test]
    fn tile_set_insert_contains_and_counts() {
        let mut set = TileSet::new();
        assert!(set.insert(id(1)));
        assert!(!set.insert(id(1)), "duplicate insert must report existing");
        assert!(set.insert(id(2)));
        assert_eq!(set.len(), 2);
        assert!(set.contains(&id(1)));
        assert!(!set.contains(&id(3)));
    }

    #[test]
    fn tile_set_clear_is_generation_cheap_and_complete() {
        let mut set = TileSet::new();
        for s in 0..100 {
            set.insert(id(s));
        }
        set.clear();
        assert_eq!(set.len(), 0);
        for s in 0..100 {
            assert!(!set.contains(&id(s)), "cleared entry {s} still visible");
        }
        // Reuse after clear behaves like a fresh set.
        assert!(set.insert(id(7)));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn tile_set_grows_past_initial_capacity() {
        let mut set = TileSet::new();
        for s in 0..10_000u64 {
            assert!(set.insert(id(s)));
        }
        assert_eq!(set.len(), 10_000);
        for s in 0..10_000u64 {
            assert!(set.contains(&id(s)));
        }
        assert_eq!(set.iter().count(), 10_000);
    }

    #[test]
    fn tile_set_survives_many_generations() {
        // Generation stamps must never alias a stale slot as live.
        let mut set = TileSet::new();
        for round in 0..1000u64 {
            set.insert(id(round));
            assert!(set.contains(&id(round)));
            assert!(!set.contains(&id(round + 1)));
            set.clear();
        }
        assert_eq!(set.len(), 0);
    }
}
