//! An executable reference simulator for the mapping semantics.
//!
//! MAESTRO justifies its analytical model by validation against chip
//! prototypes; this reproduction cannot tape out chips, so it validates
//! the [`analysis`](crate::analysis) module against *execution* instead:
//! this simulator walks the exact tile schedule a mapping describes —
//! every loop iteration at every level, every spatial unit — and counts
//! the words that actually cross each link, using only operational rules:
//!
//! * each unit holds **one resident tile per tensor** (capacity-1 cache);
//!   a step needing a different tile is a miss and a transfer,
//! * transfers within a step are **multicast**: one copy per *distinct*
//!   tile id serves all children that need it,
//! * an output miss **flushes** the evicted partial upstream, and
//!   re-acquiring a previously flushed output tile **reads it back**,
//! * leaf steps execute the clipped tile's MACs.
//!
//! On cleanly divisible mappings the analytical model must agree
//! *exactly*; with ceil-folded (non-divisible) mappings it must be a
//! safe upper bound. Both properties are enforced by this module's tests
//! and the cross-crate property suite.
//!
//! Cost: exponential in the loop nest (it is an interpreter), so keep
//! layers small — it exists to validate the model, not to replace it.

use crate::analysis::LinkTraffic;
use crate::error::EvalError;
use crate::mapping::Mapping;
use crate::scratch::{ActiveUnit, EvalScratch, TileId, TileSet, UnitCache};
use digamma_workload::{tensor_footprint, Dim, DimVec, Layer, Tensor, NUM_DIMS};
use std::collections::HashSet;

/// Traffic measured by executing the schedule.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Words crossing the link feeding each level's children,
    /// outermost first — same layout as
    /// [`Analysis::levels`](crate::analysis::Analysis).
    pub levels: Vec<LinkTraffic>,
    /// Total MACs executed by leaf units (clipped tiles).
    pub macs_executed: u64,
}

struct Sim<'a> {
    layer: &'a Layer,
    mapping: &'a Mapping,
    relevance: [DimVec<bool>; 3],
    footprints: Vec<[u64; 3]>,
    /// Iteration counts per level, derived from the *unclipped* parent
    /// tile (uniform across sibling units, exactly as the analysis does).
    counts: Vec<DimVec<u64>>,
    traffic: Vec<LinkTraffic>,
    /// Caches of the units at each depth ≥ 1, addressed by unit path id.
    caches: Vec<Vec<UnitCache>>,
    /// Output tile ids ever flushed at each level (for readback counting).
    flushed: Vec<HashSet<TileId>>,
    macs: u64,
}

impl<'a> Sim<'a> {
    fn project(&self, origin: &DimVec<u64>, tensor_idx: usize) -> TileId {
        let mut id = [0u64; NUM_DIMS];
        for d in Dim::ALL {
            if self.relevance[tensor_idx][d] {
                id[d.index()] = origin[d];
            }
        }
        id
    }

    /// Executes one **global** lockstep step given the combined odometer
    /// state, counting transfers with chip-wide multicast dedup per level.
    fn step(&mut self, idx: &[DimVec<u64>]) {
        let levels = self.mapping.levels();
        // Parents at depth 0: the chip, owning the whole layer.
        let mut parents =
            vec![ActiveUnit { unit_id: 0, origin: DimVec::splat(0), clipped: *self.layer.dims() }];

        for (ell, level) in levels.iter().enumerate() {
            let fanout = level.fanout as usize;
            let spatial = level.spatial_dim;
            let mut children: Vec<ActiveUnit> = Vec::with_capacity(parents.len() * fanout);
            // Chip-wide per-step transfer dedup (multicast across *all*
            // units at this depth, siblings included).
            let mut delivered: [HashSet<TileId>; 3] = Default::default();
            let mut evicted: HashSet<TileId> = HashSet::new();
            let mut read_back: HashSet<TileId> = HashSet::new();

            for parent in &parents {
                // This level's step origin inside the parent's tile.
                let mut step_origin = parent.origin;
                for d in Dim::ALL {
                    let stride = level.tile[d] * if d == spatial { level.fanout } else { 1 };
                    step_origin[d] += idx[ell][d] * stride;
                }
                for c in 0..fanout {
                    let mut child_origin = step_origin;
                    child_origin[spatial] += c as u64 * level.tile[spatial];
                    // Active iff the origin lies inside the parent's
                    // *clipped* region (idle ceil-folds drop out here).
                    let inside = Dim::ALL
                        .iter()
                        .all(|&d| child_origin[d] < parent.origin[d] + parent.clipped[d]);
                    if !inside {
                        continue;
                    }
                    let child_unit = parent.unit_id * fanout + c;
                    for (ti, delivered_t) in delivered.iter_mut().enumerate() {
                        let id = self.project(&child_origin, ti);
                        let cache = &mut self.caches[ell][child_unit];
                        if cache.resident[ti] == Some(id) {
                            continue; // hit: stationary
                        }
                        if ti == 2 {
                            // Evictions merge in the NoC (adder tree):
                            // count once per distinct id per step.
                            if let Some(old) = cache.resident[ti] {
                                evicted.insert(old);
                            }
                            if self.flushed[ell].contains(&id) {
                                read_back.insert(id);
                            }
                        } else {
                            delivered_t.insert(id);
                        }
                        cache.resident[ti] = Some(id);
                    }
                    // Clip the child's tile to the data that exists.
                    let mut clipped = level.tile;
                    for d in Dim::ALL {
                        let end = parent.origin[d] + parent.clipped[d];
                        clipped[d] = clipped[d].min(end - child_origin[d]);
                    }
                    children.push(ActiveUnit {
                        unit_id: child_unit,
                        origin: child_origin,
                        clipped,
                    });
                }
            }

            let f = self.footprints[ell];
            self.traffic[ell].weight += delivered[0].len() as u128 * f[0] as u128;
            self.traffic[ell].input += delivered[1].len() as u128 * f[1] as u128;
            self.traffic[ell].output_write += evicted.len() as u128 * f[2] as u128;
            self.traffic[ell].output_read += read_back.len() as u128 * f[2] as u128;
            for id in evicted {
                self.flushed[ell].insert(id);
            }
            parents = children;
        }

        // Leaves compute their clipped tiles.
        for leaf in &parents {
            self.macs += leaf.clipped.product();
        }
    }

    /// Flush every resident output tile at the end of execution, merging
    /// simultaneous evictions of the same id (one final "step").
    fn final_flush(&mut self) {
        for (depth, units) in self.caches.iter().enumerate() {
            let words = self.footprints[depth][2] as u128;
            let mut evicted: HashSet<TileId> = HashSet::new();
            for unit in units {
                if let Some(id) = unit.resident[2] {
                    evicted.insert(id);
                }
            }
            self.traffic[depth].output_write += evicted.len() as u128 * words;
        }
    }

    /// Advances the combined odometer (levels outer→inner, each level's
    /// order outer→inner). Returns `false` when the schedule is complete.
    fn advance(&self, idx: &mut [DimVec<u64>]) -> bool {
        for ell in (0..self.mapping.levels().len()).rev() {
            let order = self.mapping.levels()[ell].order;
            for &d in order.iter().rev() {
                idx[ell][d] += 1;
                if idx[ell][d] < self.counts[ell][d] {
                    return true;
                }
                idx[ell][d] = 0;
            }
        }
        false
    }
}

/// Executes the full schedule and measures traffic.
///
/// This is the **allocating reference implementation**: it builds fresh
/// working state per call (and per tile step). The production path is
/// [`simulate_with_scratch`], which reuses an [`EvalScratch`]'s arenas
/// and must stay bit-identical to this one (enforced by the equivalence
/// tests below).
///
/// # Errors
///
/// Returns [`EvalError`] if the mapping is structurally invalid.
///
/// # Panics
///
/// May exhaust memory/time on large layers — this is a validation
/// interpreter for small workloads (≲ a million MACs).
pub fn simulate(layer: &Layer, mapping: &Mapping) -> Result<SimReport, EvalError> {
    mapping.validate(layer)?;
    let kind = layer.kind();
    let relevance = [
        kind.relevance(Tensor::Weight),
        kind.relevance(Tensor::Input),
        kind.relevance(Tensor::Output),
    ];
    let num_levels = mapping.levels().len();
    let footprints: Vec<[u64; 3]> = mapping
        .levels()
        .iter()
        .map(|l| {
            [
                tensor_footprint(kind, Tensor::Weight, &l.tile, layer.stride()),
                tensor_footprint(kind, Tensor::Input, &l.tile, layer.stride()),
                tensor_footprint(kind, Tensor::Output, &l.tile, layer.stride()),
            ]
        })
        .collect();
    // Unit count at depth ℓ = Π_{i≤ℓ} π_i (children of each level).
    let mut caches = Vec::with_capacity(num_levels);
    let mut units = 1usize;
    for l in mapping.levels() {
        units = units.saturating_mul(l.fanout as usize);
        caches.push(vec![UnitCache::default(); units]);
    }
    // Per-level iteration counts against the unclipped parent tile.
    let mut counts = Vec::with_capacity(num_levels);
    let mut parent = *layer.dims();
    for l in mapping.levels() {
        counts.push(l.iteration_counts(&parent));
        parent = l.tile;
    }

    let mut sim = Sim {
        layer,
        mapping,
        relevance,
        footprints,
        counts,
        traffic: vec![LinkTraffic::default(); num_levels],
        caches,
        flushed: vec![HashSet::new(); num_levels],
        macs: 0,
    };
    let mut idx = vec![DimVec::splat(0u64); num_levels];
    loop {
        sim.step(&idx);
        if !sim.advance(&mut idx) {
            break;
        }
    }
    sim.final_flush();
    Ok(SimReport { levels: sim.traffic, macs_executed: sim.macs })
}

/// Projects a tile origin onto one tensor's relevant dimensions.
fn project_origin(
    relevance: &[DimVec<bool>; 3],
    origin: &DimVec<u64>,
    tensor_idx: usize,
) -> TileId {
    let mut id = [0u64; NUM_DIMS];
    for d in Dim::ALL {
        if relevance[tensor_idx][d] {
            id[d.index()] = origin[d];
        }
    }
    id
}

/// [`simulate`], but allocation-free after warm-up: every piece of
/// working state — active-unit arenas, per-depth unit caches, multicast
/// dedup sets, flushed-tile sets, the odometer — lives in `scratch` and
/// is cleared (capacity kept) instead of reallocated. One scratch per
/// thread; reuse it across arbitrary layers and mappings.
///
/// Results are bit-identical to [`simulate`] (the equivalence tests in
/// this module compare them field by field), and debug builds assert the
/// scratch carries no state across calls.
///
/// # Errors
///
/// Returns [`EvalError`] if the mapping is structurally invalid.
pub fn simulate_with_scratch(
    layer: &Layer,
    mapping: &Mapping,
    scratch: &mut EvalScratch,
) -> Result<SimReport, EvalError> {
    mapping.validate(layer)?;
    let kind = layer.kind();
    let relevance = [
        kind.relevance(Tensor::Weight),
        kind.relevance(Tensor::Input),
        kind.relevance(Tensor::Output),
    ];
    let num_levels = mapping.levels().len();

    // Reset (not reallocate) every arena the walk uses.
    scratch.sim_footprints.clear();
    for l in mapping.levels() {
        scratch.sim_footprints.push([
            tensor_footprint(kind, Tensor::Weight, &l.tile, layer.stride()),
            tensor_footprint(kind, Tensor::Input, &l.tile, layer.stride()),
            tensor_footprint(kind, Tensor::Output, &l.tile, layer.stride()),
        ]);
    }
    scratch.sim_caches.resize_with(num_levels, Vec::new);
    let mut units = 1usize;
    for (depth, l) in mapping.levels().iter().enumerate() {
        units = units.saturating_mul(l.fanout as usize);
        let caches = &mut scratch.sim_caches[depth];
        caches.clear();
        caches.resize(units, UnitCache::default());
    }
    scratch.sim_counts.clear();
    let mut parent_tile = *layer.dims();
    for l in mapping.levels() {
        scratch.sim_counts.push(l.iteration_counts(&parent_tile));
        parent_tile = l.tile;
    }
    scratch.sim_traffic.clear();
    scratch.sim_traffic.resize(num_levels, LinkTraffic::default());
    scratch.sim_flushed.resize_with(num_levels, TileSet::new);
    for set in &mut scratch.sim_flushed {
        set.clear();
    }
    for set in &mut scratch.sim_delivered {
        set.clear();
    }
    scratch.sim_evicted.clear();
    scratch.sim_read_back.clear();
    scratch.sim_idx.clear();
    scratch.sim_idx.resize(num_levels, DimVec::splat(0u64));
    scratch.sim_parents.clear();
    scratch.sim_children.clear();
    scratch.debug_assert_pristine(num_levels);

    let EvalScratch {
        sim_parents,
        sim_children,
        sim_caches,
        sim_flushed,
        sim_delivered,
        sim_evicted,
        sim_read_back,
        sim_footprints,
        sim_counts,
        sim_traffic,
        sim_idx,
        ..
    } = scratch;

    let mut macs = 0u64;
    loop {
        // --- one global lockstep step (see `Sim::step`) ---
        sim_parents.clear();
        sim_parents.push(ActiveUnit {
            unit_id: 0,
            origin: DimVec::splat(0),
            clipped: *layer.dims(),
        });
        for (ell, level) in mapping.levels().iter().enumerate() {
            let fanout = level.fanout as usize;
            let spatial = level.spatial_dim;
            sim_children.clear();
            for set in sim_delivered.iter_mut() {
                set.clear();
            }
            sim_evicted.clear();
            sim_read_back.clear();

            for parent in sim_parents.iter() {
                let mut step_origin = parent.origin;
                for d in Dim::ALL {
                    let stride = level.tile[d] * if d == spatial { level.fanout } else { 1 };
                    step_origin[d] += sim_idx[ell][d] * stride;
                }
                for c in 0..fanout {
                    let mut child_origin = step_origin;
                    child_origin[spatial] += c as u64 * level.tile[spatial];
                    let inside = Dim::ALL
                        .iter()
                        .all(|&d| child_origin[d] < parent.origin[d] + parent.clipped[d]);
                    if !inside {
                        continue;
                    }
                    let child_unit = parent.unit_id * fanout + c;
                    for (ti, delivered_t) in sim_delivered.iter_mut().enumerate() {
                        let id = project_origin(&relevance, &child_origin, ti);
                        let cache = &mut sim_caches[ell][child_unit];
                        if cache.resident[ti] == Some(id) {
                            continue; // hit: stationary
                        }
                        if ti == 2 {
                            if let Some(old) = cache.resident[ti] {
                                sim_evicted.insert(old);
                            }
                            if sim_flushed[ell].contains(&id) {
                                sim_read_back.insert(id);
                            }
                        } else {
                            delivered_t.insert(id);
                        }
                        cache.resident[ti] = Some(id);
                    }
                    let mut clipped = level.tile;
                    for d in Dim::ALL {
                        let end = parent.origin[d] + parent.clipped[d];
                        clipped[d] = clipped[d].min(end - child_origin[d]);
                    }
                    sim_children.push(ActiveUnit {
                        unit_id: child_unit,
                        origin: child_origin,
                        clipped,
                    });
                }
            }

            let f = sim_footprints[ell];
            sim_traffic[ell].weight += sim_delivered[0].len() as u128 * f[0] as u128;
            sim_traffic[ell].input += sim_delivered[1].len() as u128 * f[1] as u128;
            sim_traffic[ell].output_write += sim_evicted.len() as u128 * f[2] as u128;
            sim_traffic[ell].output_read += sim_read_back.len() as u128 * f[2] as u128;
            for id in sim_evicted.iter() {
                sim_flushed[ell].insert(*id);
            }
            std::mem::swap(sim_parents, sim_children);
        }
        for leaf in sim_parents.iter() {
            macs += leaf.clipped.product();
        }

        // --- advance the combined odometer (see `Sim::advance`) ---
        let mut advanced = false;
        'advance: for ell in (0..num_levels).rev() {
            let order = mapping.levels()[ell].order;
            for &d in order.iter().rev() {
                sim_idx[ell][d] += 1;
                if sim_idx[ell][d] < sim_counts[ell][d] {
                    advanced = true;
                    break 'advance;
                }
                sim_idx[ell][d] = 0;
            }
        }
        if !advanced {
            break;
        }
    }

    // --- final flush (see `Sim::final_flush`) ---
    for (depth, units) in sim_caches.iter().enumerate() {
        let words = sim_footprints[depth][2] as u128;
        sim_evicted.clear();
        for unit in units {
            if let Some(id) = unit.resident[2] {
                sim_evicted.insert(id);
            }
        }
        sim_traffic[depth].output_write += sim_evicted.len() as u128 * words;
    }

    Ok(SimReport { levels: sim_traffic.clone(), macs_executed: macs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::mapping::LevelSpec;

    fn divisible_mapping(
        layer: &Layer,
        p2: Dim,
        p1: Dim,
        t2: DimVec<u64>,
        t1: DimVec<u64>,
        f2: u64,
        f1: u64,
    ) -> Mapping {
        let m = Mapping::new(vec![
            LevelSpec { fanout: f2, spatial_dim: p2, order: Dim::ALL, tile: t2 },
            LevelSpec { fanout: f1, spatial_dim: p1, order: Dim::ALL, tile: t1 },
        ]);
        m.validate(layer).unwrap();
        m
    }

    #[test]
    fn simulated_macs_always_equal_true_macs() {
        // Even with awkward non-divisible tiles, clipping must tile the
        // iteration space exactly once.
        let layer = Layer::conv("l", 6, 5, 7, 4, 3, 2, 1);
        let t2 = DimVec([4, 3, 5, 3, 2, 2]);
        let t1 = DimVec([3, 2, 2, 3, 1, 2]);
        let m = divisible_mapping(&layer, Dim::K, Dim::Y, t2, t1, 2, 3);
        let sim = simulate(&layer, &m).unwrap();
        assert_eq!(sim.macs_executed, layer.macs());
    }

    #[test]
    fn analytic_matches_simulation_exactly_on_divisible_mapping() {
        // 8/4/2 splits everywhere: no ceil effects, no clipping.
        let layer = Layer::conv("l", 8, 4, 8, 4, 1, 1, 1);
        let t2 = DimVec([4, 4, 4, 4, 1, 1]);
        let t1 = DimVec([2, 4, 1, 2, 1, 1]);
        let m = divisible_mapping(&layer, Dim::K, Dim::Y, t2, t1, 2, 4);
        let sim = simulate(&layer, &m).unwrap();
        let ana = analyze(&layer, &m).unwrap();
        for (lvl, (s, a)) in sim.levels.iter().zip(&ana.levels).enumerate() {
            assert_eq!(s.weight, a.traffic.weight, "weight at level {lvl}");
            assert_eq!(s.input, a.traffic.input, "input at level {lvl}");
            assert_eq!(s.output_write, a.traffic.output_write, "out-w at level {lvl}");
            assert_eq!(s.output_read, a.traffic.output_read, "out-r at level {lvl}");
        }
    }

    #[test]
    fn analytic_matches_simulation_with_reduction_readback() {
        // C iterates with an inner K loop: partial sums must bounce.
        let layer = Layer::conv("l", 4, 8, 2, 2, 1, 1, 1);
        let t2 = DimVec([2, 2, 2, 2, 1, 1]);
        let t1 = DimVec([1, 2, 1, 2, 1, 1]);
        let order = [Dim::C, Dim::K, Dim::Y, Dim::X, Dim::R, Dim::S];
        let m = Mapping::new(vec![
            LevelSpec { fanout: 1, spatial_dim: Dim::X, order, tile: t2 },
            LevelSpec { fanout: 2, spatial_dim: Dim::K, order: Dim::ALL, tile: t1 },
        ]);
        let sim = simulate(&layer, &m).unwrap();
        let ana = analyze(&layer, &m).unwrap();
        assert!(sim.levels[0].output_read > 0, "expected readback");
        assert_eq!(sim.levels[0].output_read, ana.levels[0].traffic.output_read);
        assert_eq!(sim.levels[0].output_write, ana.levels[0].traffic.output_write);
    }

    #[test]
    fn multicast_dedup_matches_analytic() {
        // K-parallel clusters share inputs: the simulator must count one
        // input transfer per step, like the analytic multicast rule.
        let layer = Layer::conv("l", 8, 4, 4, 4, 1, 1, 1);
        let t2 = DimVec([2, 4, 4, 4, 1, 1]);
        let t1 = DimVec([2, 4, 1, 4, 1, 1]);
        let m = divisible_mapping(&layer, Dim::K, Dim::Y, t2, t1, 4, 4);
        let sim = simulate(&layer, &m).unwrap();
        let ana = analyze(&layer, &m).unwrap();
        assert_eq!(sim.levels[0].input, ana.levels[0].traffic.input);
        assert_eq!(sim.levels[0].weight, ana.levels[0].traffic.weight);
    }

    #[test]
    fn analytic_upper_bounds_simulation_on_non_divisible_mappings() {
        // Ceil folds idle some children; the analytic model charges the
        // full footprint anyway, so it must never undercount.
        let layer = Layer::conv("l", 7, 5, 6, 5, 3, 3, 1);
        let t2 = DimVec([3, 5, 4, 3, 3, 2]);
        let t1 = DimVec([2, 3, 2, 3, 2, 2]);
        let m = divisible_mapping(&layer, Dim::K, Dim::Y, t2, t1, 2, 2);
        let sim = simulate(&layer, &m).unwrap();
        let ana = analyze(&layer, &m).unwrap();
        for (s, a) in sim.levels.iter().zip(&ana.levels) {
            assert!(a.traffic.weight >= s.weight);
            assert!(a.traffic.input >= s.input);
            assert!(a.traffic.output_write >= s.output_write);
        }
        assert_eq!(sim.macs_executed, layer.macs());
    }

    #[test]
    fn gemm_simulation_agrees() {
        let layer = Layer::gemm("g", 8, 4, 8);
        let t2 = DimVec([4, 4, 4, 1, 1, 1]);
        let t1 = DimVec([2, 4, 2, 1, 1, 1]);
        let m = divisible_mapping(&layer, Dim::K, Dim::Y, t2, t1, 2, 2);
        let sim = simulate(&layer, &m).unwrap();
        let ana = analyze(&layer, &m).unwrap();
        assert_eq!(sim.levels[0].weight, ana.levels[0].traffic.weight);
        assert_eq!(sim.levels[0].input, ana.levels[0].traffic.input);
        assert_eq!(sim.levels[1].output_write, ana.levels[1].traffic.output_write);
    }

    /// Field-by-field equality of two sim reports (LinkTraffic is `Eq`,
    /// so this is exact, not approximate).
    fn assert_reports_identical(a: &SimReport, b: &SimReport, context: &str) {
        assert_eq!(a.macs_executed, b.macs_executed, "macs differ: {context}");
        assert_eq!(a.levels.len(), b.levels.len(), "level count differs: {context}");
        for (lvl, (x, y)) in a.levels.iter().zip(&b.levels).enumerate() {
            assert_eq!(x, y, "traffic differs at level {lvl}: {context}");
        }
    }

    /// The mapping/layer menagerie the equivalence tests sweep: clean
    /// divisible splits, ceil-folded non-divisible tiles, reduction
    /// readback, gemm, and a three-level hierarchy.
    fn equivalence_cases() -> Vec<(Layer, Mapping)> {
        let mut cases = Vec::new();
        let conv = Layer::conv("l", 8, 4, 8, 4, 1, 1, 1);
        cases.push((
            conv.clone(),
            divisible_mapping(
                &conv,
                Dim::K,
                Dim::Y,
                DimVec([4, 4, 4, 4, 1, 1]),
                DimVec([2, 4, 1, 2, 1, 1]),
                2,
                4,
            ),
        ));
        let ragged = Layer::conv("l", 7, 5, 6, 5, 3, 3, 1);
        cases.push((
            ragged.clone(),
            divisible_mapping(
                &ragged,
                Dim::K,
                Dim::Y,
                DimVec([3, 5, 4, 3, 3, 2]),
                DimVec([2, 3, 2, 3, 2, 2]),
                2,
                2,
            ),
        ));
        let reduce = Layer::conv("l", 4, 8, 2, 2, 1, 1, 1);
        let order = [Dim::C, Dim::K, Dim::Y, Dim::X, Dim::R, Dim::S];
        cases.push((
            reduce,
            Mapping::new(vec![
                LevelSpec {
                    fanout: 1,
                    spatial_dim: Dim::X,
                    order,
                    tile: DimVec([2, 2, 2, 2, 1, 1]),
                },
                LevelSpec {
                    fanout: 2,
                    spatial_dim: Dim::K,
                    order: Dim::ALL,
                    tile: DimVec([1, 2, 1, 2, 1, 1]),
                },
            ]),
        ));
        let gemm = Layer::gemm("g", 8, 4, 8);
        cases.push((
            gemm.clone(),
            divisible_mapping(
                &gemm,
                Dim::K,
                Dim::Y,
                DimVec([4, 4, 4, 1, 1, 1]),
                DimVec([2, 4, 2, 1, 1, 1]),
                2,
                2,
            ),
        ));
        let deep = Layer::conv("l", 4, 4, 4, 4, 1, 1, 1);
        cases.push((
            deep,
            Mapping::new(vec![
                LevelSpec {
                    fanout: 2,
                    spatial_dim: Dim::K,
                    order: Dim::ALL,
                    tile: DimVec([2, 4, 4, 4, 1, 1]),
                },
                LevelSpec {
                    fanout: 2,
                    spatial_dim: Dim::Y,
                    order: Dim::ALL,
                    tile: DimVec([2, 4, 2, 4, 1, 1]),
                },
                LevelSpec {
                    fanout: 2,
                    spatial_dim: Dim::X,
                    order: Dim::ALL,
                    tile: DimVec([2, 2, 2, 2, 1, 1]),
                },
            ]),
        ));
        cases
    }

    #[test]
    fn scratch_simulation_matches_allocating_reference() {
        let mut scratch = EvalScratch::new();
        for (layer, mapping) in equivalence_cases() {
            let reference = simulate(&layer, &mapping).unwrap();
            let scratched = simulate_with_scratch(&layer, &mapping, &mut scratch).unwrap();
            assert_reports_identical(&reference, &scratched, layer.name());
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        // Run the whole menagerie through ONE scratch, then re-run each
        // case with a fresh scratch: any state leaking between
        // evaluations (stale caches, flushed sets, traffic) would break
        // this equality. The cases deliberately change level counts and
        // unit counts between runs to shrink and regrow every arena.
        let mut reused = EvalScratch::new();
        let cases = equivalence_cases();
        // Warm the reused scratch with everything once, in order.
        for (layer, mapping) in &cases {
            simulate_with_scratch(layer, mapping, &mut reused).unwrap();
        }
        // Second pass (reversed, so each case follows a *different*
        // predecessor than in the warm-up) against fresh scratches.
        for (layer, mapping) in cases.iter().rev() {
            let with_reuse = simulate_with_scratch(layer, mapping, &mut reused).unwrap();
            let with_fresh =
                simulate_with_scratch(layer, mapping, &mut EvalScratch::new()).unwrap();
            assert_reports_identical(&with_reuse, &with_fresh, layer.name());
        }
    }

    #[test]
    fn scratch_simulation_rejects_invalid_mappings() {
        let layer = Layer::conv("l", 8, 4, 8, 4, 1, 1, 1);
        let bad = Mapping::new(vec![LevelSpec {
            fanout: 0,
            spatial_dim: Dim::K,
            order: Dim::ALL,
            tile: DimVec::splat(1),
        }]);
        let mut scratch = EvalScratch::new();
        assert!(simulate_with_scratch(&layer, &bad, &mut scratch).is_err());
        // The scratch stays usable after an error.
        let good = Mapping::row_major_example(&layer, 2, 2);
        let a = simulate_with_scratch(&layer, &good, &mut scratch).unwrap();
        let b = simulate(&layer, &good).unwrap();
        assert_reports_identical(&a, &b, "post-error reuse");
    }

    #[test]
    fn three_level_simulation_runs() {
        let layer = Layer::conv("l", 4, 4, 4, 4, 1, 1, 1);
        let m = Mapping::new(vec![
            LevelSpec {
                fanout: 2,
                spatial_dim: Dim::K,
                order: Dim::ALL,
                tile: DimVec([2, 4, 4, 4, 1, 1]),
            },
            LevelSpec {
                fanout: 2,
                spatial_dim: Dim::Y,
                order: Dim::ALL,
                tile: DimVec([2, 4, 2, 4, 1, 1]),
            },
            LevelSpec {
                fanout: 2,
                spatial_dim: Dim::X,
                order: Dim::ALL,
                tile: DimVec([2, 2, 2, 2, 1, 1]),
            },
        ]);
        let sim = simulate(&layer, &m).unwrap();
        assert_eq!(sim.levels.len(), 3);
        assert_eq!(sim.macs_executed, layer.macs());
    }
}
