//! Access-count energy model with Eyeriss-style per-access ratios.
//!
//! Energy = Σ (access counts at each storage level × per-access energy).
//! The ratios follow the hierarchy measured by Eyeriss (Chen et al., ISCA
//! 2016): a DRAM access costs ~200× a MAC; an L2 access ~6×; local buffer
//! and NoC transfers a small multiple. Absolute pJ values are nominal —
//! experiments compare designs, not technologies.

use crate::analysis::Analysis;
use serde::{Deserialize, Serialize};

/// Per-access energies in pJ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One multiply-accumulate.
    pub mac_pj: f64,
    /// One word read/written at a per-PE L1 buffer.
    pub l1_pj: f64,
    /// One word read/written at a middle-level buffer.
    pub mid_pj: f64,
    /// One word read/written at the global L2 buffer.
    pub l2_pj: f64,
    /// One word-hop on the on-chip network.
    pub noc_pj: f64,
    /// One word transferred from/to DRAM.
    pub dram_pj: f64,
}

/// Default energy model (Eyeriss-style ratios, 16-bit words).
pub const ENERGY_MODEL_DEFAULT: EnergyModel =
    EnergyModel { mac_pj: 1.0, l1_pj: 1.5, mid_pj: 3.0, l2_pj: 6.0, noc_pj: 2.0, dram_pj: 200.0 };

/// Operand accesses charged at L1 per MAC (weight read, input read,
/// partial-sum update).
const L1_ACCESSES_PER_MAC: f64 = 3.0;

impl EnergyModel {
    /// Total energy in pJ for an analyzed `(layer, mapping)` pair.
    ///
    /// Accesses at a buffer level are the words entering it from above
    /// plus the words leaving it downward; MAC-side L1 accesses are a
    /// fixed per-MAC constant (identical for all mappings, so it only
    /// adds a floor).
    pub fn energy_pj(&self, analysis: &Analysis) -> f64 {
        let macs = analysis.macs_total as f64;
        let mut energy = macs * self.mac_pj + macs * L1_ACCESSES_PER_MAC * self.l1_pj;

        let words: Vec<f64> = analysis.levels.iter().map(|l| l.traffic.total() as f64).collect();
        // DRAM side of link 0.
        energy += words[0] * self.dram_pj;
        // Every on-chip link hop costs NoC energy.
        for &w in &words[1..] {
            energy += w * self.noc_pj;
        }
        // Buffer accesses: L2 absorbs link 0 and feeds link 1; middle
        // buffers sit between consecutive links; the innermost link fills
        // per-PE L1s.
        let n = words.len();
        energy += words[0] * self.l2_pj;
        if n > 1 {
            energy += words[1] * self.l2_pj;
        }
        for i in 1..n.saturating_sub(1) {
            energy += (words[i] + words[i + 1]) * self.mid_pj;
        }
        if n > 1 {
            energy += words[n - 1] * self.l1_pj;
        }
        energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::mapping::Mapping;
    use digamma_workload::Layer;

    #[test]
    fn energy_floor_is_compute_energy() {
        let l = Layer::conv("l", 32, 16, 8, 8, 3, 3, 1);
        let m = Mapping::row_major_example(&l, 4, 4);
        let a = analyze(&l, &m).unwrap();
        let e = ENERGY_MODEL_DEFAULT.energy_pj(&a);
        let floor = l.macs() as f64 * (1.0 + 3.0 * 1.5);
        assert!(e > floor);
    }

    #[test]
    fn dram_heavy_mapping_costs_more_energy() {
        let l = Layer::conv("l", 64, 32, 16, 16, 3, 3, 1);
        // Good: whole layer buffered at L2. Bad: tiny L2 tiles force refetch.
        let good = Mapping::row_major_example(&l, 4, 4);
        let mut bad = good.clone();
        let t = &mut bad.levels_mut()[0].tile;
        *t = digamma_workload::DimVec([16, 2, 2, 2, 1, 1]);
        bad.levels_mut()[1].tile = digamma_workload::DimVec([1, 1, 1, 1, 1, 1]);
        let a_good = analyze(&l, &good).unwrap();
        let a_bad = analyze(&l, &bad).unwrap();
        assert!(ENERGY_MODEL_DEFAULT.energy_pj(&a_bad) > ENERGY_MODEL_DEFAULT.energy_pj(&a_good));
    }

    #[test]
    fn energy_scales_with_dram_cost() {
        let l = Layer::conv("l", 32, 16, 8, 8, 3, 3, 1);
        let m = Mapping::row_major_example(&l, 4, 4);
        let a = analyze(&l, &m).unwrap();
        let base = ENERGY_MODEL_DEFAULT.energy_pj(&a);
        let mut expensive_dram = ENERGY_MODEL_DEFAULT;
        expensive_dram.dram_pj *= 10.0;
        assert!(expensive_dram.energy_pj(&a) > base);
    }
}
