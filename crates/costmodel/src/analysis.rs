//! Per-level reuse analysis: iteration counts, refetch factors, link
//! traffic, and minimum buffer requirements.
//!
//! # Model
//!
//! The accelerator is a tree: DRAM → global L2 buffer → `π₀` clusters
//! (→ optional middle buffers) → per-PE L1 buffers → MACs. Each mapping
//! level describes one fan-out stage. For level `ℓ` with parent tile `Tₚ`,
//! own tile `t`, loop order `O`, spatial dim `P` and fan-out `π`:
//!
//! * iteration counts `n[d] = ceil(Tₚ[d] / t[d])`, with the spatial dim
//!   folded: `n[P] = ceil(Tₚ[P] / (t[P]·π))` — ceiling division charges
//!   under-filled folds, which is how PE under-utilization surfaces;
//! * the **refetch factor** of tensor `T` is the product of the iteration
//!   counts of every loop from the outermost down to the innermost loop
//!   that is *relevant* to `T` and actually iterates (`n > 1`). Loops
//!   inside that point leave `T` stationary in the child; loops outside it
//!   evict and re-deliver it. This is the classic stationarity rule used
//!   by data-centric models (MAESTRO, Timeloop);
//! * tiles are **multicast** across the `π` children when `P` is
//!   irrelevant to the tensor (one copy crosses the link), and unicast
//!   (`π` distinct tiles) when it is relevant;
//! * partial-sum **reduction is performed in the NoC** (adder tree), so an
//!   output tile crosses a link once per eviction regardless of spatial
//!   reduction; evictions beyond the first visit of a tile additionally
//!   read the stale partial back down (`reads = writes − distinct tiles`).
//!
//! The refetch factor for the link feeding level `ℓ` is evaluated over
//! the **concatenated** loop nest of levels `0..=ℓ` (outer levels first),
//! so a tensor that is fully stationary inside level `ℓ` keeps its
//! residency across outer-level steps instead of being charged per
//! re-execution. Operationally, per tensor:
//!
//! ```text
//! ρ(T, ℓ) = Π_{i<ℓ} steps_i · refetch_ℓ(T)   if level ℓ has an active T-relevant loop
//!         = ρ(T, ℓ-1)                         otherwise (resident tile survives)
//! words(T) = footprint(t_ℓ) · ρ(T, ℓ) · Π_{i≤ℓ} unicast_i(T)
//! ```
//!
//! The reference simulator ([`crate::simulate`]) checks this composition
//! exactly on divisible mappings.
//!
//! Input footprints include the sliding-window halo. Halo overlap between
//! *adjacent* spatial tiles is charged per tile (no inter-tile halo reuse),
//! a deliberate simplification shared with the paper's Fig. 3(f) formulas.

use crate::error::EvalError;
use crate::mapping::Mapping;
use digamma_workload::{tensor_footprint, Dim, DimVec, Layer, Tensor, NUM_DIMS};
use serde::{Deserialize, Serialize};

/// Words crossing one memory link (chip-wide, over the whole layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkTraffic {
    /// Weight words delivered downstream.
    pub weight: u128,
    /// Input-activation words delivered downstream.
    pub input: u128,
    /// Output words written upstream (partial or final tiles).
    pub output_write: u128,
    /// Stale partial-sum words read back downstream for accumulation.
    pub output_read: u128,
}

impl LinkTraffic {
    /// Total words crossing the link in either direction.
    pub fn total(&self) -> u128 {
        self.weight + self.input + self.output_write + self.output_read
    }
}

/// Analysis results for one mapping level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelAnalysis {
    /// Temporal iteration counts of this level's loop nest.
    pub iteration_counts: DimVec<u64>,
    /// Product of all iteration counts (steps per nest execution).
    pub total_steps: u64,
    /// The π-stacked tile this level works on per step.
    pub stacked_tile: DimVec<u64>,
    /// Chip-wide traffic on the link feeding this level's children.
    pub traffic: LinkTraffic,
}

/// Minimum buffer capacities implied by a mapping (DiGamma's buffer
/// allocation strategy sizes buffers to exactly these values).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferRequirement {
    /// Global (L2) buffer capacity in words.
    pub l2_words: u64,
    /// Per-unit capacity of each middle-level buffer, outermost first
    /// (empty for 2-level mappings).
    pub mid_words_per_unit: Vec<u64>,
    /// Per-PE local (L1) buffer capacity in words.
    pub l1_words_per_pe: u64,
}

impl BufferRequirement {
    /// Total on-chip words given the fan-outs of the mapping levels.
    pub fn total_words(&self, fanouts: &[u64]) -> u64 {
        let mut total = self.l2_words;
        let mut units = 1u64;
        for (i, &mid) in self.mid_words_per_unit.iter().enumerate() {
            units = units.saturating_mul(fanouts[i]);
            total = total.saturating_add(mid.saturating_mul(units));
        }
        let pes: u64 = fanouts.iter().product();
        total.saturating_add(self.l1_words_per_pe.saturating_mul(pes))
    }
}

/// Full reuse-analysis output for one `(layer, mapping)` pair.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Analysis {
    /// True MAC count of the layer (mapping independent).
    pub macs_total: u64,
    /// MACs performed per PE per leaf step.
    pub pe_tile_macs: u64,
    /// Leaf steps each PE executes (product of all levels' steps).
    pub total_leaf_steps: u128,
    /// Total PEs instantiated by the mapping.
    pub num_pes: u64,
    /// Per-level analysis, outermost first.
    pub levels: Vec<LevelAnalysis>,
    /// Minimum buffer capacities.
    pub buffers: BufferRequirement,
    /// Fraction of issued MAC slots doing useful work (0, 1].
    pub utilization: f64,
}

/// Refetch factor of a tensor for one level's loop nest.
///
/// Product of iteration counts from the outermost loop down to the
/// innermost loop that is relevant to the tensor and iterates more than
/// once; 1 when no such loop exists (the tensor is fully stationary).
fn refetch_factor(order: &[Dim; NUM_DIMS], counts: &DimVec<u64>, relevance: &DimVec<bool>) -> u128 {
    let mut innermost_active = None;
    for (pos, &d) in order.iter().enumerate() {
        if relevance[d] && counts[d] > 1 {
            innermost_active = Some(pos);
        }
    }
    match innermost_active {
        None => 1,
        Some(j) => order[..=j].iter().map(|&d| counts[d] as u128).product(),
    }
}

/// Runs the full reuse analysis.
///
/// # Errors
///
/// Returns [`EvalError`] if the mapping fails structural validation
/// against the layer.
pub fn analyze(layer: &Layer, mapping: &Mapping) -> Result<Analysis, EvalError> {
    let mut out = Analysis::default();
    analyze_into(layer, mapping, &mut out)?;
    Ok(out)
}

/// Runs the full reuse analysis into a caller-owned [`Analysis`],
/// reusing its vectors' capacity — the allocation-free form of
/// [`analyze`] used by the evaluator's scratch path. `out` is fully
/// overwritten; results are bit-identical to [`analyze`].
///
/// # Errors
///
/// Returns [`EvalError`] if the mapping fails structural validation
/// against the layer (leaving `out` with unspecified contents).
pub(crate) fn analyze_into(
    layer: &Layer,
    mapping: &Mapping,
    out: &mut Analysis,
) -> Result<(), EvalError> {
    mapping.validate(layer)?;
    let kind = layer.kind();
    let stride = layer.stride();
    let num_levels = mapping.levels().len();

    let levels = &mut out.levels;
    levels.clear();
    levels.reserve(num_levels);
    let mut parent = *layer.dims();
    // Π_{i≤ℓ} unicast_i(T): distinct spatial copies of T's tiles chip-wide.
    let mut cum_unicast = [1u128; 3];
    // Π_{i<ℓ} steps_i: times this level's nest is re-executed.
    let mut exec_multiplier: u128 = 1;
    // ρ(T, ℓ): combined-nest refetch factor per tensor (see module docs).
    let mut combined_refetch = [1u128; 3];
    // Chip-wide distinct output tiles at the current granularity.
    let mut cum_distinct_out: u128 = 1;

    let mut mid_words_per_unit = std::mem::take(&mut out.buffers.mid_words_per_unit);
    mid_words_per_unit.clear();
    let mut l2_words = 0u64;

    for (idx, level) in mapping.levels().iter().enumerate() {
        let counts = level.iteration_counts(&parent);
        let total_steps = counts.product();
        let stacked = level.stacked_tile(&parent);

        let mut traffic = LinkTraffic::default();
        for (ti, &tensor) in Tensor::ALL.iter().enumerate() {
            let relevance = kind.relevance(tensor);
            let unicast = if relevance[level.spatial_dim] { level.fanout as u128 } else { 1 };
            cum_unicast[ti] *= unicast;
            let footprint = tensor_footprint(kind, tensor, &level.tile, stride) as u128;
            let has_active_relevant_loop = Dim::ALL.iter().any(|&d| relevance[d] && counts[d] > 1);
            if has_active_relevant_loop {
                combined_refetch[ti] =
                    exec_multiplier * refetch_factor(&level.order, &counts, &relevance);
            }
            // (Otherwise the resident tile survives outer-level steps and
            // ρ carries over from the previous level unchanged.)
            let words = footprint * combined_refetch[ti] * cum_unicast[ti];
            match tensor {
                Tensor::Weight => traffic.weight = words,
                Tensor::Input => traffic.input = words,
                Tensor::Output => {
                    let distinct_here: u128 = Dim::ALL
                        .iter()
                        .filter(|&&d| relevance[d])
                        .map(|&d| counts[d] as u128)
                        .product();
                    cum_distinct_out *= distinct_here * unicast;
                    let write_tiles = combined_refetch[ti] * cum_unicast[ti];
                    let read_tiles = write_tiles.saturating_sub(cum_distinct_out);
                    traffic.output_write = footprint * write_tiles;
                    traffic.output_read = footprint * read_tiles;
                }
            }
        }

        // Buffer capacity: the level's per-step working set. The global
        // buffer backs level 0; middle levels get per-unit buffers; the
        // leaf level's tile lives in the per-PE L1 (handled below).
        let stacked_words: u64 =
            Tensor::ALL.iter().map(|&t| tensor_footprint(kind, t, &stacked, stride)).sum();
        if idx == 0 {
            l2_words = stacked_words;
        } else if idx < num_levels - 1 {
            mid_words_per_unit.push(stacked_words);
        } else if num_levels == 1 {
            // Degenerate single-level mapping: L2 is the stacked tile and
            // was set above; nothing to do here.
        }

        levels.push(LevelAnalysis {
            iteration_counts: counts,
            total_steps,
            stacked_tile: stacked,
            traffic,
        });

        exec_multiplier *= total_steps as u128;
        parent = level.tile;
    }

    let leaf_tile = mapping.levels().last().expect("validated non-empty").tile;
    let l1_words_per_pe: u64 =
        Tensor::ALL.iter().map(|&t| tensor_footprint(kind, t, &leaf_tile, stride)).sum();

    let pe_tile_macs = leaf_tile.product();
    let total_leaf_steps = exec_multiplier;
    let num_pes = mapping.num_pes();
    let macs_total = layer.macs();
    let issued = total_leaf_steps * pe_tile_macs as u128 * num_pes as u128;
    let utilization = macs_total as f64 / issued as f64;

    out.macs_total = macs_total;
    out.pe_tile_macs = pe_tile_macs;
    out.total_leaf_steps = total_leaf_steps;
    out.num_pes = num_pes;
    out.buffers = BufferRequirement { l2_words, mid_words_per_unit, l1_words_per_pe };
    out.utilization = utilization;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{LevelSpec, Mapping};
    use digamma_workload::Layer;

    fn layer() -> Layer {
        Layer::conv("l", 64, 32, 16, 16, 3, 3, 1)
    }

    fn two_level(l2_tile: DimVec<u64>, l1_tile: DimVec<u64>, pi2: u64, pi1: u64) -> Mapping {
        Mapping::new(vec![
            LevelSpec { fanout: pi2, spatial_dim: Dim::K, order: Dim::ALL, tile: l2_tile },
            LevelSpec { fanout: pi1, spatial_dim: Dim::Y, order: Dim::ALL, tile: l1_tile },
        ])
    }

    #[test]
    fn utilization_is_one_for_exact_mapping() {
        let l = layer();
        // 8 clusters × 8 PEs; K split 64/8, Y split 16/8 per PE; exact fit.
        let l2 = DimVec([8, 32, 16, 16, 3, 3]);
        let l1 = DimVec([8, 32, 2, 16, 3, 3]);
        let a = analyze(&l, &two_level(l2, l1, 8, 8)).unwrap();
        assert!((a.utilization - 1.0).abs() < 1e-12, "utilization {}", a.utilization);
        assert_eq!(a.macs_total, l.macs());
    }

    #[test]
    fn ceil_folding_reduces_utilization() {
        let l = layer();
        // K=64 split into tiles of 5 across 8 clusters: 64/(5*8) → 2 folds,
        // issuing 80 K-slots for 64 useful → utilization drops.
        let l2 = DimVec([5, 32, 16, 16, 3, 3]);
        let l1 = DimVec([5, 32, 2, 16, 3, 3]);
        let a = analyze(&l, &two_level(l2, l1, 8, 8)).unwrap();
        assert!(a.utilization < 1.0);
    }

    #[test]
    fn dram_traffic_covers_each_tensor_at_least_once() {
        let l = layer();
        let m = Mapping::row_major_example(&l, 8, 4);
        let a = analyze(&l, &m).unwrap();
        let dram = &a.levels[0].traffic;
        assert!(dram.weight >= l.tensor_size(Tensor::Weight) as u128);
        assert!(dram.input >= l.tensor_size(Tensor::Input) as u128);
        assert!(dram.output_write >= l.tensor_size(Tensor::Output) as u128);
    }

    #[test]
    fn fully_buffered_mapping_has_minimal_dram_traffic() {
        let l = Layer::conv("s", 8, 8, 8, 8, 3, 3, 1);
        // Whole layer fits one L2 tile → every tensor crosses DRAM once.
        let l2 = *l.dims();
        let mut l1 = *l.dims();
        l1[Dim::K] = 1;
        let m = Mapping::new(vec![
            LevelSpec { fanout: 1, spatial_dim: Dim::K, order: Dim::ALL, tile: l2 },
            LevelSpec { fanout: 8, spatial_dim: Dim::K, order: Dim::ALL, tile: l1 },
        ]);
        let a = analyze(&l, &m).unwrap();
        let dram = &a.levels[0].traffic;
        assert_eq!(dram.weight, l.tensor_size(Tensor::Weight) as u128);
        assert_eq!(dram.input, l.tensor_size(Tensor::Input) as u128);
        assert_eq!(dram.output_write, l.tensor_size(Tensor::Output) as u128);
        assert_eq!(dram.output_read, 0);
    }

    #[test]
    fn weight_stationary_order_minimizes_weight_refetch() {
        let l = layer();
        let mut tile = *l.dims();
        tile[Dim::Y] = 1; // iterate Y temporally at L2
        tile[Dim::K] = 8;
        // Weight-relevant loop (K) innermost: weights refetched per K-step
        // only; Y outer loops don't evict... compare against Y innermost.
        let ws_order = [Dim::Y, Dim::X, Dim::C, Dim::R, Dim::S, Dim::K];
        let os_order = [Dim::K, Dim::C, Dim::R, Dim::S, Dim::Y, Dim::X];
        let mk = |order| {
            Mapping::new(vec![
                LevelSpec { fanout: 1, spatial_dim: Dim::X, order, tile },
                LevelSpec {
                    fanout: 4,
                    spatial_dim: Dim::Y,
                    order: Dim::ALL,
                    tile: DimVec([1, 1, 1, 1, 1, 1]),
                },
            ])
        };
        let ws = analyze(&l, &mk(ws_order)).unwrap();
        let os = analyze(&l, &mk(os_order)).unwrap();
        // With K innermost, every Y step re-delivers weights (refetch = Y·K = 128);
        // with K outermost, weights stream once per K step (refetch = K = 8).
        assert_eq!(ws.levels[0].traffic.weight, 16 * os.levels[0].traffic.weight);
        // Outputs are written once per distinct tile in both orders (the
        // reduction dims never iterate at this level), so they tie.
        assert_eq!(ws.levels[0].traffic.output_write, os.levels[0].traffic.output_write);
    }

    #[test]
    fn multicast_applies_when_spatial_dim_irrelevant() {
        let l = layer();
        let mut tile = *l.dims();
        tile[Dim::K] = 8;
        // K split across 8 clusters: inputs are K-irrelevant → multicast.
        let m_k = Mapping::new(vec![
            LevelSpec { fanout: 8, spatial_dim: Dim::K, order: Dim::ALL, tile },
            LevelSpec { fanout: 1, spatial_dim: Dim::Y, order: Dim::ALL, tile: DimVec::splat(1) },
        ]);
        let mut tile_y = *l.dims();
        tile_y[Dim::Y] = 2;
        let m_y = Mapping::new(vec![
            LevelSpec { fanout: 8, spatial_dim: Dim::Y, order: Dim::ALL, tile: tile_y },
            LevelSpec { fanout: 1, spatial_dim: Dim::Y, order: Dim::ALL, tile: DimVec::splat(1) },
        ]);
        let a_k = analyze(&l, &m_k).unwrap();
        let a_y = analyze(&l, &m_y).unwrap();
        // K-parallel: one input copy serves all clusters.
        assert_eq!(a_k.levels[0].traffic.input, l.tensor_size(Tensor::Input) as u128);
        // Y-parallel: weights are Y-irrelevant and multicast instead.
        assert_eq!(a_y.levels[0].traffic.weight, l.tensor_size(Tensor::Weight) as u128);
    }

    #[test]
    fn output_readback_appears_with_outer_reduction_loops() {
        let l = layer();
        let mut tile = *l.dims();
        tile[Dim::C] = 4; // C iterates 8 times at the outer level
        tile[Dim::K] = 8; // K iterates 8 times, *inside* the C loop
                          // C (reduction) outer with an O-relevant loop (K) inside it ⇒ each
                          // output tile is evicted per K step and revisited per C step.
        let order = [Dim::C, Dim::K, Dim::Y, Dim::X, Dim::R, Dim::S];
        let m = Mapping::new(vec![
            LevelSpec { fanout: 1, spatial_dim: Dim::X, order, tile },
            LevelSpec {
                fanout: 4,
                spatial_dim: Dim::Y,
                order: Dim::ALL,
                tile: DimVec([1, 1, 1, 1, 1, 1]),
            },
        ]);
        let a = analyze(&l, &m).unwrap();
        assert!(a.levels[0].traffic.output_read > 0);
        // Writes exceed reads by exactly one pass over the output tensor.
        let out_words = l.tensor_size(Tensor::Output) as u128;
        assert_eq!(a.levels[0].traffic.output_write - a.levels[0].traffic.output_read, out_words);
    }

    #[test]
    fn accumulation_in_child_buffer_avoids_readback() {
        let l = layer();
        let mut tile = *l.dims();
        tile[Dim::C] = 4; // C iterates 8 times; K, Y, X do not iterate.
                          // With no O-relevant loop active, the output tile stays resident in
                          // L2 across all C steps: zero DRAM readback, one final write pass.
        let order = [Dim::C, Dim::K, Dim::Y, Dim::X, Dim::R, Dim::S];
        let m = Mapping::new(vec![
            LevelSpec { fanout: 1, spatial_dim: Dim::X, order, tile },
            LevelSpec {
                fanout: 4,
                spatial_dim: Dim::Y,
                order: Dim::ALL,
                tile: DimVec([1, 1, 1, 1, 1, 1]),
            },
        ]);
        let a = analyze(&l, &m).unwrap();
        assert_eq!(a.levels[0].traffic.output_read, 0);
        assert_eq!(a.levels[0].traffic.output_write, l.tensor_size(Tensor::Output) as u128);
    }

    #[test]
    fn buffer_requirements_match_footprints() {
        let l = layer();
        let m = Mapping::row_major_example(&l, 8, 4);
        let a = analyze(&l, &m).unwrap();
        let leaf = m.levels()[1].tile;
        let expected_l1: u64 = Tensor::ALL
            .iter()
            .map(|&t| digamma_workload::tensor_footprint(l.kind(), t, &leaf, l.stride()))
            .sum();
        assert_eq!(a.buffers.l1_words_per_pe, expected_l1);
        assert!(a.buffers.l2_words >= expected_l1);
        assert!(a.buffers.mid_words_per_unit.is_empty());
    }

    #[test]
    fn three_level_mapping_adds_middle_buffer() {
        let l = layer();
        let t2 = DimVec([16, 32, 16, 16, 3, 3]);
        let t_mid = DimVec([16, 32, 4, 16, 3, 3]);
        let t1 = DimVec([16, 32, 4, 2, 3, 3]);
        let m = Mapping::new(vec![
            LevelSpec { fanout: 4, spatial_dim: Dim::K, order: Dim::ALL, tile: t2 },
            LevelSpec { fanout: 4, spatial_dim: Dim::Y, order: Dim::ALL, tile: t_mid },
            LevelSpec { fanout: 8, spatial_dim: Dim::X, order: Dim::ALL, tile: t1 },
        ]);
        let a = analyze(&l, &m).unwrap();
        assert_eq!(a.buffers.mid_words_per_unit.len(), 1);
        assert_eq!(a.num_pes, 128);
        assert_eq!(a.levels.len(), 3);
    }

    #[test]
    fn refetch_factor_basics() {
        let order = [Dim::K, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S];
        let counts = DimVec([4u64, 3, 2, 1, 1, 1]);
        let mut rel = DimVec::splat(false);
        // Tensor relevant to K only: innermost active relevant loop is K
        // (position 0) → refetch = 4.
        rel[Dim::K] = true;
        assert_eq!(refetch_factor(&order, &counts, &rel), 4);
        // Relevant to Y: loops K, C, Y all multiply → 24.
        let mut rel_y = DimVec::splat(false);
        rel_y[Dim::Y] = true;
        assert_eq!(refetch_factor(&order, &counts, &rel_y), 24);
        // Relevant to X only (count 1): fully stationary.
        let mut rel_x = DimVec::splat(false);
        rel_x[Dim::X] = true;
        assert_eq!(refetch_factor(&order, &counts, &rel_x), 1);
    }

    #[test]
    fn gemm_layers_analyze_cleanly() {
        let l = Layer::gemm("g", 256, 128, 512);
        let m = Mapping::row_major_example(&l, 16, 8);
        let a = analyze(&l, &m).unwrap();
        assert_eq!(a.macs_total, 256 * 128 * 512);
        assert!(a.utilization > 0.0 && a.utilization <= 1.0);
    }

    #[test]
    fn depthwise_layers_analyze_cleanly() {
        let l = Layer::depthwise("dw", 96, 28, 28, 3, 3, 1);
        let m = Mapping::row_major_example(&l, 8, 8);
        let a = analyze(&l, &m).unwrap();
        assert_eq!(a.macs_total, 96 * 28 * 28 * 3 * 3);
        // Depthwise inputs are K-indexed: K-parallel clusters need unicast.
        assert!(a.levels[0].traffic.input >= l.tensor_size(Tensor::Input) as u128);
    }
}
