//! Stable cache keys for memoizing `(layer, mapping) → CostReport`.
//!
//! The search re-scores the same per-layer evaluations constantly —
//! elites survive generations unchanged, template seeds recur across
//! searches, and a co-design service sees the same (model, platform)
//! pairs from many requests. A memo cache needs a key that is *stable*:
//! independent of process, pointer identity, and `std` hasher seeds, so
//! snapshots and cross-process caches agree. This module provides a
//! hand-rolled FNV-1a 64-bit hasher over an explicit, versioned byte
//! encoding of everything the cost model reads:
//!
//! * the evaluator's platform bandwidths and area/energy constants
//!   (budget and PE caps are *excluded* — they gate feasibility upstream
//!   but never change a per-layer report),
//! * the layer's operator kind, extents, and stride (its *name* is
//!   excluded: same-shaped layers share mappings and reports), and
//! * every level of the mapping (fan-out, spatial dim, order, tiles).

use crate::area::AreaModel;
use crate::energy::EnergyModel;
use crate::mapping::Mapping;
use digamma_workload::{Layer, LayerKind};

/// Bumped whenever the key encoding or the cost model's observable
/// behaviour changes, so stale external caches can never alias.
pub const KEY_VERSION: u64 = 1;

/// A stable (process- and seed-independent) FNV-1a 64-bit hasher.
///
/// Deliberately not `std::hash::Hasher`: the `std` trait invites hashing
/// through `#[derive(Hash)]`, whose layout is not a stability contract.
/// Every write here spells out the byte encoding explicitly.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// Creates a hasher seeded with the FNV offset basis and the key
    /// encoding version.
    pub fn new() -> StableHasher {
        let mut h = StableHasher { state: FNV_OFFSET };
        h.write_u64(KEY_VERSION);
        h
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` as one word (one mix step, not eight byte steps —
    /// this hasher sits on the fitness cache's hot path, where key
    /// computation competes with the cost model itself).
    pub fn write_u64(&mut self, v: u64) {
        self.state ^= v;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Feeds an `f64` by its exact IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The accumulated 64-bit key.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

/// Computes the memo key for one per-layer evaluation.
///
/// Two calls return the same key iff the cost model is guaranteed to
/// return an identical [`crate::CostReport`] (same model constants, same
/// layer shape, same mapping). Used by `CoOptProblem`'s evaluation hook
/// and any external fitness cache.
pub fn layer_eval_key(
    bw_dram: f64,
    bw_noc: f64,
    area: &AreaModel,
    energy: &EnergyModel,
    layer: &Layer,
    mapping: &Mapping,
) -> u64 {
    let mut h = StableHasher::new();
    h.write_f64(bw_dram);
    h.write_f64(bw_noc);
    h.write_f64(area.pe_um2);
    h.write_f64(area.l1_um2_per_word);
    h.write_f64(area.mid_um2_per_word);
    h.write_f64(area.l2_um2_per_word);
    h.write_f64(energy.mac_pj);
    h.write_f64(energy.l1_pj);
    h.write_f64(energy.mid_pj);
    h.write_f64(energy.l2_pj);
    h.write_f64(energy.noc_pj);
    h.write_f64(energy.dram_pj);

    h.write_u64(match layer.kind() {
        LayerKind::Conv => 0,
        LayerKind::DepthwiseConv => 1,
        LayerKind::Gemm => 2,
    });
    for (_, extent) in layer.dims().iter() {
        h.write_u64(extent);
    }
    h.write_u64(layer.stride());

    h.write_u64(mapping.levels().len() as u64);
    for level in mapping.levels() {
        h.write_u64(level.fanout);
        h.write_u64(level.spatial_dim.index() as u64);
        for d in level.order {
            h.write_u64(d.index() as u64);
        }
        for (_, t) in level.tile.iter() {
            h.write_u64(t);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::AREA_MODEL_15NM;
    use crate::energy::ENERGY_MODEL_DEFAULT;
    use crate::Evaluator;
    use crate::Platform;

    fn key(layer: &Layer, mapping: &Mapping) -> u64 {
        Evaluator::new(Platform::edge()).cache_key(layer, mapping)
    }

    #[test]
    fn identical_inputs_share_a_key() {
        let layer = Layer::conv("a", 64, 32, 16, 16, 3, 3, 1);
        let m = Mapping::row_major_example(&layer, 8, 4);
        assert_eq!(key(&layer, &m), key(&layer, &m));
    }

    #[test]
    fn layer_name_does_not_split_the_cache() {
        let a = Layer::conv("first", 64, 32, 16, 16, 3, 3, 1);
        let b = Layer::conv("second", 64, 32, 16, 16, 3, 3, 1);
        let m = Mapping::row_major_example(&a, 8, 4);
        assert_eq!(key(&a, &m), key(&b, &m));
    }

    #[test]
    fn shape_stride_and_kind_change_the_key() {
        let base = Layer::conv("l", 64, 32, 16, 16, 3, 3, 1);
        let m = Mapping::row_major_example(&base, 8, 4);
        let wider = Layer::conv("l", 128, 32, 16, 16, 3, 3, 1);
        let strided = Layer::conv("l", 64, 32, 16, 16, 3, 3, 2);
        let dw = Layer::depthwise("l", 64, 16, 16, 3, 3, 1);
        assert_ne!(key(&base, &m), key(&wider, &m));
        assert_ne!(key(&base, &m), key(&strided, &m));
        assert_ne!(key(&base, &m), key(&dw, &m));
    }

    #[test]
    fn mapping_genes_change_the_key() {
        let layer = Layer::conv("l", 64, 32, 16, 16, 3, 3, 1);
        let a = Mapping::row_major_example(&layer, 8, 4);
        let b = Mapping::row_major_example(&layer, 4, 8);
        let mut c = a.clone();
        c.levels_mut()[0].order.swap(0, 5);
        let mut d = a.clone();
        d.levels_mut()[1].tile[digamma_workload::Dim::K] += 1;
        assert_ne!(key(&layer, &a), key(&layer, &b));
        assert_ne!(key(&layer, &a), key(&layer, &c));
        assert_ne!(key(&layer, &a), key(&layer, &d));
    }

    #[test]
    fn platform_and_model_constants_change_the_key() {
        let layer = Layer::conv("l", 64, 32, 16, 16, 3, 3, 1);
        let m = Mapping::row_major_example(&layer, 8, 4);
        let edge = Platform::edge();
        let a = layer_eval_key(
            edge.bw_dram,
            edge.bw_noc,
            &AREA_MODEL_15NM,
            &ENERGY_MODEL_DEFAULT,
            &layer,
            &m,
        );
        let cloud = Platform::cloud();
        let b = layer_eval_key(
            cloud.bw_dram,
            cloud.bw_noc,
            &AREA_MODEL_15NM,
            &ENERGY_MODEL_DEFAULT,
            &layer,
            &m,
        );
        let mut fat_l1 = AREA_MODEL_15NM;
        fat_l1.l1_um2_per_word *= 2.0;
        let c =
            layer_eval_key(edge.bw_dram, edge.bw_noc, &fat_l1, &ENERGY_MODEL_DEFAULT, &layer, &m);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn budget_differences_do_not_split_the_cache() {
        // Same bandwidths, different budget/PE cap: per-layer reports are
        // identical, so the keys must collide on purpose.
        let layer = Layer::gemm("g", 128, 64, 256);
        let m = Mapping::row_major_example(&layer, 4, 4);
        let mut roomy = Platform::edge();
        roomy.area_budget_um2 *= 100.0;
        roomy.max_pes *= 4;
        let a = Evaluator::new(Platform::edge()).cache_key(&layer, &m);
        let b = Evaluator::new(roomy).cache_key(&layer, &m);
        assert_eq!(a, b);
    }

    #[test]
    fn keys_are_stable_across_calls_and_builds() {
        let layer = Layer::gemm("g", 8, 4, 2);
        let m = Mapping::row_major_example(&layer, 2, 2);
        let k = key(&layer, &m);
        assert_eq!(k, key(&layer, &m));
        assert_ne!(k, 0);
    }

    #[test]
    fn golden_key_values_never_drift() {
        // Pinned golden values for KEY_VERSION 1. External caches (disk
        // spills, cross-process memos) persist these keys, so ANY change
        // here is a compatibility break: if this test fails, you changed
        // the key encoding or the hashed constants — bump KEY_VERSION so
        // stale caches can never alias, then re-pin these values.
        assert_eq!(KEY_VERSION, 1, "key version changed: re-pin the golden values below");
        let gemm = Layer::gemm("g", 8, 4, 2);
        let mg = Mapping::row_major_example(&gemm, 2, 2);
        let conv = Layer::conv("c", 64, 32, 16, 16, 3, 3, 1);
        let mc = Mapping::row_major_example(&conv, 8, 4);
        let edge = Evaluator::new(Platform::edge());
        let cloud = Evaluator::new(Platform::cloud());
        assert_eq!(edge.cache_key(&gemm, &mg), 0xb91f_b65d_d4b3_9818);
        assert_eq!(edge.cache_key(&conv, &mc), 0xb7da_1d5f_bda1_02e1);
        assert_eq!(cloud.cache_key(&conv, &mc), 0xfc5a_1d5f_bda1_02e1);
    }
}
