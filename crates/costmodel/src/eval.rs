//! The evaluator front door: `(layer, mapping) → CostReport`.

use crate::accelerator::{HwConfig, Platform};
use crate::analysis::{analyze, analyze_into};
use crate::area::{AreaModel, AREA_MODEL_15NM};
use crate::energy::{EnergyModel, ENERGY_MODEL_DEFAULT};
use crate::error::EvalError;
use crate::latency::latency;
use crate::mapping::Mapping;
use crate::report::CostReport;
use crate::scratch::EvalScratch;
use digamma_workload::Layer;
use std::cell::RefCell;

thread_local! {
    /// The lazily-created per-thread scratch backing [`Evaluator::evaluate`]:
    /// the public signature stays scratch-free while every call on a given
    /// thread reuses one arena. (An `Evaluator` is shared immutably across
    /// worker threads, so it cannot own the scratch itself without a lock
    /// on the hot path.)
    static THREAD_SCRATCH: RefCell<EvalScratch> = RefCell::new(EvalScratch::new());
}

/// Evaluates `(layer, mapping)` pairs on a platform.
///
/// This plays the role MAESTRO plays in the paper's evaluation block
/// (Fig. 3(a)): it runs the reuse analysis, the latency/energy models, and
/// derives the hardware (buffer allocation strategy) and its area.
///
/// # Example
///
/// ```
/// use digamma_costmodel::{Evaluator, Mapping, Platform};
/// use digamma_workload::Layer;
///
/// let layer = Layer::gemm("fc", 256, 64, 512);
/// let mapping = Mapping::row_major_example(&layer, 4, 8);
/// let report = Evaluator::new(Platform::edge()).evaluate(&layer, &mapping)?;
/// assert!(report.utilization > 0.0);
/// # Ok::<(), digamma_costmodel::EvalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator {
    platform: Platform,
    area_model: AreaModel,
    energy_model: EnergyModel,
}

impl Evaluator {
    /// Creates an evaluator with the default area and energy models.
    pub fn new(platform: Platform) -> Evaluator {
        Evaluator { platform, area_model: AREA_MODEL_15NM, energy_model: ENERGY_MODEL_DEFAULT }
    }

    /// Overrides the area model.
    pub fn with_area_model(mut self, area_model: AreaModel) -> Evaluator {
        self.area_model = area_model;
        self
    }

    /// Overrides the energy model.
    pub fn with_energy_model(mut self, energy_model: EnergyModel) -> Evaluator {
        self.energy_model = energy_model;
        self
    }

    /// The platform this evaluator scores against.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The active area model.
    pub fn area_model(&self) -> &AreaModel {
        &self.area_model
    }

    /// The active energy model.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }

    /// Feeds every model constant the cost model reads — platform
    /// bandwidths plus area/energy coefficients — into `hasher`, in the
    /// same order [`crate::cachekey::layer_eval_key`] uses. Higher-level
    /// caches (the genome-level memo) build their stable keys on this so
    /// the evaluator's identity hashes one way everywhere.
    pub fn write_model_constants(&self, hasher: &mut crate::cachekey::StableHasher) {
        hasher.write_f64(self.platform.bw_dram);
        hasher.write_f64(self.platform.bw_noc);
        hasher.write_f64(self.area_model.pe_um2);
        hasher.write_f64(self.area_model.l1_um2_per_word);
        hasher.write_f64(self.area_model.mid_um2_per_word);
        hasher.write_f64(self.area_model.l2_um2_per_word);
        hasher.write_f64(self.energy_model.mac_pj);
        hasher.write_f64(self.energy_model.l1_pj);
        hasher.write_f64(self.energy_model.mid_pj);
        hasher.write_f64(self.energy_model.l2_pj);
        hasher.write_f64(self.energy_model.noc_pj);
        hasher.write_f64(self.energy_model.dram_pj);
    }

    /// Stable memo key for [`Evaluator::evaluate`] on this evaluator:
    /// equal keys guarantee identical [`CostReport`]s (see
    /// [`crate::cachekey`]).
    pub fn cache_key(&self, layer: &Layer, mapping: &Mapping) -> u64 {
        crate::cachekey::layer_eval_key(
            self.platform.bw_dram,
            self.platform.bw_noc,
            &self.area_model,
            &self.energy_model,
            layer,
            mapping,
        )
    }

    /// Evaluates a mapping, deriving minimum-footprint hardware
    /// (DiGamma's buffer allocation strategy).
    ///
    /// Internally this borrows a lazily-created per-thread
    /// [`EvalScratch`], so repeated calls on one thread are
    /// allocation-free apart from the returned report; callers managing
    /// their own scratch (batch evaluators, benchmark loops) should use
    /// [`Evaluator::evaluate_with_scratch`] directly.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] when the mapping is structurally invalid for
    /// the layer. Over-budget designs still evaluate — the constraint
    /// checker upstream decides their fate.
    pub fn evaluate(&self, layer: &Layer, mapping: &Mapping) -> Result<CostReport, EvalError> {
        THREAD_SCRATCH.with(|scratch| match scratch.try_borrow_mut() {
            Ok(mut scratch) => self.evaluate_with_scratch(layer, mapping, &mut scratch),
            // Unreachable in practice (evaluation never re-enters), but
            // a fresh scratch keeps even that case correct.
            Err(_) => self.evaluate_with_scratch(layer, mapping, &mut EvalScratch::new()),
        })
    }

    /// [`Evaluator::evaluate`] against an explicit reusable scratch: one
    /// reuse analysis (the baseline ran two), no intermediate
    /// allocations beyond what the returned [`CostReport`] owns.
    ///
    /// Results are bit-identical to [`Evaluator::evaluate_baseline`];
    /// the equivalence tests below enforce it.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] when the mapping is structurally invalid.
    pub fn evaluate_with_scratch(
        &self,
        layer: &Layer,
        mapping: &Mapping,
        scratch: &mut EvalScratch,
    ) -> Result<CostReport, EvalError> {
        analyze_into(layer, mapping, scratch.analysis_mut())?;
        let analysis = scratch.analysis();
        let hw = HwConfig::for_mapping_buffers(mapping.pe_shape(), &analysis.buffers);
        let lat = latency(analysis, &self.platform);
        let energy = self.energy_model.energy_pj(analysis);
        let area = self.area_model.area_um2(&hw);
        let pe_area = self.area_model.pe_area_um2(&hw);
        Ok(CostReport::assemble_from_ref(analysis, lat, energy, area, pe_area, hw))
    }

    /// The pre-scratch **allocating reference path**, kept verbatim (it
    /// runs the reuse analysis twice: once to derive the hardware, once
    /// to score it). Exists so the equivalence tests and the perf
    /// harness (`digamma_bench::perfjson`) can measure and verify the
    /// optimized path against the original behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] when the mapping is structurally invalid.
    pub fn evaluate_baseline(
        &self,
        layer: &Layer,
        mapping: &Mapping,
    ) -> Result<CostReport, EvalError> {
        let fanouts: Vec<u64> = mapping.pe_shape();
        let analysis = analyze(layer, mapping)?;
        let hw = HwConfig::for_mapping_buffers(fanouts, &analysis.buffers);
        self.finish(layer, mapping, hw)
    }

    /// Evaluates a mapping against **given** hardware (the Fixed-HW
    /// use-case and the GAMMA baseline). The report carries the given
    /// hardware's area; callers should first check
    /// [`HwConfig::accommodates`] and penalize misfits.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] when the mapping is structurally invalid.
    pub fn evaluate_on_hw(
        &self,
        layer: &Layer,
        mapping: &Mapping,
        hw: &HwConfig,
    ) -> Result<CostReport, EvalError> {
        self.finish(layer, mapping, hw.clone())
    }

    fn finish(
        &self,
        layer: &Layer,
        mapping: &Mapping,
        hw: HwConfig,
    ) -> Result<CostReport, EvalError> {
        let analysis = analyze(layer, mapping)?;
        let lat = latency(&analysis, &self.platform);
        let energy = self.energy_model.energy_pj(&analysis);
        let area = self.area_model.area_um2(&hw);
        let pe_area = self.area_model.pe_area_um2(&hw);
        Ok(CostReport::assemble(analysis, lat, energy, area, pe_area, hw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_workload::zoo;

    #[test]
    fn evaluate_every_layer_of_every_model() {
        // The cost model must handle every shape in the zoo without error.
        let eval = Evaluator::new(Platform::edge());
        for model in zoo::all_models() {
            for layer in model.layers() {
                let m = Mapping::row_major_example(layer, 4, 8);
                let r = eval
                    .evaluate(layer, &m)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", model.name(), layer.name()));
                assert!(r.latency_cycles.is_finite() && r.latency_cycles > 0.0);
                assert!(r.energy_pj > 0.0);
                assert!(r.area_um2 > 0.0);
                assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn derived_hw_matches_buffer_requirement() {
        let layer = digamma_workload::Layer::conv("l", 64, 32, 16, 16, 3, 3, 1);
        let m = Mapping::row_major_example(&layer, 8, 4);
        let r = Evaluator::new(Platform::edge()).evaluate(&layer, &m).unwrap();
        assert_eq!(r.hw.l2_words, r.buffers.l2_words);
        assert_eq!(r.hw.l1_words_per_pe, r.buffers.l1_words_per_pe);
        assert_eq!(r.hw.num_pes(), 32);
    }

    #[test]
    fn evaluate_on_hw_uses_given_area() {
        let layer = digamma_workload::Layer::conv("l", 64, 32, 16, 16, 3, 3, 1);
        let m = Mapping::row_major_example(&layer, 8, 4);
        let eval = Evaluator::new(Platform::edge());
        let derived = eval.evaluate(&layer, &m).unwrap();
        // An oversized fixed HW costs more area for identical latency.
        let big_hw = HwConfig {
            fanouts: vec![8, 4],
            l2_words: derived.hw.l2_words * 10,
            mid_words_per_unit: vec![],
            l1_words_per_pe: derived.hw.l1_words_per_pe * 10,
        };
        let fixed = eval.evaluate_on_hw(&layer, &m, &big_hw).unwrap();
        assert!(fixed.area_um2 > derived.area_um2);
        assert!((fixed.latency_cycles - derived.latency_cycles).abs() < 1e-9);
    }

    /// Bit-exact equality of two cost reports, field by field.
    fn assert_bit_identical(a: &CostReport, b: &CostReport, context: &str) {
        assert_eq!(a.latency_cycles.to_bits(), b.latency_cycles.to_bits(), "{context}");
        assert_eq!(a.latency.compute_cycles.to_bits(), b.latency.compute_cycles.to_bits());
        assert_eq!(a.latency.dram_cycles.to_bits(), b.latency.dram_cycles.to_bits());
        assert_eq!(a.latency.noc_cycles.len(), b.latency.noc_cycles.len());
        for (x, y) in a.latency.noc_cycles.iter().zip(&b.latency.noc_cycles) {
            assert_eq!(x.to_bits(), y.to_bits(), "{context}");
        }
        assert_eq!(a.latency.fill_cycles.to_bits(), b.latency.fill_cycles.to_bits());
        assert_eq!(a.latency.total_cycles.to_bits(), b.latency.total_cycles.to_bits());
        assert_eq!(a.latency.bottleneck, b.latency.bottleneck, "{context}");
        assert_eq!(a.energy_pj.to_bits(), b.energy_pj.to_bits(), "{context}");
        assert_eq!(a.area_um2.to_bits(), b.area_um2.to_bits(), "{context}");
        assert_eq!(a.pe_area_um2.to_bits(), b.pe_area_um2.to_bits(), "{context}");
        assert_eq!(a.hw, b.hw, "{context}");
        assert_eq!(a.buffers, b.buffers, "{context}");
        assert_eq!(a.traffic, b.traffic, "{context}");
        assert_eq!(a.utilization.to_bits(), b.utilization.to_bits(), "{context}");
        assert_eq!(a.macs, b.macs, "{context}");
    }

    #[test]
    fn scratch_path_is_bit_identical_to_allocating_baseline() {
        // One reused scratch across every layer of every zoo model and
        // several PE shapes: the optimized path must reproduce the
        // original double-analysis path to the bit, with no state
        // leaking between consecutive evaluations.
        let mut scratch = crate::EvalScratch::new();
        for platform in [Platform::edge(), Platform::cloud()] {
            let eval = Evaluator::new(platform);
            for model in zoo::all_models() {
                for layer in model.layers().iter().take(8) {
                    for (rows, cols) in [(4, 8), (8, 4)] {
                        let m = Mapping::row_major_example(layer, rows, cols);
                        let baseline = eval.evaluate_baseline(layer, &m).unwrap();
                        let scratched =
                            eval.evaluate_with_scratch(layer, &m, &mut scratch).unwrap();
                        let threaded = eval.evaluate(layer, &m).unwrap();
                        let context = format!("{}/{}", model.name(), layer.name());
                        assert_bit_identical(&baseline, &scratched, &context);
                        assert_bit_identical(&baseline, &threaded, &context);
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_survives_errors_between_evaluations() {
        let eval = Evaluator::new(Platform::edge());
        let layer = digamma_workload::Layer::gemm("g", 64, 32, 64);
        let good = Mapping::row_major_example(&layer, 4, 4);
        let mut scratch = crate::EvalScratch::new();
        // An invalid mapping (zero fan-out) errors without poisoning the
        // scratch for the next evaluation.
        let bad = Mapping::new(vec![crate::LevelSpec {
            fanout: 0,
            spatial_dim: digamma_workload::Dim::K,
            order: digamma_workload::Dim::ALL,
            tile: digamma_workload::DimVec::splat(1),
        }]);
        assert!(eval.evaluate_with_scratch(&layer, &bad, &mut scratch).is_err());
        let after_error = eval.evaluate_with_scratch(&layer, &good, &mut scratch).unwrap();
        let baseline = eval.evaluate_baseline(&layer, &good).unwrap();
        assert_bit_identical(&baseline, &after_error, "post-error");
    }

    #[test]
    fn report_metrics_compose() {
        let layer = digamma_workload::Layer::gemm("g", 128, 64, 256);
        let m = Mapping::row_major_example(&layer, 4, 4);
        let r = Evaluator::new(Platform::cloud()).evaluate(&layer, &m).unwrap();
        assert!((r.edp() - r.energy_pj * r.latency_cycles).abs() < 1e-6);
        assert!(r.latency_area_product() > 0.0);
        let (pe, buf) = r.area_ratio_percent();
        assert!((pe + buf - 100.0).abs() < 1e-9);
        // Display must render without panicking and mention the bottleneck.
        let shown = format!("{r}");
        assert!(shown.contains("latency"));
    }
}
