//! The evaluator front door: `(layer, mapping) → CostReport`.

use crate::accelerator::{HwConfig, Platform};
use crate::analysis::analyze;
use crate::area::{AreaModel, AREA_MODEL_15NM};
use crate::energy::{EnergyModel, ENERGY_MODEL_DEFAULT};
use crate::error::EvalError;
use crate::latency::latency;
use crate::mapping::Mapping;
use crate::report::CostReport;
use digamma_workload::Layer;

/// Evaluates `(layer, mapping)` pairs on a platform.
///
/// This plays the role MAESTRO plays in the paper's evaluation block
/// (Fig. 3(a)): it runs the reuse analysis, the latency/energy models, and
/// derives the hardware (buffer allocation strategy) and its area.
///
/// # Example
///
/// ```
/// use digamma_costmodel::{Evaluator, Mapping, Platform};
/// use digamma_workload::Layer;
///
/// let layer = Layer::gemm("fc", 256, 64, 512);
/// let mapping = Mapping::row_major_example(&layer, 4, 8);
/// let report = Evaluator::new(Platform::edge()).evaluate(&layer, &mapping)?;
/// assert!(report.utilization > 0.0);
/// # Ok::<(), digamma_costmodel::EvalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator {
    platform: Platform,
    area_model: AreaModel,
    energy_model: EnergyModel,
}

impl Evaluator {
    /// Creates an evaluator with the default area and energy models.
    pub fn new(platform: Platform) -> Evaluator {
        Evaluator { platform, area_model: AREA_MODEL_15NM, energy_model: ENERGY_MODEL_DEFAULT }
    }

    /// Overrides the area model.
    pub fn with_area_model(mut self, area_model: AreaModel) -> Evaluator {
        self.area_model = area_model;
        self
    }

    /// Overrides the energy model.
    pub fn with_energy_model(mut self, energy_model: EnergyModel) -> Evaluator {
        self.energy_model = energy_model;
        self
    }

    /// The platform this evaluator scores against.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The active area model.
    pub fn area_model(&self) -> &AreaModel {
        &self.area_model
    }

    /// Stable memo key for [`Evaluator::evaluate`] on this evaluator:
    /// equal keys guarantee identical [`CostReport`]s (see
    /// [`crate::cachekey`]).
    pub fn cache_key(&self, layer: &Layer, mapping: &Mapping) -> u64 {
        crate::cachekey::layer_eval_key(
            self.platform.bw_dram,
            self.platform.bw_noc,
            &self.area_model,
            &self.energy_model,
            layer,
            mapping,
        )
    }

    /// Evaluates a mapping, deriving minimum-footprint hardware
    /// (DiGamma's buffer allocation strategy).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] when the mapping is structurally invalid for
    /// the layer. Over-budget designs still evaluate — the constraint
    /// checker upstream decides their fate.
    pub fn evaluate(&self, layer: &Layer, mapping: &Mapping) -> Result<CostReport, EvalError> {
        let fanouts: Vec<u64> = mapping.pe_shape();
        let analysis = analyze(layer, mapping)?;
        let hw = HwConfig::for_mapping_buffers(fanouts, &analysis.buffers);
        self.finish(layer, mapping, hw)
    }

    /// Evaluates a mapping against **given** hardware (the Fixed-HW
    /// use-case and the GAMMA baseline). The report carries the given
    /// hardware's area; callers should first check
    /// [`HwConfig::accommodates`] and penalize misfits.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] when the mapping is structurally invalid.
    pub fn evaluate_on_hw(
        &self,
        layer: &Layer,
        mapping: &Mapping,
        hw: &HwConfig,
    ) -> Result<CostReport, EvalError> {
        self.finish(layer, mapping, hw.clone())
    }

    fn finish(
        &self,
        layer: &Layer,
        mapping: &Mapping,
        hw: HwConfig,
    ) -> Result<CostReport, EvalError> {
        let analysis = analyze(layer, mapping)?;
        let lat = latency(&analysis, &self.platform);
        let energy = self.energy_model.energy_pj(&analysis);
        let area = self.area_model.area_um2(&hw);
        let pe_area = self.area_model.pe_area_um2(&hw);
        Ok(CostReport::assemble(analysis, lat, energy, area, pe_area, hw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_workload::zoo;

    #[test]
    fn evaluate_every_layer_of_every_model() {
        // The cost model must handle every shape in the zoo without error.
        let eval = Evaluator::new(Platform::edge());
        for model in zoo::all_models() {
            for layer in model.layers() {
                let m = Mapping::row_major_example(layer, 4, 8);
                let r = eval
                    .evaluate(layer, &m)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", model.name(), layer.name()));
                assert!(r.latency_cycles.is_finite() && r.latency_cycles > 0.0);
                assert!(r.energy_pj > 0.0);
                assert!(r.area_um2 > 0.0);
                assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn derived_hw_matches_buffer_requirement() {
        let layer = digamma_workload::Layer::conv("l", 64, 32, 16, 16, 3, 3, 1);
        let m = Mapping::row_major_example(&layer, 8, 4);
        let r = Evaluator::new(Platform::edge()).evaluate(&layer, &m).unwrap();
        assert_eq!(r.hw.l2_words, r.buffers.l2_words);
        assert_eq!(r.hw.l1_words_per_pe, r.buffers.l1_words_per_pe);
        assert_eq!(r.hw.num_pes(), 32);
    }

    #[test]
    fn evaluate_on_hw_uses_given_area() {
        let layer = digamma_workload::Layer::conv("l", 64, 32, 16, 16, 3, 3, 1);
        let m = Mapping::row_major_example(&layer, 8, 4);
        let eval = Evaluator::new(Platform::edge());
        let derived = eval.evaluate(&layer, &m).unwrap();
        // An oversized fixed HW costs more area for identical latency.
        let big_hw = HwConfig {
            fanouts: vec![8, 4],
            l2_words: derived.hw.l2_words * 10,
            mid_words_per_unit: vec![],
            l1_words_per_pe: derived.hw.l1_words_per_pe * 10,
        };
        let fixed = eval.evaluate_on_hw(&layer, &m, &big_hw).unwrap();
        assert!(fixed.area_um2 > derived.area_um2);
        assert!((fixed.latency_cycles - derived.latency_cycles).abs() < 1e-9);
    }

    #[test]
    fn report_metrics_compose() {
        let layer = digamma_workload::Layer::gemm("g", 128, 64, 256);
        let m = Mapping::row_major_example(&layer, 4, 4);
        let r = Evaluator::new(Platform::cloud()).evaluate(&layer, &m).unwrap();
        assert!((r.edp() - r.energy_pj * r.latency_cycles).abs() < 1e-6);
        assert!(r.latency_area_product() > 0.0);
        let (pe, buf) = r.area_ratio_percent();
        assert!((pe + buf - 100.0).abs() < 1e-9);
        // Display must render without panicking and mention the bottleneck.
        let shown = format!("{r}");
        assert!(shown.contains("latency"));
    }
}
