//! A MAESTRO-class analytical cost model for spatial DNN accelerators.
//!
//! The DiGamma paper evaluates every candidate design point with
//! [MAESTRO](https://github.com/maestro-project/maestro) (Kwon et al.,
//! MICRO 2019). This crate is an independent re-implementation of the same
//! *class* of model — an analytical, data-centric reuse analysis — built
//! from scratch for this reproduction:
//!
//! * [`Mapping`] — the decoded mapping IR: one [`LevelSpec`] per cluster
//!   level (tile sizes, loop order, spatial dim, fan-out),
//! * [`analysis`] — per-level iteration counts, refetch factors, link
//!   traffic, and minimum buffer requirements,
//! * [`latency`] — a roofline latency model over compute and every
//!   memory link (DRAM→L2, L2→L1, optional middle level),
//! * [`energy`] — access counts × per-access energy (Eyeriss-style ratios),
//! * [`area`] — the synthesized-RTL area substitute (see `DESIGN.md`),
//! * [`Evaluator`] — the front door: `(layer, mapping, platform) →`
//!   [`CostReport`].
//!
//! # Example
//!
//! ```
//! use digamma_costmodel::{Evaluator, Mapping, Platform};
//! use digamma_workload::Layer;
//!
//! let layer = Layer::conv("l", 64, 32, 16, 16, 3, 3, 1);
//! let mapping = Mapping::row_major_example(&layer, 8, 8);
//! let report = Evaluator::new(Platform::edge()).evaluate(&layer, &mapping)?;
//! assert!(report.latency_cycles > 0.0);
//! assert!(report.buffers.l1_words_per_pe > 0);
//! # Ok::<(), digamma_costmodel::EvalError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod area;
pub mod cachekey;
pub mod energy;
pub mod latency;
pub mod simulate;

mod accelerator;
mod error;
mod eval;
mod mapping;
mod report;
mod scratch;

pub use accelerator::{HwConfig, Platform};
pub use analysis::{analyze, Analysis, BufferRequirement};
pub use area::{AreaModel, AREA_MODEL_15NM};
pub use cachekey::{layer_eval_key, StableHasher};
pub use energy::{EnergyModel, ENERGY_MODEL_DEFAULT};
pub use error::EvalError;
pub use eval::Evaluator;
pub use mapping::{LevelSpec, Mapping, MAX_LEVELS};
pub use report::CostReport;
pub use scratch::EvalScratch;
