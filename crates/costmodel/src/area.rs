//! Area model: the synthesized-RTL substitute.
//!
//! The paper synthesizes PE and buffer RTL with Synopsys DC (Nangate 15 nm)
//! and Cadence Innovus, and SRAMs with the SAED32 library, to obtain area
//! costs. A physical synthesis flow is unavailable here, so this module
//! substitutes fixed per-component constants of 15 nm-class magnitude
//! (see `DESIGN.md` §1, row 3). What the experiments actually require is
//! preserved: area grows linearly in PE count and buffer words, so a hard
//! area budget forces the compute ↔ memory trade-off DiGamma navigates.

use crate::accelerator::HwConfig;
use serde::{Deserialize, Serialize};

/// Per-component area constants in µm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// One PE: a 16-bit MAC, operand registers, and control.
    pub pe_um2: f64,
    /// One 16-bit word of per-PE L1 SRAM (small macros, low density).
    pub l1_um2_per_word: f64,
    /// One 16-bit word of middle-level SRAM.
    pub mid_um2_per_word: f64,
    /// One 16-bit word of global L2 SRAM (large banked macros, dense).
    pub l2_um2_per_word: f64,
}

/// Default 15 nm-class area constants.
///
/// With these values the paper's edge budget (0.2 mm²) admits a few
/// hundred PEs with tens of KB of buffer, and the cloud budget (7 mm²)
/// admits several thousand PEs with MBs of buffer — the regimes the
/// paper's Fig. 7 solutions occupy.
pub const AREA_MODEL_15NM: AreaModel =
    AreaModel { pe_um2: 350.0, l1_um2_per_word: 2.4, mid_um2_per_word: 1.6, l2_um2_per_word: 1.2 };

impl AreaModel {
    /// Total area of a hardware configuration in µm².
    pub fn area_um2(&self, hw: &HwConfig) -> f64 {
        let pes = hw.num_pes() as f64;
        let mut area = pes * self.pe_um2
            + pes * hw.l1_words_per_pe as f64 * self.l1_um2_per_word
            + hw.l2_words as f64 * self.l2_um2_per_word;
        let mut units = 1.0;
        for (i, &mid) in hw.mid_words_per_unit.iter().enumerate() {
            units *= hw.fanouts[i] as f64;
            area += units * mid as f64 * self.mid_um2_per_word;
        }
        area
    }

    /// Area of the compute (PE) portion only, in µm².
    pub fn pe_area_um2(&self, hw: &HwConfig) -> f64 {
        hw.num_pes() as f64 * self.pe_um2
    }

    /// Area of all buffers (L1 + mid + L2), in µm².
    pub fn buffer_area_um2(&self, hw: &HwConfig) -> f64 {
        self.area_um2(hw) - self.pe_area_um2(hw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw(pes: &[u64], l1: u64, l2: u64) -> HwConfig {
        HwConfig {
            fanouts: pes.to_vec(),
            l1_words_per_pe: l1,
            mid_words_per_unit: vec![],
            l2_words: l2,
        }
    }

    #[test]
    fn area_is_linear_in_components() {
        let m = AREA_MODEL_15NM;
        let small = hw(&[4, 4], 64, 4096);
        let double_pes = hw(&[8, 4], 64, 4096);
        let d = m.area_um2(&double_pes) - m.area_um2(&small);
        // Doubling PEs adds 16 PEs and 16 L1 buffers.
        assert!((d - 16.0 * (m.pe_um2 + 64.0 * m.l1_um2_per_word)).abs() < 1e-6);
    }

    #[test]
    fn edge_budget_admits_hundreds_of_pes() {
        // A 256-PE edge design with 32-word L1s and 32K-word L2 must fit 0.2 mm².
        let cfg = hw(&[16, 16], 32, 32 * 1024);
        assert!(AREA_MODEL_15NM.area_um2(&cfg) < 0.2e6);
    }

    #[test]
    fn cloud_budget_admits_thousands_of_pes() {
        let cfg = hw(&[64, 64], 128, 1024 * 1024);
        let area = AREA_MODEL_15NM.area_um2(&cfg);
        assert!(area < 7.0e6, "area {area}");
        assert!(area > 0.2e6, "a cloud-class design should overflow the edge budget");
    }

    #[test]
    fn pe_plus_buffer_equals_total() {
        let cfg = hw(&[8, 8], 64, 8192);
        let m = AREA_MODEL_15NM;
        let total = m.area_um2(&cfg);
        assert!((m.pe_area_um2(&cfg) + m.buffer_area_um2(&cfg) - total).abs() < 1e-9);
    }

    #[test]
    fn mid_buffers_scale_with_unit_count() {
        let mut cfg = hw(&[4, 4, 4], 16, 4096);
        cfg.mid_words_per_unit = vec![256];
        let with_mid = AREA_MODEL_15NM.area_um2(&cfg);
        cfg.mid_words_per_unit = vec![];
        let without = AREA_MODEL_15NM.area_um2(&cfg);
        // 4 outer units × 256 words × density.
        assert!((with_mid - without - 4.0 * 256.0 * AREA_MODEL_15NM.mid_um2_per_word).abs() < 1e-6);
    }
}
