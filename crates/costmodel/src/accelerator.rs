//! Hardware configurations and platform resource envelopes.

use crate::analysis::BufferRequirement;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete accelerator hardware configuration: PE array shape and
/// buffer capacities.
///
/// In DiGamma the buffer fields are *derived* from a mapping by the buffer
/// allocation strategy ([`HwConfig::for_mapping_buffers`]); in the
/// Fixed-HW use-case they are given and act as hard constraints
/// ([`HwConfig::accommodates`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HwConfig {
    /// PE array fan-out per level, outermost first
    /// (e.g. `[π_L2, π_L1]` = a `π_L2 × π_L1` 2-D array).
    pub fanouts: Vec<u64>,
    /// Global L2 buffer capacity in words.
    pub l2_words: u64,
    /// Per-unit middle-buffer capacities (empty for 2-level designs).
    pub mid_words_per_unit: Vec<u64>,
    /// Per-PE L1 buffer capacity in words.
    pub l1_words_per_pe: u64,
}

impl HwConfig {
    /// Total PE count: the product of all fan-outs.
    pub fn num_pes(&self) -> u64 {
        self.fanouts.iter().product()
    }

    /// Builds the exact-minimum hardware for a mapping's buffer
    /// requirements — DiGamma's buffer allocation strategy (Sec. IV-C).
    pub fn for_mapping_buffers(fanouts: Vec<u64>, buffers: &BufferRequirement) -> HwConfig {
        HwConfig {
            fanouts,
            l2_words: buffers.l2_words,
            mid_words_per_unit: buffers.mid_words_per_unit.clone(),
            l1_words_per_pe: buffers.l1_words_per_pe,
        }
    }

    /// Whether this hardware can host a mapping with the given buffer
    /// needs and fan-outs (used by the Fixed-HW constraint and by the
    /// GAMMA baseline, whose hardware is frozen).
    pub fn accommodates(&self, fanouts: &[u64], buffers: &BufferRequirement) -> bool {
        if fanouts.len() != self.fanouts.len() {
            return false;
        }
        if fanouts.iter().zip(&self.fanouts).any(|(m, h)| m > h) {
            return false;
        }
        if buffers.l2_words > self.l2_words || buffers.l1_words_per_pe > self.l1_words_per_pe {
            return false;
        }
        if buffers.mid_words_per_unit.len() != self.mid_words_per_unit.len() {
            return false;
        }
        buffers
            .mid_words_per_unit
            .iter()
            .zip(&self.mid_words_per_unit)
            .all(|(need, have)| need <= have)
    }

    /// Takes the entry-wise maximum of buffer capacities with another
    /// requirement (used when one HW must host per-layer mappings of a
    /// whole model).
    pub fn grow_to_fit(&mut self, buffers: &BufferRequirement) {
        self.l2_words = self.l2_words.max(buffers.l2_words);
        self.l1_words_per_pe = self.l1_words_per_pe.max(buffers.l1_words_per_pe);
        for (have, need) in self.mid_words_per_unit.iter_mut().zip(&buffers.mid_words_per_unit) {
            *have = (*have).max(*need);
        }
    }
}

impl fmt::Display for HwConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shape: Vec<String> = self.fanouts.iter().map(|x| x.to_string()).collect();
        write!(
            f,
            "PEs {} ({}), L1 {} w/PE, L2 {} w",
            shape.join("x"),
            self.num_pes(),
            self.l1_words_per_pe,
            self.l2_words
        )
    }
}

/// Platform resource envelope: the design budget and the fixed fabric
/// parameters the search does not touch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Human-readable name (`"edge"` / `"cloud"`).
    pub name: String,
    /// Chip area budget for PEs + buffers, in µm²
    /// (0.2 mm² edge, 7.0 mm² cloud in the paper).
    pub area_budget_um2: f64,
    /// DRAM→L2 bandwidth in words per cycle.
    pub bw_dram: f64,
    /// On-chip (L2→L1) aggregate NoC bandwidth in words per cycle.
    pub bw_noc: f64,
    /// Hard cap on total PEs the encoding may propose (the area budget is
    /// almost always the binding constraint; this bounds the gene range).
    pub max_pes: u64,
}

impl Platform {
    /// The paper's edge setting: 0.2 mm² for PEs and on-chip buffers.
    pub fn edge() -> Platform {
        Platform {
            name: "edge".to_owned(),
            area_budget_um2: 0.2e6,
            bw_dram: 8.0,
            bw_noc: 64.0,
            max_pes: 1024,
        }
    }

    /// The paper's cloud setting: 7.0 mm² for PEs and on-chip buffers.
    pub fn cloud() -> Platform {
        Platform {
            name: "cloud".to_owned(),
            area_budget_um2: 7.0e6,
            bw_dram: 64.0,
            bw_noc: 512.0,
            max_pes: 32768,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffers(l2: u64, l1: u64) -> BufferRequirement {
        BufferRequirement { l2_words: l2, mid_words_per_unit: vec![], l1_words_per_pe: l1 }
    }

    #[test]
    fn accommodates_checks_every_resource() {
        let hw = HwConfig {
            fanouts: vec![8, 8],
            l2_words: 1000,
            mid_words_per_unit: vec![],
            l1_words_per_pe: 50,
        };
        assert!(hw.accommodates(&[8, 8], &buffers(1000, 50)));
        assert!(hw.accommodates(&[4, 8], &buffers(500, 10)));
        assert!(!hw.accommodates(&[16, 8], &buffers(500, 10)), "too many clusters");
        assert!(!hw.accommodates(&[8, 8], &buffers(1001, 10)), "L2 overflow");
        assert!(!hw.accommodates(&[8, 8], &buffers(10, 51)), "L1 overflow");
        assert!(!hw.accommodates(&[8], &buffers(10, 10)), "level mismatch");
    }

    #[test]
    fn grow_to_fit_takes_maxima() {
        let mut hw = HwConfig {
            fanouts: vec![4, 4],
            l2_words: 100,
            mid_words_per_unit: vec![],
            l1_words_per_pe: 10,
        };
        hw.grow_to_fit(&buffers(50, 20));
        assert_eq!(hw.l2_words, 100);
        assert_eq!(hw.l1_words_per_pe, 20);
    }

    #[test]
    fn platforms_match_paper_budgets() {
        assert!((Platform::edge().area_budget_um2 - 0.2e6).abs() < 1.0);
        assert!((Platform::cloud().area_budget_um2 - 7.0e6).abs() < 1.0);
        assert!(Platform::cloud().bw_dram > Platform::edge().bw_dram);
    }

    #[test]
    fn num_pes_is_fanout_product() {
        let hw = HwConfig {
            fanouts: vec![3, 5, 7],
            l2_words: 0,
            mid_words_per_unit: vec![0],
            l1_words_per_pe: 0,
        };
        assert_eq!(hw.num_pes(), 105);
    }
}
