//! The evaluation result handed back to optimizers and harnesses.

use crate::accelerator::HwConfig;
use crate::analysis::{Analysis, BufferRequirement, LinkTraffic};
use crate::latency::LatencyBreakdown;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Everything the framework needs to score one `(layer, mapping)` pair on
/// a platform: performance, energy, area, and the derived hardware.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostReport {
    /// End-to-end latency in cycles.
    pub latency_cycles: f64,
    /// Latency decomposition (compute vs each link, fill, bottleneck).
    pub latency: LatencyBreakdown,
    /// Total energy in pJ.
    pub energy_pj: f64,
    /// Chip area of the derived hardware in µm².
    pub area_um2: f64,
    /// PE-only area in µm² (for the Fig. 7 PE:buffer ratio).
    pub pe_area_um2: f64,
    /// Derived (or supplied) hardware configuration.
    pub hw: HwConfig,
    /// Minimum buffer capacities the mapping needs.
    pub buffers: BufferRequirement,
    /// Traffic per link, outermost (DRAM) first.
    pub traffic: Vec<LinkTraffic>,
    /// PE utilization in (0, 1].
    pub utilization: f64,
    /// True MAC count of the layer.
    pub macs: u64,
}

impl CostReport {
    /// Energy-delay product (pJ·cycles).
    pub fn edp(&self) -> f64 {
        self.energy_pj * self.latency_cycles
    }

    /// Latency-area product (cycles·µm²), the secondary metric of Fig. 5.
    pub fn latency_area_product(&self) -> f64 {
        self.latency_cycles * self.area_um2
    }

    /// PE-area : buffer-area split as percentages, as printed in Fig. 7.
    pub fn area_ratio_percent(&self) -> (f64, f64) {
        let pe = 100.0 * self.pe_area_um2 / self.area_um2;
        (pe, 100.0 - pe)
    }

    /// Builds the report from the analysis pieces.
    pub(crate) fn assemble(
        analysis: Analysis,
        latency: LatencyBreakdown,
        energy_pj: f64,
        area_um2: f64,
        pe_area_um2: f64,
        hw: HwConfig,
    ) -> CostReport {
        CostReport {
            latency_cycles: latency.total_cycles,
            latency,
            energy_pj,
            area_um2,
            pe_area_um2,
            hw,
            buffers: analysis.buffers,
            traffic: analysis.levels.iter().map(|l| l.traffic).collect(),
            utilization: analysis.utilization,
            macs: analysis.macs_total,
        }
    }

    /// [`CostReport::assemble`] from a *borrowed* analysis — the scratch
    /// evaluation path keeps its reusable [`Analysis`] and clones only
    /// the small pieces the report must own.
    pub(crate) fn assemble_from_ref(
        analysis: &Analysis,
        latency: LatencyBreakdown,
        energy_pj: f64,
        area_um2: f64,
        pe_area_um2: f64,
        hw: HwConfig,
    ) -> CostReport {
        CostReport {
            latency_cycles: latency.total_cycles,
            latency,
            energy_pj,
            area_um2,
            pe_area_um2,
            hw,
            buffers: analysis.buffers.clone(),
            traffic: analysis.levels.iter().map(|l| l.traffic).collect(),
            utilization: analysis.utilization,
            macs: analysis.macs_total,
        }
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (pe, buf) = self.area_ratio_percent();
        writeln!(
            f,
            "latency  {:.3e} cycles ({:?}-bound)",
            self.latency_cycles, self.latency.bottleneck
        )?;
        writeln!(f, "energy   {:.3e} pJ  (EDP {:.3e})", self.energy_pj, self.edp())?;
        writeln!(f, "area     {:.3e} um2  (PE {pe:.0}% : buffer {buf:.0}%)", self.area_um2)?;
        writeln!(f, "hw       {}", self.hw)?;
        write!(f, "util     {:.1}%", self.utilization * 100.0)
    }
}
