//! Roofline latency model over compute and every memory link.
//!
//! Each PE retires one MAC per cycle. Every memory link (DRAM→L2, L2→mid,
//! →L1) is a bandwidth-limited channel that, under double buffering,
//! overlaps with compute. The layer's latency is therefore the maximum of
//! the compute time and each link's busy time, plus a pipeline-fill term
//! for the first L2 tile. This is the same first-order model MAESTRO's
//! latency analysis reduces to when tile delivery is fully pipelined.

use crate::accelerator::Platform;
use crate::analysis::Analysis;
use serde::{Deserialize, Serialize};

/// Which resource bounds the layer's latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// The PE array's MAC throughput.
    Compute,
    /// The DRAM→L2 link.
    Dram,
    /// The on-chip link feeding mapping level `ℓ`'s children
    /// (0-indexed from the outermost on-chip link).
    Noc(usize),
}

/// Latency decomposition for one `(layer, mapping, platform)` evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Cycles each PE spends computing (including under-filled folds).
    pub compute_cycles: f64,
    /// Busy cycles of the DRAM→L2 link.
    pub dram_cycles: f64,
    /// Busy cycles of each on-chip link, outermost first.
    pub noc_cycles: Vec<f64>,
    /// Cycles to stage the first L2 tile before compute can start.
    pub fill_cycles: f64,
    /// Total latency: `max(compute, links) + fill`.
    pub total_cycles: f64,
    /// The binding resource.
    pub bottleneck: Bottleneck,
}

/// Computes the latency breakdown from a reuse [`Analysis`].
pub fn latency(analysis: &Analysis, platform: &Platform) -> LatencyBreakdown {
    let compute_cycles = analysis.total_leaf_steps as f64 * analysis.pe_tile_macs as f64;

    // Link 0 is fed by DRAM; links 1.. are on-chip NoC stages.
    let dram_cycles = analysis.levels[0].traffic.total() as f64 / platform.bw_dram;
    let noc_cycles: Vec<f64> =
        analysis.levels[1..].iter().map(|l| l.traffic.total() as f64 / platform.bw_noc).collect();

    let fill_cycles = analysis.buffers.l2_words as f64 / platform.bw_dram;

    let mut total = compute_cycles;
    let mut bottleneck = Bottleneck::Compute;
    if dram_cycles > total {
        total = dram_cycles;
        bottleneck = Bottleneck::Dram;
    }
    for (i, &c) in noc_cycles.iter().enumerate() {
        if c > total {
            total = c;
            bottleneck = Bottleneck::Noc(i);
        }
    }

    LatencyBreakdown {
        compute_cycles,
        dram_cycles,
        noc_cycles,
        fill_cycles,
        total_cycles: total + fill_cycles,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::mapping::Mapping;
    use digamma_workload::Layer;

    #[test]
    fn latency_lower_bound_is_macs_over_pes() {
        let l = Layer::conv("l", 64, 32, 16, 16, 3, 3, 1);
        let m = Mapping::row_major_example(&l, 8, 4);
        let a = analyze(&l, &m).unwrap();
        let lat = latency(&a, &Platform::edge());
        let ideal = l.macs() as f64 / a.num_pes as f64;
        assert!(lat.total_cycles >= ideal, "{} < {}", lat.total_cycles, ideal);
    }

    #[test]
    fn memory_bound_layer_is_dram_bound() {
        // Embedding gather: no reuse possible, DRAM must bind.
        let l = Layer::gemm("emb", 64, 256, 1);
        let m = Mapping::row_major_example(&l, 8, 8);
        let a = analyze(&l, &m).unwrap();
        let lat = latency(&a, &Platform::edge());
        assert_eq!(lat.bottleneck, Bottleneck::Dram);
    }

    #[test]
    fn higher_bandwidth_never_hurts() {
        let l = Layer::conv("l", 64, 32, 16, 16, 3, 3, 1);
        let m = Mapping::row_major_example(&l, 4, 4);
        let a = analyze(&l, &m).unwrap();
        let slow = latency(&a, &Platform::edge());
        let mut fast_platform = Platform::edge();
        fast_platform.bw_dram *= 8.0;
        fast_platform.bw_noc *= 8.0;
        let fast = latency(&a, &fast_platform);
        assert!(fast.total_cycles <= slow.total_cycles);
    }

    #[test]
    fn fill_cycles_track_l2_size() {
        let l = Layer::conv("l", 64, 32, 16, 16, 3, 3, 1);
        let m = Mapping::row_major_example(&l, 8, 4);
        let a = analyze(&l, &m).unwrap();
        let lat = latency(&a, &Platform::edge());
        assert!(
            (lat.fill_cycles - a.buffers.l2_words as f64 / Platform::edge().bw_dram).abs() < 1e-9
        );
    }
}
