//! The decoded mapping IR: a stack of cluster levels.

use crate::error::EvalError;
use digamma_workload::{Dim, DimVec, Layer, NUM_DIMS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of cluster levels the model supports.
///
/// The paper's encoding shows 2 levels (a 2-D PE array); grow/aging can
/// insert a third (several 2-D arrays). Deeper stacks add nothing the
/// experiments need.
pub const MAX_LEVELS: usize = 3;

/// One cluster level of a mapping, outermost first.
///
/// Level 0 describes how the global (L2) buffer distributes tiles across
/// its `fanout` sub-clusters; the innermost level describes how a 1-D PE
/// array distributes tiles across individual PEs. `fanout` is a *hardware*
/// gene (it sizes the PE array); the rest are mapping genes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LevelSpec {
    /// Number of sub-units instantiated at this level (π in the paper).
    pub fanout: u64,
    /// The dimension whose tiles are distributed spatially across the
    /// sub-units (the `P` gene).
    pub spatial_dim: Dim,
    /// Temporal loop order, outermost first (the gene key order).
    pub order: [Dim; NUM_DIMS],
    /// Tile extents handed to **each** sub-unit per step (the gene values).
    pub tile: DimVec<u64>,
}

impl LevelSpec {
    /// A level that hands each of `fanout` sub-units a unit tile in
    /// canonical order, parallelizing `spatial_dim`.
    pub fn unit(fanout: u64, spatial_dim: Dim) -> LevelSpec {
        LevelSpec { fanout, spatial_dim, order: Dim::ALL, tile: DimVec::splat(1) }
    }

    /// The "stacked" tile this level works on per step: the union of all
    /// `fanout` sub-tiles, i.e. `tile` scaled by `fanout` along the spatial
    /// dim and clamped to `parent` extents.
    pub fn stacked_tile(&self, parent: &DimVec<u64>) -> DimVec<u64> {
        let mut stacked = self.tile;
        stacked[self.spatial_dim] = stacked[self.spatial_dim].saturating_mul(self.fanout);
        stacked.min(parent)
    }

    /// Temporal iteration counts over `parent` extents
    /// (`ceil(parent/tile)`, with the spatial dim folded by `fanout`).
    pub fn iteration_counts(&self, parent: &DimVec<u64>) -> DimVec<u64> {
        let stacked = self.stacked_tile(parent);
        parent.zip_with(stacked, |p, s| p.div_ceil(s.max(1)))
    }
}

impl fmt::Display for LevelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π:{} P:{} | ", self.fanout, self.spatial_dim)?;
        for d in self.order {
            write!(f, "{}:{} ", d, self.tile[d])?;
        }
        Ok(())
    }
}

/// A complete decoded mapping: cluster levels from the global buffer down
/// to the PE array.
///
/// Invariants (checked by [`Mapping::validate`]):
/// * 1..=[`MAX_LEVELS`] levels,
/// * every tile extent and fan-out is ≥ 1,
/// * each level's tile fits inside its parent's tile,
/// * each level's loop order is a permutation of the six dims.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    levels: Vec<LevelSpec>,
}

impl Mapping {
    /// Creates a mapping from its levels (outermost first) without
    /// validating against a layer. Call [`Mapping::validate`] before
    /// evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or has more than [`MAX_LEVELS`] entries.
    pub fn new(levels: Vec<LevelSpec>) -> Mapping {
        assert!(
            (1..=MAX_LEVELS).contains(&levels.len()),
            "mapping must have 1..={MAX_LEVELS} levels"
        );
        Mapping { levels }
    }

    /// The levels, outermost first.
    pub fn levels(&self) -> &[LevelSpec] {
        &self.levels
    }

    /// Mutable access to the levels for in-place operators (genetic
    /// perturbations re-validate afterwards).
    pub fn levels_mut(&mut self) -> &mut Vec<LevelSpec> {
        &mut self.levels
    }

    /// Total number of PEs: the product of all level fan-outs.
    pub fn num_pes(&self) -> u64 {
        self.levels.iter().map(|l| l.fanout).product()
    }

    /// PE array shape, outermost level first (e.g. `[rows, cols]`).
    pub fn pe_shape(&self) -> Vec<u64> {
        self.levels.iter().map(|l| l.fanout).collect()
    }

    /// Checks all structural invariants against `layer`.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an [`EvalError`].
    pub fn validate(&self, layer: &Layer) -> Result<(), EvalError> {
        let mut parent = *layer.dims();
        for (i, level) in self.levels.iter().enumerate() {
            if level.fanout < 1 {
                return Err(EvalError::ZeroFanout { level: i });
            }
            if !level.tile.all_positive() {
                return Err(EvalError::ZeroTile { level: i });
            }
            if !level.tile.fits_within(&parent) {
                return Err(EvalError::TileExceedsParent { level: i, tile: level.tile, parent });
            }
            let mut seen = [false; NUM_DIMS];
            for d in level.order {
                if std::mem::replace(&mut seen[d.index()], true) {
                    return Err(EvalError::InvalidOrder { level: i });
                }
            }
            parent = level.tile;
        }
        Ok(())
    }

    /// A simple, always-valid two-level mapping for examples and tests: a
    /// `rows × cols` PE array with K parallelized across clusters, Y across
    /// PEs, canonical loop order, and unit inner tiles along the spatially
    /// mapped dims.
    ///
    /// Not an optimized mapping — just a well-formed starting point.
    pub fn row_major_example(layer: &Layer, rows: u64, cols: u64) -> Mapping {
        let dims = layer.dims();
        // L2 level: hand each cluster one K-slice of the full spatial extent.
        let mut l2_tile = *dims;
        l2_tile[Dim::K] = dims[Dim::K].div_ceil(rows).max(1);
        let l2 = LevelSpec { fanout: rows, spatial_dim: Dim::K, order: Dim::ALL, tile: l2_tile };
        // L1 level: each PE gets one output row of that slice.
        let mut l1_tile = l2_tile;
        l1_tile[Dim::Y] = l2_tile[Dim::Y].div_ceil(cols).max(1);
        let l1 = LevelSpec { fanout: cols, spatial_dim: Dim::Y, order: Dim::ALL, tile: l1_tile };
        Mapping::new(vec![l2, l1])
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, level) in self.levels.iter().enumerate() {
            writeln!(f, "L{}: {}", self.levels.len() - i, level)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_workload::Layer;

    fn layer() -> Layer {
        Layer::conv("l", 64, 32, 16, 16, 3, 3, 1)
    }

    #[test]
    fn row_major_example_validates() {
        let l = layer();
        let m = Mapping::row_major_example(&l, 8, 4);
        m.validate(&l).unwrap();
        assert_eq!(m.num_pes(), 32);
        assert_eq!(m.pe_shape(), vec![8, 4]);
    }

    #[test]
    fn stacked_tile_clamps_to_parent() {
        let level = LevelSpec {
            fanout: 16,
            spatial_dim: Dim::K,
            order: Dim::ALL,
            tile: DimVec([8, 4, 4, 4, 1, 1]),
        };
        let parent = DimVec([64, 8, 8, 8, 3, 3]);
        let stacked = level.stacked_tile(&parent);
        // 8 * 16 = 128 clamps to 64.
        assert_eq!(stacked[Dim::K], 64);
        assert_eq!(stacked[Dim::C], 4);
    }

    #[test]
    fn iteration_counts_fold_spatial_dim() {
        let level = LevelSpec {
            fanout: 4,
            spatial_dim: Dim::K,
            order: Dim::ALL,
            tile: DimVec([4, 8, 16, 16, 3, 3]),
        };
        let parent = DimVec([64, 32, 16, 16, 3, 3]);
        let n = level.iteration_counts(&parent);
        // K: 64 / (4*4) = 4 temporal folds; C: 32/8 = 4; others: 1.
        assert_eq!(n[Dim::K], 4);
        assert_eq!(n[Dim::C], 4);
        assert_eq!(n[Dim::Y], 1);
        assert_eq!(n[Dim::R], 1);
    }

    #[test]
    fn iteration_counts_use_ceiling() {
        let level = LevelSpec {
            fanout: 1,
            spatial_dim: Dim::K,
            order: Dim::ALL,
            tile: DimVec([5, 1, 1, 1, 1, 1]),
        };
        let parent = DimVec([12, 1, 1, 1, 1, 1]);
        // ceil(12/5) = 3 — the last fold runs under-filled.
        assert_eq!(level.iteration_counts(&parent)[Dim::K], 3);
    }

    #[test]
    fn validate_rejects_oversized_tiles() {
        let l = layer();
        let mut m = Mapping::row_major_example(&l, 2, 2);
        m.levels_mut()[1].tile[Dim::C] = 999;
        assert!(matches!(m.validate(&l), Err(EvalError::TileExceedsParent { level: 1, .. })));
    }

    #[test]
    fn validate_rejects_duplicate_order() {
        let l = layer();
        let mut m = Mapping::row_major_example(&l, 2, 2);
        m.levels_mut()[0].order = [Dim::K, Dim::K, Dim::Y, Dim::X, Dim::R, Dim::S];
        assert!(matches!(m.validate(&l), Err(EvalError::InvalidOrder { level: 0 })));
    }

    #[test]
    fn validate_rejects_zero_fanout() {
        let l = layer();
        let mut m = Mapping::row_major_example(&l, 2, 2);
        m.levels_mut()[0].fanout = 0;
        assert!(matches!(m.validate(&l), Err(EvalError::ZeroFanout { level: 0 })));
    }

    #[test]
    #[should_panic(expected = "levels")]
    fn too_many_levels_panics() {
        let _ = Mapping::new(vec![LevelSpec::unit(1, Dim::K); 4]);
    }
}
