//! Property-based validation of the analytical model against the
//! executable reference simulator (the reproduction's substitute for
//! MAESTRO's validation against chip prototypes).
//!
//! Two laws, checked over randomized small workloads and mappings:
//!
//! 1. on *divisible* mappings (no ceil folds, no clipping) the analysis
//!    matches execution **exactly**, per level and per tensor;
//! 2. on arbitrary mappings the analysis never undercounts traffic, and
//!    the simulator always executes exactly the layer's true MAC count.

use digamma_costmodel::{analyze, simulate::simulate, LevelSpec, Mapping};
use digamma_workload::{Dim, DimVec, Layer};
use proptest::prelude::*;

/// Picks a divisor of `n` uniformly from its divisor set.
fn divisor_of(n: u64) -> impl Strategy<Value = u64> {
    let divisors: Vec<u64> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
    prop::sample::select(divisors)
}

/// A small layer with power-of-two-friendly extents.
fn small_layer() -> impl Strategy<Value = Layer> {
    (
        prop::sample::select(vec![2u64, 4, 6, 8]),
        prop::sample::select(vec![2u64, 3, 4, 8]),
        prop::sample::select(vec![2u64, 4, 6]),
        prop::sample::select(vec![2u64, 4]),
        prop::sample::select(vec![1u64, 3]),
    )
        .prop_map(|(k, c, y, x, f)| Layer::conv("p", k, c, y, x, f, f, 1))
}

fn spatial_dim() -> impl Strategy<Value = Dim> {
    prop::sample::select(vec![Dim::K, Dim::C, Dim::Y, Dim::X])
}

fn order() -> impl Strategy<Value = [Dim; 6]> {
    Just(Dim::ALL).prop_shuffle().prop_map(|v| v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn divisible_mappings_match_execution_exactly(
        layer in small_layer(),
        p2 in spatial_dim(),
        p1 in spatial_dim(),
        o2 in order(),
        o1 in order(),
        seed in 0u64..1_000,
    ) {
        // Derive divisible tiles: t2 | dims, t1 | t2, and fan-outs that
        // divide the spatial extents' tile counts (no idle folds).
        let dims = *layer.dims();
        let mut rng = seed;
        let mut next = |max: u64| {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) % max.max(1)
        };
        let pick_div = |n: u64, r: u64| -> u64 {
            let divs: Vec<u64> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
            divs[(r % divs.len() as u64) as usize]
        };
        let mut t2 = DimVec::splat(1u64);
        let mut t1 = DimVec::splat(1u64);
        for d in Dim::ALL {
            t2[d] = pick_div(dims[d], next(1_000));
            t1[d] = pick_div(t2[d], next(1_000));
        }
        // Fan-outs that evenly divide the spatial tile counts.
        let f2 = pick_div(dims[p2] / t2[p2], next(1_000)).max(1);
        let f1 = pick_div(t2[p1] / t1[p1], next(1_000)).max(1);

        let mapping = Mapping::new(vec![
            LevelSpec { fanout: f2, spatial_dim: p2, order: o2, tile: t2 },
            LevelSpec { fanout: f1, spatial_dim: p1, order: o1, tile: t1 },
        ]);
        mapping.validate(&layer).unwrap();

        let sim = simulate(&layer, &mapping).unwrap();
        let ana = analyze(&layer, &mapping).unwrap();
        prop_assert_eq!(sim.macs_executed, layer.macs());
        for (lvl, (s, a)) in sim.levels.iter().zip(&ana.levels).enumerate() {
            prop_assert_eq!(s.weight, a.traffic.weight, "weight L{}", lvl);
            prop_assert_eq!(s.input, a.traffic.input, "input L{}", lvl);
            prop_assert_eq!(s.output_write, a.traffic.output_write, "out-w L{}", lvl);
            prop_assert_eq!(s.output_read, a.traffic.output_read, "out-r L{}", lvl);
        }
    }

    #[test]
    fn arbitrary_mappings_are_upper_bounded_and_mac_exact(
        layer in small_layer(),
        p2 in spatial_dim(),
        p1 in spatial_dim(),
        f2 in 1u64..=4,
        f1 in 1u64..=4,
        t2_raw in prop::array::uniform6(1u64..=8),
        t1_raw in prop::array::uniform6(1u64..=8),
    ) {
        // Clamp raw tiles into a valid nest (repair-style).
        let dims = *layer.dims();
        let t2 = DimVec(t2_raw).min(&dims);
        let t1 = DimVec(t1_raw).min(&t2);
        let mapping = Mapping::new(vec![
            LevelSpec { fanout: f2, spatial_dim: p2, order: Dim::ALL, tile: t2 },
            LevelSpec { fanout: f1, spatial_dim: p1, order: Dim::ALL, tile: t1 },
        ]);
        mapping.validate(&layer).unwrap();

        let sim = simulate(&layer, &mapping).unwrap();
        let ana = analyze(&layer, &mapping).unwrap();
        // MAC exactness: the schedule covers the iteration space once.
        prop_assert_eq!(sim.macs_executed, layer.macs());
        // Analysis is a safe upper bound on every link and tensor.
        for (s, a) in sim.levels.iter().zip(&ana.levels) {
            prop_assert!(a.traffic.weight >= s.weight);
            prop_assert!(a.traffic.input >= s.input);
            prop_assert!(a.traffic.output_write >= s.output_write);
            prop_assert!(a.traffic.output_read >= s.output_read);
        }
    }
}

#[test]
fn divisor_strategy_helper_is_sound() {
    // Keep the helper honest (it is used to build divisible mappings).
    use proptest::strategy::{Strategy as _, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::default();
    for _ in 0..50 {
        let v = divisor_of(24).new_tree(&mut runner).unwrap().current();
        assert_eq!(24 % v, 0);
    }
}
