//! Scoped-thread parallel map built on `std::thread::scope`.
//!
//! GA fitness evaluation is embarrassingly parallel — the paper calls GA
//! "light, fast, and highly parallelizable" (Sec. IV-B). This helper
//! splits a slice across a bounded number of worker threads and collects
//! results in order.

/// A sensible default worker count: the machine's available parallelism,
/// or 1 when it cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item, fanning out across up to `threads` workers.
///
/// Results preserve input order, so callers observe the exact same
/// output regardless of `threads`. With `threads <= 1` (or a single
/// item) the map runs inline — handy for deterministic debugging.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = threads.min(items.len());
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);

    // Worker panics propagate on scope exit, after the remaining workers
    // finish (std scoped threads join implicitly).
    std::thread::scope(|scope| {
        for (slot_chunk, item_chunk) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });

    out.into_iter().map(|v| v.expect("all slots filled")).collect()
}

/// Runs `worker(i)` on `workers` scoped threads and joins them all.
///
/// This is the pull-model sibling of [`parallel_map`]: instead of
/// splitting a known slice, each worker loops pulling work from shared
/// state (a queue behind a mutex, an atomic counter) until it runs dry.
/// The search server's job pool is built on this.
///
/// With `workers <= 1` the single worker runs inline on the caller's
/// thread.
///
/// # Panics
///
/// Propagates panics from `worker`.
pub fn scoped_workers<F>(workers: usize, worker: F)
where
    F: Fn(usize) + Sync,
{
    if workers <= 1 {
        worker(0);
        return;
    }
    std::thread::scope(|scope| {
        for i in 0..workers {
            let worker = &worker;
            scope.spawn(move || worker(i));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        let doubled = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[5], 4, |&x| x * 3), vec![15]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = vec![1, 2];
        assert_eq!(parallel_map(&items, 64, |&x| x), vec![1, 2]);
    }

    #[test]
    fn scoped_workers_drain_a_shared_queue() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Mutex;
        let queue = Mutex::new((0..100u64).collect::<Vec<_>>());
        let sum = AtomicU64::new(0);
        scoped_workers(4, |_| loop {
            let Some(item) = queue.lock().unwrap().pop() else { break };
            sum.fetch_add(item, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn scoped_workers_single_runs_inline() {
        let hits = std::sync::atomic::AtomicU64::new(0);
        scoped_workers(1, |i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 1);
    }
}
