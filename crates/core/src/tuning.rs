//! Bayesian-optimization hyper-parameter tuning for DiGamma.
//!
//! Paper footnote 3: "The hyper-parameters of DiGamma (mutation rate,
//! crossover rate, elite ratio, population size to number of generations
//! ratio, and so on) are decided by a Bayesian optimization-based search
//! process." This module reproduces that loop with the GP-BO optimizer
//! from `digamma-opt`: each trial materializes a [`DiGammaConfig`] and
//! scores it by a short proxy search.

use crate::digamma_ga::{DiGamma, DiGammaConfig};
use crate::problem::CoOptProblem;
use digamma_opt::{GpBayesOpt, Optimizer};

/// Decodes a 6-coordinate unit vector into a DiGamma configuration.
///
/// Coordinates: population size (16..=128), elite fraction (0.02..=0.3),
/// crossover, reorder, mutate-map, mutate-HW rates (each 0..=0.9).
pub fn config_from_vector(x: &[f64], seed: u64) -> DiGammaConfig {
    assert!(x.len() >= 6, "need 6 tuning coordinates");
    let clamp = |v: f64| if v.is_finite() { v.clamp(0.0, 1.0) } else { 0.5 };
    DiGammaConfig {
        population_size: (16.0 + clamp(x[0]) * 112.0) as usize,
        elite_fraction: 0.02 + clamp(x[1]) * 0.28,
        crossover_rate: 0.9 * clamp(x[2]),
        reorder_rate: 0.9 * clamp(x[3]),
        mutate_map_rate: 0.9 * clamp(x[4]),
        mutate_hw_rate: 0.9 * clamp(x[5]),
        seed,
        ..DiGammaConfig::default()
    }
}

/// Runs `trials` BO iterations, each scoring a candidate configuration
/// with a `proxy_budget`-sample DiGamma search, and returns the best
/// configuration found.
pub fn tune(
    problem: &CoOptProblem,
    trials: usize,
    proxy_budget: usize,
    seed: u64,
) -> DiGammaConfig {
    assert!(trials > 0, "need at least one trial");
    let mut bo = GpBayesOpt::new(6, seed);
    let mut best_cfg = DiGammaConfig { seed, ..DiGammaConfig::default() };
    let mut best_score = f64::INFINITY;

    for trial in 0..trials {
        let x = bo.ask();
        let cfg = config_from_vector(&x, seed.wrapping_add(trial as u64));
        let result = DiGamma::new(cfg.clone()).search(problem, proxy_budget);
        let score = result.best_cost().unwrap_or(f64::MAX);
        bo.tell(&x, score);
        if score < best_score {
            best_score = score;
            best_cfg = cfg;
        }
    }
    best_cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use digamma_costmodel::Platform;
    use digamma_workload::zoo;

    #[test]
    fn vector_decodes_to_sane_config() {
        let cfg = config_from_vector(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 1);
        assert_eq!(cfg.population_size, 16);
        assert!((cfg.elite_fraction - 0.02).abs() < 1e-9);
        let cfg = config_from_vector(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0], 1);
        assert_eq!(cfg.population_size, 128);
        assert!(cfg.crossover_rate <= 0.9);
    }

    #[test]
    fn nan_coordinates_are_tolerated() {
        let cfg = config_from_vector(&[f64::NAN; 6], 1);
        assert!(cfg.population_size >= 16 && cfg.population_size <= 128);
    }

    #[test]
    fn tuning_returns_a_usable_config() {
        let problem = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency);
        let cfg = tune(&problem, 3, 60, 42);
        // The tuned config must itself run.
        let result = DiGamma::new(cfg).search(&problem, 60);
        assert!(result.samples == 60);
    }
}
