//! DiGamma: HW-Mapping co-optimization for DNN accelerators.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Kao, Pellauer, Parashar, Krishna — DATE 2022): a framework that
//! searches the *joint* space of accelerator hardware configurations
//! (PE array size/shape, derived buffer capacities) and mappings
//! (tiling, loop order, parallelism, clustering) under an area budget,
//! plus the domain-aware genetic algorithm that makes the search
//! sample-efficient.
//!
//! * [`CoOptProblem`] — the evaluation block of Fig. 3(a): decode a
//!   genome, score every unique layer with the cost model, derive the
//!   minimum-footprint hardware, and check the area budget,
//! * [`DiGamma`] — the domain-aware GA of Sec. IV-C (Crossover, Reorder,
//!   Grow/Aging, Mutate-Map, Mutate-HW + buffer allocation strategy),
//! * [`run_algorithm`] — plugs any [`digamma_opt::Algorithm`] baseline
//!   into the same problem through the continuous codec,
//! * [`Gamma`] — the mapping-only GA baseline (GAMMA, ICCAD 2020),
//! * [`templates`] — NVDLA-like / ShiDianNao-like / Eyeriss-like fixed
//!   mappings,
//! * [`hw_grid_search`] — the HW-opt baseline (grid search over PE and
//!   buffer allocations with a fixed mapping style),
//! * [`schemes`] — the fixed HW presets (Buffer-/Medium-/Compute-focused)
//!   used by the Mapping-opt baseline, and
//! * [`tuning`] — GP-BO hyper-parameter search for DiGamma (footnote 3).
//!
//! # Quickstart
//!
//! ```
//! use digamma::{CoOptProblem, DiGamma, DiGammaConfig, Objective};
//! use digamma_costmodel::Platform;
//! use digamma_workload::zoo;
//!
//! let problem = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency);
//! let mut config = DiGammaConfig::default();
//! config.population_size = 20;
//! config.seed = 1;
//! let result = DiGamma::new(config).search(&problem, 200);
//! let best = result.best.expect("found a valid design");
//! assert!(best.feasible);
//! assert!(best.area_um2 <= Platform::edge().area_budget_um2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod schemes;
pub mod templates;
pub mod tuning;

mod coopt;
mod digamma_ga;
mod gamma;
mod hwopt;
mod objective;
mod parallel;
mod problem;
mod result;

pub use coopt::run_algorithm;
pub use digamma_ga::{DiGamma, DiGammaConfig, SearchState, StepAction, StepObserver, StopCause};
pub use gamma::{Gamma, GammaConfig};
pub use hwopt::{hw_grid_search, GridSearchResult};
pub use objective::Objective;
pub use parallel::{default_threads, parallel_map, scoped_workers};
pub use problem::{
    CoOptProblem, Constraint, DesignEvaluation, EvalCache, EvalMetrics, EvalTrace, GenomeMemo,
};
pub use result::{DesignPoint, SearchResult};
pub use templates::MappingStyle;
