//! The co-optimization problem: the evaluation block of Fig. 3(a).

use crate::objective::Objective;
use digamma_costmodel::{
    CostReport, EvalError, Evaluator, HwConfig, Mapping, Platform, StableHasher,
};
use digamma_encoding::Genome;
use digamma_obs::{
    Counter, FailAction, FailSet, Histogram, MetricsRegistry, SampleTick, SpanContext, SpanRecord,
    Tracer, DEFAULT_LATENCY_BUCKETS,
};
use digamma_workload::{LayerKind, Model, UniqueLayer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-evaluation latency is sampled 1-in-N rather than timed on every
/// call: a scratch eval runs in ~450ns (see `BENCH_eval.json`), so two
/// clock reads per eval would distort the very number being measured.
/// 64 keeps the whole instrumented delta under the harness's 3%
/// overhead budget while a smoke-sized job (≈100 evals) still lands a
/// couple of observations.
const EVAL_LATENCY_SAMPLE_EVERY: u64 = 64;

/// Metric handles for the evaluation hot path, registered once per job
/// (labelled by tenant) and shared by every clone of the problem.
///
/// All handles are pre-resolved atomics, so the instrumented path adds
/// a handful of relaxed atomic ops per *batch* plus one relaxed
/// `fetch_add` per distinct evaluation; wall-clock reads for the
/// per-eval latency histogram are sampled (see
/// [`EvalMetrics::for_tenant`]). A problem without attached metrics
/// pays nothing beyond one branch per batch.
#[derive(Debug)]
pub struct EvalMetrics {
    evals: Counter,
    eval_seconds: Histogram,
    batch_seconds: Histogram,
    dedup_skipped: Counter,
    memo_hits: Counter,
    memo_misses: Counter,
    sample: SampleTick,
}

impl EvalMetrics {
    /// Registers (or re-resolves) the eval-path metric family for one
    /// tenant: `digamma_evals_total`, `digamma_eval_seconds` (sampled
    /// 1-in-64), `digamma_eval_batch_seconds`,
    /// `digamma_eval_dedup_skipped_total`, and
    /// `digamma_genome_memo_probes_total{result=...}`.
    #[must_use]
    pub fn for_tenant(registry: &MetricsRegistry, tenant: &str) -> EvalMetrics {
        let t = [("tenant", tenant)];
        EvalMetrics {
            evals: registry.counter(
                "digamma_evals_total",
                "Distinct per-layer cost-model evaluations performed (after batch dedupe).",
                &t,
            ),
            eval_seconds: registry.histogram(
                "digamma_eval_seconds",
                "Per-layer cost-model evaluation latency, sampled 1 in 64 evaluations \
                 so the ~450ns hot path is not distorted by timing it.",
                &t,
                DEFAULT_LATENCY_BUCKETS,
            ),
            batch_seconds: registry.histogram(
                "digamma_eval_batch_seconds",
                "Wall time of whole evaluate_batch calls (one per GA generation).",
                &t,
                DEFAULT_LATENCY_BUCKETS,
            ),
            dedup_skipped: registry.counter(
                "digamma_eval_dedup_skipped_total",
                "Identical (layer, mapping) evaluations skipped by batch-local dedupe.",
                &t,
            ),
            memo_hits: registry.counter(
                "digamma_genome_memo_probes_total",
                "Whole-genome memo probes by result.",
                &[("tenant", tenant), ("result", "hit")],
            ),
            memo_misses: registry.counter(
                "digamma_genome_memo_probes_total",
                "Whole-genome memo probes by result.",
                &[("tenant", tenant), ("result", "miss")],
            ),
            sample: SampleTick::new(EVAL_LATENCY_SAMPLE_EVERY),
        }
    }
}

/// Span handles for the evaluation hot path, attached by the server
/// when tracing is enabled for a job. The same sampling discipline as
/// [`EvalMetrics`]: individual eval spans are recorded 1-in-64 (the
/// ~450ns hot path must not be dominated by clock reads and span
/// bookkeeping), while whole-batch spans — one per GA generation — are
/// recorded every call. All spans nest under the job's run span and
/// carry its job id, so they land in the job's Perfetto lane.
#[derive(Debug)]
pub struct EvalTrace {
    tracer: Tracer,
    parent: SpanContext,
    job: u64,
    sample: SampleTick,
}

impl EvalTrace {
    /// Builds span handles parented under `parent` (a job's run span)
    /// and tagged with `job`.
    #[must_use]
    pub fn new(tracer: Tracer, parent: SpanContext, job: u64) -> EvalTrace {
        EvalTrace { tracer, parent, job, sample: SampleTick::new(EVAL_LATENCY_SAMPLE_EVERY) }
    }

    /// Records one sampled per-layer eval span, back-dated by its
    /// measured duration.
    fn record_eval(&self, layer: usize, elapsed: Duration) {
        let dur_ns = elapsed.as_nanos() as u64;
        self.tracer.record(SpanRecord {
            trace: self.parent.trace,
            span: self.tracer.span_id(),
            parent: Some(self.parent.span),
            name: "eval.layer",
            job: Some(self.job),
            start_ns: self.tracer.now_ns().saturating_sub(dur_ns),
            dur_ns,
            attrs: vec![("layer", layer.to_string())],
        });
    }

    /// Records one whole-batch eval span (one per GA generation),
    /// back-dated by its measured duration.
    fn record_batch(&self, genomes: usize, distinct_evals: usize, elapsed: Duration) {
        let dur_ns = elapsed.as_nanos() as u64;
        self.tracer.record(SpanRecord {
            trace: self.parent.trace,
            span: self.tracer.span_id(),
            parent: Some(self.parent.span),
            name: "eval.batch",
            job: Some(self.job),
            start_ns: self.tracer.now_ns().saturating_sub(dur_ns),
            dur_ns,
            attrs: vec![
                ("genomes", genomes.to_string()),
                ("distinct_evals", distinct_evals.to_string()),
            ],
        });
    }
}

/// Base cost assigned to infeasible designs (the paper's "negative
/// fitness"); scaled by the constraint overshoot so the search still sees
/// a gradient toward feasibility.
pub(crate) const INFEASIBLE_COST: f64 = 1e18;

/// Optional design constraint restricting the search space (Sec. III-B).
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// Full co-optimization: both HW and mapping are free.
    None,
    /// Fixed-HW use-case: the hardware is given; only mappings are
    /// searched and they must fit the given buffers and PE array.
    FixedHw(HwConfig),
}

/// A shared, thread-safe memo for per-layer cost-model results.
///
/// Implementations map the stable key from
/// [`Evaluator::cache_key`](digamma_costmodel::Evaluator::cache_key) to
/// the [`CostReport`] that evaluation produced. A hit must return a
/// report identical to what the cost model would compute — evaluation is
/// pure, so storing and replaying reports is semantics-preserving; the
/// `digamma-server` crate's sharded fitness cache is the production
/// implementation and property-tests exactly that equivalence.
///
/// Reports travel as [`Arc`]s so a hit is a refcount bump, never a deep
/// clone — the cache's whole point is to be much cheaper than the cost
/// model.
pub trait EvalCache: std::fmt::Debug + Send + Sync {
    /// Returns the memoized report for `key`, if present.
    fn lookup(&self, key: u64) -> Option<Arc<CostReport>>;
    /// Memoizes `report` under `key` (implementations may evict).
    fn store(&self, key: u64, report: &Arc<CostReport>);
}

/// A shared, thread-safe memo for **whole-genome** evaluations: the
/// second memo layer above the per-layer [`EvalCache`].
///
/// Elites survive generations unchanged, crossover re-creates recent
/// parents, and resubmitted jobs re-score entire populations — the
/// batch-local dedupe counters show whole genomes recur constantly. A
/// genome-memo hit skips the decode → per-layer-evaluate → aggregate
/// pipeline entirely, returning the finished [`DesignEvaluation`].
///
/// Keys come from [`CoOptProblem::genome_key`], which hashes everything
/// the evaluation reads (model constants, budget, objective, constraint,
/// layer shapes, and every gene), so equal keys guarantee identical
/// evaluations; storing and replaying them is semantics-preserving. The
/// `digamma-server` crate's `ShardedGenomeMemo` is the production
/// implementation.
pub trait GenomeMemo: std::fmt::Debug + Send + Sync {
    /// Returns the memoized evaluation for `key`, if present.
    fn lookup(&self, key: u64) -> Option<Arc<DesignEvaluation>>;
    /// Memoizes `evaluation` under `key` (implementations may evict).
    fn store(&self, key: u64, evaluation: &Arc<DesignEvaluation>);
}

/// The outcome of evaluating one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignEvaluation {
    /// Scalar cost the optimizer minimizes (lower is better; designs
    /// violating the constraint receive a large penalty cost ≥ 1e18
    /// scaled by the overshoot).
    pub cost: f64,
    /// Whether the design satisfies the area budget / fixed-HW constraint.
    pub feasible: bool,
    /// Total model latency in cycles (valid even for infeasible designs).
    pub latency_cycles: f64,
    /// Total model energy in pJ.
    pub energy_pj: f64,
    /// Area of the (derived or fixed) hardware in µm².
    pub area_um2: f64,
    /// PE-only area in µm².
    pub pe_area_um2: f64,
    /// The hardware configuration backing this design.
    pub hw: HwConfig,
}

/// A `(model, platform, objective, constraint)` bundle that scores
/// genomes. This is the generic interface the paper exposes to *any*
/// optimization algorithm (Sec. III-B1).
#[derive(Debug, Clone)]
pub struct CoOptProblem {
    model: Model,
    unique: Vec<UniqueLayer>,
    evaluator: Evaluator,
    objective: Objective,
    constraint: Constraint,
    num_levels: usize,
    cache: Option<Arc<dyn EvalCache>>,
    genome_memo: Option<Arc<dyn GenomeMemo>>,
    /// The problem-identity prefix of [`CoOptProblem::genome_key`],
    /// hashed once here (and re-hashed by [`CoOptProblem::with_constraint`])
    /// instead of per genome — on the memoized hot path only the genes
    /// remain to hash.
    genome_key_prefix: StableHasher,
    /// Identical `(layer shape, mapping)` evaluations skipped by the
    /// batch-local dedupe map (shared across clones of this problem, so a
    /// server's per-job problem copies report one total).
    batch_dedup_skipped: Arc<AtomicU64>,
    /// Wall-clock nanoseconds spent inside [`CoOptProblem::evaluate`] /
    /// [`CoOptProblem::evaluate_batch`], shared across clones like the
    /// dedupe counter — a job's timing breakdown reads one total even
    /// when the search uses constrained problem copies.
    eval_wall_ns: Arc<AtomicU64>,
    /// Optional metric handles (tenant-labelled); attached by the
    /// server when its registry is enabled.
    eval_metrics: Option<Arc<EvalMetrics>>,
    /// Optional span handles parented under the job's run span;
    /// attached by the server when tracing is enabled.
    eval_trace: Option<Arc<EvalTrace>>,
    /// Optional failpoint set, consulted once per batch (the
    /// `worker.eval` point); attached by the server so a chaos run can
    /// panic a search mid-generation.
    eval_faults: Option<Arc<FailSet>>,
}

impl CoOptProblem {
    /// Creates an unconstrained co-optimization problem with 2 cluster
    /// levels (the paper's default encoding).
    pub fn new(model: Model, platform: Platform, objective: Objective) -> CoOptProblem {
        let unique = model.unique_layers();
        let evaluator = Evaluator::new(platform);
        let constraint = Constraint::None;
        let genome_key_prefix =
            Self::compute_genome_key_prefix(&evaluator, objective, &constraint, &unique);
        CoOptProblem {
            model,
            unique,
            evaluator,
            objective,
            constraint,
            num_levels: 2,
            cache: None,
            genome_memo: None,
            genome_key_prefix,
            batch_dedup_skipped: Arc::new(AtomicU64::new(0)),
            eval_wall_ns: Arc::new(AtomicU64::new(0)),
            eval_metrics: None,
            eval_trace: None,
            eval_faults: None,
        }
    }

    /// Restricts the search with a design constraint.
    pub fn with_constraint(mut self, constraint: Constraint) -> CoOptProblem {
        self.constraint = constraint;
        self.genome_key_prefix = Self::compute_genome_key_prefix(
            &self.evaluator,
            self.objective,
            &self.constraint,
            &self.unique,
        );
        self
    }

    /// Attaches a shared fitness memo: per-layer evaluations whose key is
    /// already cached skip the cost model entirely. The cache may be
    /// shared across problems, searches, and threads.
    pub fn with_cache(mut self, cache: Arc<dyn EvalCache>) -> CoOptProblem {
        self.cache = Some(cache);
        self
    }

    /// Detaches any attached fitness memo.
    pub fn without_cache(mut self) -> CoOptProblem {
        self.cache = None;
        self
    }

    /// The attached fitness memo, if any.
    pub fn cache(&self) -> Option<&Arc<dyn EvalCache>> {
        self.cache.as_ref()
    }

    /// Attaches a whole-genome memo (the layer above the per-layer
    /// cache): genomes whose [`CoOptProblem::genome_key`] is already
    /// memoized skip decoding and per-layer evaluation entirely.
    pub fn with_genome_memo(mut self, memo: Arc<dyn GenomeMemo>) -> CoOptProblem {
        self.genome_memo = Some(memo);
        self
    }

    /// Detaches any attached genome memo.
    pub fn without_genome_memo(mut self) -> CoOptProblem {
        self.genome_memo = None;
        self
    }

    /// The attached genome memo, if any.
    pub fn genome_memo(&self) -> Option<&Arc<dyn GenomeMemo>> {
        self.genome_memo.as_ref()
    }

    /// Attaches tenant-labelled metric handles for the evaluation hot
    /// path (see [`EvalMetrics`]). Shared by every clone of this
    /// problem, like the cache and dedupe counter.
    pub fn with_eval_metrics(mut self, metrics: Arc<EvalMetrics>) -> CoOptProblem {
        self.eval_metrics = Some(metrics);
        self
    }

    /// The attached eval metric handles, if any.
    pub fn eval_metrics(&self) -> Option<&Arc<EvalMetrics>> {
        self.eval_metrics.as_ref()
    }

    /// Attaches span handles for the evaluation hot path (see
    /// [`EvalTrace`]). Shared by every clone of this problem, like the
    /// cache and metric handles.
    pub fn with_eval_trace(mut self, trace: Arc<EvalTrace>) -> CoOptProblem {
        self.eval_trace = Some(trace);
        self
    }

    /// The attached eval span handles, if any.
    pub fn eval_trace(&self) -> Option<&Arc<EvalTrace>> {
        self.eval_trace.as_ref()
    }

    /// Attaches a failpoint set to the evaluation hot path: every
    /// [`CoOptProblem::evaluate_batch`] call hits the `worker.eval`
    /// point, and a [`FailAction::Panic`] firing panics the batch —
    /// the injected "worker dies mid-generation" fault the registry
    /// must catch. Disarmed, the hit costs one relaxed atomic load per
    /// batch; detached, one branch.
    pub fn with_eval_faults(mut self, faults: Arc<FailSet>) -> CoOptProblem {
        self.eval_faults = Some(faults);
        self
    }

    /// The attached failpoint set, if any.
    pub fn eval_faults(&self) -> Option<&Arc<FailSet>> {
        self.eval_faults.as_ref()
    }

    /// Total wall time spent inside [`CoOptProblem::evaluate`] and
    /// [`CoOptProblem::evaluate_batch`] across all clones of this
    /// problem — the "eval" slice of a job's timing breakdown.
    pub fn eval_wall(&self) -> Duration {
        Duration::from_nanos(self.eval_wall_ns.load(Ordering::Relaxed))
    }

    /// Sets the number of cluster levels genomes use (2 or 3).
    ///
    /// # Panics
    ///
    /// Panics if `num_levels` is not 1, 2, or 3.
    pub fn with_num_levels(mut self, num_levels: usize) -> CoOptProblem {
        assert!((1..=3).contains(&num_levels), "supported level counts: 1..=3");
        self.num_levels = num_levels;
        self
    }

    /// The target model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The model's deduplicated layers (the genome's mapping granularity).
    pub fn unique_layers(&self) -> &[UniqueLayer] {
        &self.unique
    }

    /// The platform envelope (budget, bandwidths).
    pub fn platform(&self) -> &Platform {
        self.evaluator.platform()
    }

    /// The cost-model evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// The search objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The active constraint.
    pub fn constraint(&self) -> &Constraint {
        &self.constraint
    }

    /// Number of cluster levels genomes must carry.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// The genome's hardware fan-outs after applying the constraint
    /// (Fixed-HW pins them to the given array shape). Borrowed — neither
    /// path clones anything.
    fn effective_fanouts<'a>(&'a self, genome: &'a Genome) -> &'a [u64] {
        match &self.constraint {
            Constraint::None => &genome.fanouts,
            Constraint::FixedHw(hw) => &hw.fanouts,
        }
    }

    /// Decodes a genome under the active constraint without cloning the
    /// genome to override fields: `Constraint::None` decodes in place,
    /// and Fixed-HW threads the pinned fan-outs straight into the
    /// decoder.
    fn decode_effective<'a>(&'a self, genome: &'a Genome) -> (&'a [u64], Vec<Mapping>) {
        let fanouts = self.effective_fanouts(genome);
        (fanouts, genome.decode_with_fanouts(&self.unique, fanouts))
    }

    /// Scores a genome: the full evaluation block (decode → cost model →
    /// buffer allocation → constraint check), short-circuited by the
    /// genome memo when one is attached and already holds this genome.
    ///
    /// Structurally invalid genomes (which repair should have prevented)
    /// are treated as maximally infeasible rather than panicking.
    pub fn evaluate(&self, genome: &Genome) -> DesignEvaluation {
        let started = Instant::now();
        let evaluation = self.evaluate_timed(genome);
        self.eval_wall_ns.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        evaluation
    }

    /// [`CoOptProblem::evaluate`] below the wall-clock accumulator.
    fn evaluate_timed(&self, genome: &Genome) -> DesignEvaluation {
        let Some(memo) = &self.genome_memo else {
            return self.evaluate_unmemoized(genome);
        };
        let key = self.genome_key(genome);
        if let Some(hit) = memo.lookup(key) {
            if let Some(m) = &self.eval_metrics {
                m.memo_hits.inc();
            }
            return (*hit).clone();
        }
        if let Some(m) = &self.eval_metrics {
            m.memo_misses.inc();
        }
        let evaluation = self.evaluate_unmemoized(genome);
        memo.store(key, &Arc::new(evaluation.clone()));
        evaluation
    }

    /// The evaluation pipeline below the genome memo.
    fn evaluate_unmemoized(&self, genome: &Genome) -> DesignEvaluation {
        let (fanouts, mappings) = self.decode_effective(genome);
        match self.evaluate_mappings(fanouts, &mappings) {
            Ok(eval) => eval,
            Err(_) => Self::invalid_evaluation(fanouts.to_vec()),
        }
    }

    /// The maximally-infeasible evaluation assigned to structurally
    /// invalid genomes (which repair should have prevented).
    fn invalid_evaluation(fanouts: Vec<u64>) -> DesignEvaluation {
        DesignEvaluation {
            cost: INFEASIBLE_COST * 10.0,
            feasible: false,
            latency_cycles: f64::INFINITY,
            energy_pj: f64::INFINITY,
            area_um2: f64::INFINITY,
            pe_area_um2: f64::INFINITY,
            hw: HwConfig { fanouts, l2_words: 0, mid_words_per_unit: vec![], l1_words_per_pe: 0 },
        }
    }

    /// Scores a whole batch of genomes (a GA population), deduplicating
    /// identical `(layer shape, mapping)` evaluations *within the batch*
    /// before they reach the cache or the cost model.
    ///
    /// Elites survive generations unchanged and crossover children
    /// inherit whole per-layer gene sets from surviving parents, so one
    /// generation's batch re-states many identical per-layer evaluations
    /// — on deep CNNs (many unique shapes, few mutated per child) most of
    /// a child's layers duplicate an elite's. A batch-local map collapses
    /// each distinct key to one evaluation (and one shared-cache probe),
    /// and [`CoOptProblem::batch_dedup_skipped`] counts the skips.
    ///
    /// Results are identical to calling [`CoOptProblem::evaluate`] per
    /// genome, in order, for any `threads` value — evaluation is pure, so
    /// deduplication is semantics-preserving.
    pub fn evaluate_batch(&self, genomes: &[Genome], threads: usize) -> Vec<DesignEvaluation> {
        if let Some(faults) = &self.eval_faults {
            if faults.fired("worker.eval") == Some(FailAction::Panic) {
                panic!("injected panic at failpoint \"worker.eval\"");
            }
        }
        let started = Instant::now();
        let mut out: Vec<Option<DesignEvaluation>> = genomes.iter().map(|_| None).collect();

        // Layer 0: the genome memo. Hits skip decoding entirely; only
        // the misses proceed into the per-layer pipeline below.
        let mut miss_keys: Vec<u64> = Vec::new();
        let misses: Vec<usize> = match &self.genome_memo {
            None => (0..genomes.len()).collect(),
            Some(memo) => {
                let mut misses = Vec::with_capacity(genomes.len());
                for (i, genome) in genomes.iter().enumerate() {
                    let key = self.genome_key(genome);
                    match memo.lookup(key) {
                        Some(hit) => out[i] = Some((*hit).clone()),
                        None => {
                            misses.push(i);
                            miss_keys.push(key);
                        }
                    }
                }
                misses
            }
        };
        if let (Some(m), true) = (&self.eval_metrics, self.genome_memo.is_some()) {
            m.memo_hits.add((genomes.len() - misses.len()) as u64);
            m.memo_misses.add(misses.len() as u64);
        }

        // Decode every miss once (no genome clones: the constraint's
        // fan-outs thread straight into the decoder).
        let decoded: Vec<(&[u64], Vec<Mapping>)> =
            misses.iter().map(|&i| self.decode_effective(&genomes[i])).collect();

        // Layer 1: batch-local dedupe. First occurrence of a key claims
        // a work slot; repeats reuse it. `layout` remembers, per genome
        // and layer, which slot holds its report.
        let mut slots: HashMap<u64, usize> = HashMap::new();
        let mut work: Vec<(usize, &Mapping)> = Vec::new();
        let mut layout: Vec<Vec<usize>> = Vec::with_capacity(decoded.len());
        let mut skipped = 0u64;
        for (_, mappings) in &decoded {
            let mut per_genome = Vec::with_capacity(mappings.len());
            for (li, mapping) in mappings.iter().enumerate() {
                let key = self.evaluator.cache_key(&self.unique[li].layer, mapping);
                let slot = match slots.get(&key) {
                    Some(&slot) => {
                        skipped += 1;
                        slot
                    }
                    None => {
                        let slot = work.len();
                        slots.insert(key, slot);
                        work.push((li, mapping));
                        slot
                    }
                };
                per_genome.push(slot);
            }
            layout.push(per_genome);
        }
        self.batch_dedup_skipped.fetch_add(skipped, Ordering::Relaxed);
        if let Some(m) = &self.eval_metrics {
            m.dedup_skipped.add(skipped);
            m.evals.add(work.len() as u64);
        }

        // Layer 2: only distinct evaluations fan out to workers (and
        // probe the attached shared per-layer cache, when there is one).
        // With metrics or tracing attached, per-eval latency is observed
        // on independent 1-in-64 samples so the clock reads stay off the
        // common path; fully uninstrumented problems take the bare arm.
        let results: Vec<Result<Arc<CostReport>, EvalError>> =
            match (&self.eval_metrics, &self.eval_trace) {
                (None, None) => crate::parallel::parallel_map(&work, threads, |&(li, mapping)| {
                    self.evaluate_layer(&self.unique[li].layer, mapping)
                }),
                (metrics, trace) => {
                    crate::parallel::parallel_map(&work, threads, |&(li, mapping)| {
                        let sample_metrics = metrics.as_ref().is_some_and(|m| m.sample.due());
                        let sample_trace = trace.as_ref().is_some_and(|t| t.sample.due());
                        if sample_metrics || sample_trace {
                            let eval_started = Instant::now();
                            let result = self.evaluate_layer(&self.unique[li].layer, mapping);
                            let elapsed = eval_started.elapsed();
                            if sample_metrics {
                                if let Some(m) = metrics {
                                    m.eval_seconds.observe_duration(elapsed);
                                }
                            }
                            if sample_trace {
                                if let Some(t) = trace {
                                    t.record_eval(li, elapsed);
                                }
                            }
                            result
                        } else {
                            self.evaluate_layer(&self.unique[li].layer, mapping)
                        }
                    })
                }
            };

        for (mi, (&i, ((fanouts, mappings), per_genome))) in
            misses.iter().zip(decoded.iter().zip(&layout)).enumerate()
        {
            let mut reports = Vec::with_capacity(per_genome.len());
            let mut failed = false;
            for &slot in per_genome {
                match &results[slot] {
                    Ok(r) => reports.push(Arc::clone(r)),
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            let evaluation = if failed {
                Self::invalid_evaluation(fanouts.to_vec())
            } else {
                self.aggregate(fanouts, mappings, &reports)
            };
            if let Some(memo) = &self.genome_memo {
                memo.store(miss_keys[mi], &Arc::new(evaluation.clone()));
            }
            out[i] = Some(evaluation);
        }

        let elapsed = started.elapsed();
        self.eval_wall_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        if let Some(m) = &self.eval_metrics {
            m.batch_seconds.observe_duration(elapsed);
        }
        if let Some(t) = &self.eval_trace {
            t.record_batch(genomes.len(), work.len(), elapsed);
        }
        out.into_iter().map(|e| e.expect("every genome evaluated")).collect()
    }

    /// Identical `(layer shape, mapping)` evaluations skipped so far by
    /// [`CoOptProblem::evaluate_batch`]'s batch-local dedupe map. The
    /// counter is shared across clones of this problem.
    pub fn batch_dedup_skipped(&self) -> u64 {
        self.batch_dedup_skipped.load(Ordering::Relaxed)
    }

    /// Stable memo key for a whole-genome evaluation on this problem.
    ///
    /// Follows the FNV discipline of [`digamma_costmodel::cachekey`]
    /// (process- and seed-independent, versioned through `KEY_VERSION`
    /// via [`StableHasher::new`]): two keys are equal only when
    /// [`CoOptProblem::evaluate`] is guaranteed to return an identical
    /// [`DesignEvaluation`]. The key therefore covers
    ///
    /// * every cost-model constant the evaluator reads (bandwidths,
    ///   area/energy coefficients),
    /// * the platform's area budget (it decides feasibility and the
    ///   penalty gradient),
    /// * the objective and the constraint (a Fixed-HW config hashes all
    ///   its fields),
    /// * each unique layer's kind, extents, stride, and multiplicity
    ///   (names are excluded, like the per-layer key), and
    /// * every gene: fan-outs, and per layer per level the spatial dim,
    ///   loop order, and tile extents.
    ///
    /// A domain tag separates this key space from the per-layer one, so
    /// the same `u64` can never mean both.
    ///
    /// The problem-identity prefix (everything except the genes) is
    /// hashed once at construction — per call only the genome's genes
    /// are fed in, keeping key computation cheap on the memoized path.
    pub fn genome_key(&self, genome: &Genome) -> u64 {
        let mut h = self.genome_key_prefix.clone();
        h.write_u64(genome.fanouts.len() as u64);
        for &f in &genome.fanouts {
            h.write_u64(f);
        }
        for lg in &genome.layers {
            h.write_u64(lg.levels.len() as u64);
            for level in &lg.levels {
                h.write_u64(level.spatial_dim.index() as u64);
                for d in level.order {
                    h.write_u64(d.index() as u64);
                }
                for (_, t) in level.tile.iter() {
                    h.write_u64(t);
                }
            }
        }
        h.finish()
    }

    /// Hashes the problem-identity prefix of [`CoOptProblem::genome_key`]:
    /// the cost-model constants, area budget, objective, constraint, and
    /// every unique layer's shape and multiplicity.
    fn compute_genome_key_prefix(
        evaluator: &Evaluator,
        objective: Objective,
        constraint: &Constraint,
        unique: &[UniqueLayer],
    ) -> StableHasher {
        /// Domain separator ("genome" in ASCII), so genome keys and
        /// per-layer keys can never alias even under one `HashMap`.
        const GENOME_KEY_DOMAIN: u64 = 0x67656e_6f6d65;
        let mut h = StableHasher::new();
        h.write_u64(GENOME_KEY_DOMAIN);
        evaluator.write_model_constants(&mut h);
        h.write_f64(evaluator.platform().area_budget_um2);
        h.write_u64(match objective {
            Objective::Latency => 0,
            Objective::Energy => 1,
            Objective::Edp => 2,
        });
        match constraint {
            Constraint::None => h.write_u64(0),
            Constraint::FixedHw(hw) => {
                h.write_u64(1);
                h.write_u64(hw.fanouts.len() as u64);
                for &f in &hw.fanouts {
                    h.write_u64(f);
                }
                h.write_u64(hw.l2_words);
                h.write_u64(hw.mid_words_per_unit.len() as u64);
                for &m in &hw.mid_words_per_unit {
                    h.write_u64(m);
                }
                h.write_u64(hw.l1_words_per_pe);
            }
        }
        h.write_u64(unique.len() as u64);
        for u in unique {
            h.write_u64(match u.layer.kind() {
                LayerKind::Conv => 0,
                LayerKind::DepthwiseConv => 1,
                LayerKind::Gemm => 2,
            });
            for (_, extent) in u.layer.dims().iter() {
                h.write_u64(extent);
            }
            h.write_u64(u.layer.stride());
            h.write_u64(u.count);
        }
        h
    }

    /// Scores explicit per-unique-layer mappings on the given PE array.
    ///
    /// This is the entry point the template/grid-search baselines use
    /// (they construct [`Mapping`]s directly rather than genomes).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if any mapping is structurally invalid.
    ///
    /// # Panics
    ///
    /// Panics if `mappings.len()` differs from the unique-layer count.
    pub fn evaluate_mappings(
        &self,
        fanouts: &[u64],
        mappings: &[Mapping],
    ) -> Result<DesignEvaluation, EvalError> {
        assert_eq!(mappings.len(), self.unique.len(), "one mapping per unique layer");
        let mut reports = Vec::with_capacity(mappings.len());
        for (u, mapping) in self.unique.iter().zip(mappings) {
            reports.push(self.evaluate_layer(&u.layer, mapping)?);
        }
        Ok(self.aggregate(fanouts, mappings, &reports))
    }

    /// Combines per-layer cost reports into one design evaluation: sum
    /// latency/energy weighted by layer multiplicity, derive the
    /// minimum-footprint hardware (or check the fixed one), and score
    /// against the area budget.
    fn aggregate(
        &self,
        fanouts: &[u64],
        mappings: &[Mapping],
        reports: &[Arc<CostReport>],
    ) -> DesignEvaluation {
        let mut latency = 0.0;
        let mut energy = 0.0;
        let mut derived = HwConfig {
            fanouts: fanouts.to_vec(),
            l2_words: 0,
            mid_words_per_unit: vec![0; fanouts.len().saturating_sub(2)],
            l1_words_per_pe: 0,
        };
        let mut fits_fixed = true;

        for ((u, mapping), report) in self.unique.iter().zip(mappings).zip(reports) {
            latency += report.latency_cycles * u.count as f64;
            energy += report.energy_pj * u.count as f64;
            if let Constraint::FixedHw(hw) = &self.constraint {
                fits_fixed &= hw.accommodates(&mapping.pe_shape(), &report.buffers);
            }
            derived.grow_to_fit(&report.buffers);
        }

        // The hardware that must exist: the fixed one, or the derived
        // minimum (buffer allocation strategy).
        let hw = match &self.constraint {
            Constraint::FixedHw(fixed) => fixed.clone(),
            Constraint::None => derived,
        };
        let area = self.evaluator.area_model().area_um2(&hw);
        let pe_area = self.evaluator.area_model().pe_area_um2(&hw);
        let budget = self.platform().area_budget_um2;

        let over_budget = area > budget;
        let feasible = !over_budget && fits_fixed;
        let cost = if feasible {
            self.objective.score(latency, energy)
        } else if over_budget {
            INFEASIBLE_COST * (1.0 + (area - budget) / budget)
        } else {
            INFEASIBLE_COST * 2.0
        };

        DesignEvaluation {
            cost,
            feasible,
            latency_cycles: latency,
            energy_pj: energy,
            area_um2: area,
            pe_area_um2: pe_area,
            hw,
        }
    }

    /// One per-layer cost-model call, routed through the attached memo
    /// cache when there is one. Errors (structurally invalid mappings)
    /// are never cached — repair upstream makes them rare, and a penalty
    /// evaluation is cheap anyway.
    fn evaluate_layer(
        &self,
        layer: &digamma_workload::Layer,
        mapping: &Mapping,
    ) -> Result<Arc<CostReport>, EvalError> {
        let Some(cache) = &self.cache else {
            return Ok(Arc::new(self.evaluator.evaluate(layer, mapping)?));
        };
        let key = self.evaluator.cache_key(layer, mapping);
        if let Some(report) = cache.lookup(key) {
            return Ok(report);
        }
        let report = Arc::new(self.evaluator.evaluate(layer, mapping)?);
        cache.store(key, &report);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_workload::zoo;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn problem() -> CoOptProblem {
        CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency)
    }

    #[test]
    fn random_genomes_evaluate_without_panicking() {
        let p = problem();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..30 {
            let g = Genome::random(&mut rng, p.unique_layers(), p.platform(), 2);
            let e = p.evaluate(&g);
            assert!(e.latency_cycles > 0.0);
            assert!(e.area_um2 > 0.0);
            if e.feasible {
                assert!(e.area_um2 <= p.platform().area_budget_um2);
                assert!(e.cost < INFEASIBLE_COST);
            } else {
                assert!(e.cost >= INFEASIBLE_COST);
            }
        }
    }

    #[test]
    fn evaluate_batch_matches_per_genome_evaluate() {
        let p = problem();
        let mut rng = SmallRng::seed_from_u64(8);
        let mut genomes: Vec<Genome> =
            (0..8).map(|_| Genome::random(&mut rng, p.unique_layers(), p.platform(), 2)).collect();
        // A duplicate genome, as elites and their unmutated offspring
        // produce in every real generation.
        genomes.push(genomes[0].clone());
        for threads in [1, 4] {
            let batch = p.evaluate_batch(&genomes, threads);
            for (g, e) in genomes.iter().zip(&batch) {
                assert_eq!(*e, p.evaluate(g), "dedupe must not change results");
            }
        }
        // The duplicate's per-layer evaluations were all skipped (twice:
        // once per thread count above).
        assert!(
            p.batch_dedup_skipped() >= 2 * p.unique_layers().len() as u64,
            "skipped only {}",
            p.batch_dedup_skipped()
        );
    }

    /// A test genome memo that counts traffic and records stores.
    #[derive(Debug, Default)]
    struct CountingMemo {
        map: std::sync::Mutex<HashMap<u64, Arc<DesignEvaluation>>>,
        hits: AtomicU64,
        misses: AtomicU64,
    }

    impl GenomeMemo for CountingMemo {
        fn lookup(&self, key: u64) -> Option<Arc<DesignEvaluation>> {
            let found = self.map.lock().unwrap().get(&key).cloned();
            match &found {
                Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
                None => self.misses.fetch_add(1, Ordering::Relaxed),
            };
            found
        }
        fn store(&self, key: u64, evaluation: &Arc<DesignEvaluation>) {
            self.map.lock().unwrap().insert(key, Arc::clone(evaluation));
        }
    }

    #[test]
    fn genome_memo_hits_preserve_results_exactly() {
        let memo = Arc::new(CountingMemo::default());
        let without = problem();
        let with = problem().with_genome_memo(Arc::clone(&memo) as _);
        let mut rng = SmallRng::seed_from_u64(12);
        let genomes: Vec<Genome> = (0..6)
            .map(|_| Genome::random(&mut rng, without.unique_layers(), without.platform(), 2))
            .collect();
        // First pass populates; second pass must be served entirely from
        // the memo with identical results.
        let first = with.evaluate_batch(&genomes, 1);
        let hits_after_first = memo.hits.load(Ordering::Relaxed);
        let second = with.evaluate_batch(&genomes, 1);
        assert_eq!(
            memo.hits.load(Ordering::Relaxed) - hits_after_first,
            genomes.len() as u64,
            "second pass must hit for every genome"
        );
        let plain = without.evaluate_batch(&genomes, 1);
        for ((a, b), c) in first.iter().zip(&second).zip(&plain) {
            assert_eq!(a, b, "memo hit changed a result");
            assert_eq!(a, c, "memoized batch diverged from unmemoized");
        }
        // Single-genome evaluation shares the same memo layer.
        for g in &genomes {
            assert_eq!(with.evaluate(g), without.evaluate(g));
        }
    }

    #[test]
    fn genome_key_tracks_every_identity_input() {
        let p = problem();
        let mut rng = SmallRng::seed_from_u64(13);
        let g = Genome::random(&mut rng, p.unique_layers(), p.platform(), 2);
        let base = p.genome_key(&g);
        assert_eq!(base, p.genome_key(&g), "key must be deterministic");

        // Any gene change moves the key.
        let mut mutated = g.clone();
        mutated.fanouts[0] = mutated.fanouts[0].saturating_add(1);
        assert_ne!(base, p.genome_key(&mutated));
        let mut mutated = g.clone();
        mutated.layers[0].levels[0].tile[digamma_workload::Dim::K] += 1;
        assert_ne!(base, p.genome_key(&mutated));
        let mut mutated = g.clone();
        mutated.layers[0].levels[0].order.swap(0, 5);
        assert_ne!(base, p.genome_key(&mutated));

        // Problem identity changes move it too.
        let edp = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Edp);
        assert_ne!(base, edp.genome_key(&g));
        let cloud = CoOptProblem::new(zoo::ncf(), Platform::cloud(), Objective::Latency);
        assert_ne!(base, cloud.genome_key(&g));
        let fixed = problem().with_constraint(Constraint::FixedHw(HwConfig {
            fanouts: vec![4, 4],
            l2_words: 1024,
            mid_words_per_unit: vec![],
            l1_words_per_pe: 64,
        }));
        assert_ne!(base, fixed.genome_key(&g));
        // A different model with different shapes moves it.
        let dlrm = CoOptProblem::new(zoo::dlrm(), Platform::edge(), Objective::Latency);
        let g_dlrm = Genome::random(&mut rng, dlrm.unique_layers(), dlrm.platform(), 2);
        // (Different genome anyway; the point is no panic and no alias.)
        assert_ne!(base, dlrm.genome_key(&g_dlrm));

        // The genome key can never alias a per-layer key for the same
        // design (domain separation).
        let mappings = g.decode(p.unique_layers());
        for (u, m) in p.unique_layers().iter().zip(&mappings) {
            assert_ne!(base, p.evaluator().cache_key(&u.layer, m));
        }
    }

    #[test]
    fn eval_metrics_do_not_change_results_and_wall_clock_accumulates() {
        let registry = MetricsRegistry::new();
        let metered =
            problem().with_eval_metrics(Arc::new(EvalMetrics::for_tenant(&registry, "t")));
        let plain = problem();
        let mut rng = SmallRng::seed_from_u64(21);
        let genomes: Vec<Genome> = (0..4)
            .map(|_| Genome::random(&mut rng, plain.unique_layers(), plain.platform(), 2))
            .collect();
        assert_eq!(
            metered.evaluate_batch(&genomes, 2),
            plain.evaluate_batch(&genomes, 2),
            "attached metrics must not perturb evaluation results"
        );
        assert!(metered.eval_wall() > Duration::ZERO);
        assert!(plain.eval_wall() > Duration::ZERO, "wall accumulates with or without metrics");

        // Clones (as the server and Gamma's constrained copy make)
        // share the accumulator and the handles.
        let clone = metered.clone();
        let before = metered.eval_wall();
        clone.evaluate(&genomes[0]);
        assert!(metered.eval_wall() > before, "clone must feed the shared eval-wall total");

        let text = registry.render();
        assert!(text.contains("digamma_evals_total{tenant=\"t\"}"), "{text}");
        assert!(text.contains("digamma_eval_batch_seconds_count{tenant=\"t\"} 1"), "{text}");
    }

    #[test]
    fn eval_trace_does_not_change_results_and_records_batch_spans() {
        let tracer = Tracer::new();
        let root = {
            let span = tracer.start_root("job.run");
            span.context().expect("enabled tracer yields contexts")
        };
        let traced = problem().with_eval_trace(Arc::new(EvalTrace::new(tracer.clone(), root, 9)));
        let plain = problem();
        let mut rng = SmallRng::seed_from_u64(33);
        let genomes: Vec<Genome> = (0..4)
            .map(|_| Genome::random(&mut rng, plain.unique_layers(), plain.platform(), 2))
            .collect();
        assert_eq!(
            traced.evaluate_batch(&genomes, 2),
            plain.evaluate_batch(&genomes, 2),
            "attached tracing must not perturb evaluation results"
        );
        let spans = tracer.spans_for(root.trace);
        let batch = spans.iter().find(|s| s.name == "eval.batch").expect("one batch span");
        assert_eq!(batch.parent, Some(root.span), "eval spans nest under the run span");
        assert_eq!(batch.job, Some(9));
        assert!(batch.attrs.iter().any(|(k, v)| *k == "genomes" && v == "4"), "{:?}", batch.attrs);
        // Any sampled per-eval spans also nest under the run span.
        for span in spans.iter().filter(|s| s.name == "eval.layer") {
            assert_eq!(span.parent, Some(root.span));
            assert_eq!(span.job, Some(9));
        }
    }

    #[test]
    fn infeasible_cost_grows_with_overshoot() {
        let p = problem();
        let mut rng = SmallRng::seed_from_u64(2);
        // Force enormous hardware: max fan-outs with huge tiles.
        let mut g = Genome::random(&mut rng, p.unique_layers(), p.platform(), 2);
        g.fanouts = vec![64, 16]; // 1024 PEs on edge: PE area alone ≈ 0.36 mm² > 0.2 mm².
        for lg in &mut g.layers {
            for lvl in &mut lg.levels {
                lvl.tile = digamma_workload::DimVec::splat(u64::MAX);
            }
        }
        let e = p.evaluate(&g);
        assert!(!e.feasible);
        assert!(e.cost > INFEASIBLE_COST);
    }

    #[test]
    fn latency_accounts_for_layer_multiplicity() {
        let model = zoo::dlrm();
        let p = CoOptProblem::new(model.clone(), Platform::edge(), Objective::Latency);
        let mut rng = SmallRng::seed_from_u64(3);
        let g = Genome::random(&mut rng, p.unique_layers(), p.platform(), 2);
        let e = p.evaluate(&g);
        // Evaluating per-layer manually must reproduce the aggregate.
        let mappings = {
            let mut eff = g.clone();
            eff.fanouts = g.fanouts.clone();
            eff.decode(p.unique_layers())
        };
        let mut manual = 0.0;
        for (u, m) in p.unique_layers().iter().zip(&mappings) {
            let r = p.evaluator().evaluate(&u.layer, m).unwrap();
            manual += r.latency_cycles * u.count as f64;
        }
        assert!((manual - e.latency_cycles).abs() < 1e-6);
    }

    #[test]
    fn fixed_hw_constraint_penalizes_oversized_mappings() {
        let tiny_hw = HwConfig {
            fanouts: vec![2, 2],
            l2_words: 64,
            mid_words_per_unit: vec![],
            l1_words_per_pe: 8,
        };
        let p = problem().with_constraint(Constraint::FixedHw(tiny_hw.clone()));
        let mut rng = SmallRng::seed_from_u64(4);
        let mut any_feasible = false;
        let mut any_infeasible = false;
        for _ in 0..60 {
            let g = Genome::random(&mut rng, p.unique_layers(), p.platform(), 2);
            let e = p.evaluate(&g);
            // Fixed hardware: the reported hw is always the given one.
            assert_eq!(e.hw, tiny_hw);
            any_feasible |= e.feasible;
            any_infeasible |= !e.feasible;
        }
        assert!(any_infeasible, "random mappings should often overflow 8-word L1s");
        // (Some random mapping with unit tiles may fit; either way the
        // penalty path must be exercised above.)
        let _ = any_feasible;
    }

    #[test]
    fn objective_changes_ranking_dimension() {
        let p_lat = problem();
        let p_edp = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Edp);
        let mut rng = SmallRng::seed_from_u64(5);
        let g = Genome::random(&mut rng, p_lat.unique_layers(), p_lat.platform(), 2);
        let e_lat = p_lat.evaluate(&g);
        let e_edp = p_edp.evaluate(&g);
        if e_lat.feasible {
            assert!((e_lat.cost - e_lat.latency_cycles).abs() < 1e-9);
            assert!(
                (e_edp.cost - e_lat.latency_cycles * e_lat.energy_pj).abs() / e_edp.cost.max(1.0)
                    < 1e-9
            );
        }
    }
}
