//! The co-optimization problem: the evaluation block of Fig. 3(a).

use crate::objective::Objective;
use digamma_costmodel::{CostReport, EvalError, Evaluator, HwConfig, Mapping, Platform};
use digamma_encoding::Genome;
use digamma_workload::{Model, UniqueLayer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Base cost assigned to infeasible designs (the paper's "negative
/// fitness"); scaled by the constraint overshoot so the search still sees
/// a gradient toward feasibility.
pub(crate) const INFEASIBLE_COST: f64 = 1e18;

/// Optional design constraint restricting the search space (Sec. III-B).
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// Full co-optimization: both HW and mapping are free.
    None,
    /// Fixed-HW use-case: the hardware is given; only mappings are
    /// searched and they must fit the given buffers and PE array.
    FixedHw(HwConfig),
}

/// A shared, thread-safe memo for per-layer cost-model results.
///
/// Implementations map the stable key from
/// [`Evaluator::cache_key`](digamma_costmodel::Evaluator::cache_key) to
/// the [`CostReport`] that evaluation produced. A hit must return a
/// report identical to what the cost model would compute — evaluation is
/// pure, so storing and replaying reports is semantics-preserving; the
/// `digamma-server` crate's sharded fitness cache is the production
/// implementation and property-tests exactly that equivalence.
///
/// Reports travel as [`Arc`]s so a hit is a refcount bump, never a deep
/// clone — the cache's whole point is to be much cheaper than the cost
/// model.
pub trait EvalCache: std::fmt::Debug + Send + Sync {
    /// Returns the memoized report for `key`, if present.
    fn lookup(&self, key: u64) -> Option<Arc<CostReport>>;
    /// Memoizes `report` under `key` (implementations may evict).
    fn store(&self, key: u64, report: &Arc<CostReport>);
}

/// The outcome of evaluating one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignEvaluation {
    /// Scalar cost the optimizer minimizes (lower is better; designs
    /// violating the constraint receive a large penalty cost ≥ 1e18
    /// scaled by the overshoot).
    pub cost: f64,
    /// Whether the design satisfies the area budget / fixed-HW constraint.
    pub feasible: bool,
    /// Total model latency in cycles (valid even for infeasible designs).
    pub latency_cycles: f64,
    /// Total model energy in pJ.
    pub energy_pj: f64,
    /// Area of the (derived or fixed) hardware in µm².
    pub area_um2: f64,
    /// PE-only area in µm².
    pub pe_area_um2: f64,
    /// The hardware configuration backing this design.
    pub hw: HwConfig,
}

/// A `(model, platform, objective, constraint)` bundle that scores
/// genomes. This is the generic interface the paper exposes to *any*
/// optimization algorithm (Sec. III-B1).
#[derive(Debug, Clone)]
pub struct CoOptProblem {
    model: Model,
    unique: Vec<UniqueLayer>,
    evaluator: Evaluator,
    objective: Objective,
    constraint: Constraint,
    num_levels: usize,
    cache: Option<Arc<dyn EvalCache>>,
    /// Identical `(layer shape, mapping)` evaluations skipped by the
    /// batch-local dedupe map (shared across clones of this problem, so a
    /// server's per-job problem copies report one total).
    batch_dedup_skipped: Arc<AtomicU64>,
}

impl CoOptProblem {
    /// Creates an unconstrained co-optimization problem with 2 cluster
    /// levels (the paper's default encoding).
    pub fn new(model: Model, platform: Platform, objective: Objective) -> CoOptProblem {
        let unique = model.unique_layers();
        CoOptProblem {
            model,
            unique,
            evaluator: Evaluator::new(platform),
            objective,
            constraint: Constraint::None,
            num_levels: 2,
            cache: None,
            batch_dedup_skipped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Restricts the search with a design constraint.
    pub fn with_constraint(mut self, constraint: Constraint) -> CoOptProblem {
        self.constraint = constraint;
        self
    }

    /// Attaches a shared fitness memo: per-layer evaluations whose key is
    /// already cached skip the cost model entirely. The cache may be
    /// shared across problems, searches, and threads.
    pub fn with_cache(mut self, cache: Arc<dyn EvalCache>) -> CoOptProblem {
        self.cache = Some(cache);
        self
    }

    /// Detaches any attached fitness memo.
    pub fn without_cache(mut self) -> CoOptProblem {
        self.cache = None;
        self
    }

    /// The attached fitness memo, if any.
    pub fn cache(&self) -> Option<&Arc<dyn EvalCache>> {
        self.cache.as_ref()
    }

    /// Sets the number of cluster levels genomes use (2 or 3).
    ///
    /// # Panics
    ///
    /// Panics if `num_levels` is not 1, 2, or 3.
    pub fn with_num_levels(mut self, num_levels: usize) -> CoOptProblem {
        assert!((1..=3).contains(&num_levels), "supported level counts: 1..=3");
        self.num_levels = num_levels;
        self
    }

    /// The target model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The model's deduplicated layers (the genome's mapping granularity).
    pub fn unique_layers(&self) -> &[UniqueLayer] {
        &self.unique
    }

    /// The platform envelope (budget, bandwidths).
    pub fn platform(&self) -> &Platform {
        self.evaluator.platform()
    }

    /// The cost-model evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// The search objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The active constraint.
    pub fn constraint(&self) -> &Constraint {
        &self.constraint
    }

    /// Number of cluster levels genomes must carry.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// The genome's hardware fan-outs after applying the constraint
    /// (Fixed-HW pins them to the given array shape).
    fn effective_fanouts(&self, genome: &Genome) -> Vec<u64> {
        match &self.constraint {
            Constraint::None => genome.fanouts.clone(),
            Constraint::FixedHw(hw) => hw.fanouts.clone(),
        }
    }

    /// Scores a genome: the full evaluation block (decode → cost model →
    /// buffer allocation → constraint check).
    ///
    /// Structurally invalid genomes (which repair should have prevented)
    /// are treated as maximally infeasible rather than panicking.
    pub fn evaluate(&self, genome: &Genome) -> DesignEvaluation {
        let mut effective = genome.clone();
        effective.fanouts = self.effective_fanouts(genome);
        let mappings = effective.decode(&self.unique);
        match self.evaluate_mappings(&effective.fanouts, &mappings) {
            Ok(eval) => eval,
            Err(_) => Self::invalid_evaluation(effective.fanouts),
        }
    }

    /// The maximally-infeasible evaluation assigned to structurally
    /// invalid genomes (which repair should have prevented).
    fn invalid_evaluation(fanouts: Vec<u64>) -> DesignEvaluation {
        DesignEvaluation {
            cost: INFEASIBLE_COST * 10.0,
            feasible: false,
            latency_cycles: f64::INFINITY,
            energy_pj: f64::INFINITY,
            area_um2: f64::INFINITY,
            pe_area_um2: f64::INFINITY,
            hw: HwConfig { fanouts, l2_words: 0, mid_words_per_unit: vec![], l1_words_per_pe: 0 },
        }
    }

    /// Scores a whole batch of genomes (a GA population), deduplicating
    /// identical `(layer shape, mapping)` evaluations *within the batch*
    /// before they reach the cache or the cost model.
    ///
    /// Elites survive generations unchanged and crossover children
    /// inherit whole per-layer gene sets from surviving parents, so one
    /// generation's batch re-states many identical per-layer evaluations
    /// — on deep CNNs (many unique shapes, few mutated per child) most of
    /// a child's layers duplicate an elite's. A batch-local map collapses
    /// each distinct key to one evaluation (and one shared-cache probe),
    /// and [`CoOptProblem::batch_dedup_skipped`] counts the skips.
    ///
    /// Results are identical to calling [`CoOptProblem::evaluate`] per
    /// genome, in order, for any `threads` value — evaluation is pure, so
    /// deduplication is semantics-preserving.
    pub fn evaluate_batch(&self, genomes: &[Genome], threads: usize) -> Vec<DesignEvaluation> {
        // Decode every genome once.
        let decoded: Vec<(Vec<u64>, Vec<Mapping>)> = genomes
            .iter()
            .map(|g| {
                let fanouts = self.effective_fanouts(g);
                let mut eff = g.clone();
                eff.fanouts = fanouts.clone();
                let mappings = eff.decode(&self.unique);
                (fanouts, mappings)
            })
            .collect();

        // Batch-local dedupe: first occurrence of a key claims a work
        // slot; repeats reuse it. `layout` remembers, per genome and
        // layer, which slot holds its report.
        let mut slots: HashMap<u64, usize> = HashMap::new();
        let mut work: Vec<(usize, &Mapping)> = Vec::new();
        let mut layout: Vec<Vec<usize>> = Vec::with_capacity(genomes.len());
        let mut skipped = 0u64;
        for (_, mappings) in &decoded {
            let mut per_genome = Vec::with_capacity(mappings.len());
            for (li, mapping) in mappings.iter().enumerate() {
                let key = self.evaluator.cache_key(&self.unique[li].layer, mapping);
                let slot = match slots.get(&key) {
                    Some(&slot) => {
                        skipped += 1;
                        slot
                    }
                    None => {
                        let slot = work.len();
                        slots.insert(key, slot);
                        work.push((li, mapping));
                        slot
                    }
                };
                per_genome.push(slot);
            }
            layout.push(per_genome);
        }
        self.batch_dedup_skipped.fetch_add(skipped, Ordering::Relaxed);

        // Only distinct evaluations fan out to workers (and probe the
        // attached shared cache, when there is one).
        let results: Vec<Result<Arc<CostReport>, EvalError>> =
            crate::parallel::parallel_map(&work, threads, |&(li, mapping)| {
                self.evaluate_layer(&self.unique[li].layer, mapping)
            });

        decoded
            .iter()
            .zip(&layout)
            .map(|((fanouts, mappings), per_genome)| {
                let mut reports = Vec::with_capacity(per_genome.len());
                for &slot in per_genome {
                    match &results[slot] {
                        Ok(r) => reports.push(Arc::clone(r)),
                        Err(_) => return Self::invalid_evaluation(fanouts.clone()),
                    }
                }
                self.aggregate(fanouts, mappings, &reports)
            })
            .collect()
    }

    /// Identical `(layer shape, mapping)` evaluations skipped so far by
    /// [`CoOptProblem::evaluate_batch`]'s batch-local dedupe map. The
    /// counter is shared across clones of this problem.
    pub fn batch_dedup_skipped(&self) -> u64 {
        self.batch_dedup_skipped.load(Ordering::Relaxed)
    }

    /// Scores explicit per-unique-layer mappings on the given PE array.
    ///
    /// This is the entry point the template/grid-search baselines use
    /// (they construct [`Mapping`]s directly rather than genomes).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if any mapping is structurally invalid.
    ///
    /// # Panics
    ///
    /// Panics if `mappings.len()` differs from the unique-layer count.
    pub fn evaluate_mappings(
        &self,
        fanouts: &[u64],
        mappings: &[Mapping],
    ) -> Result<DesignEvaluation, EvalError> {
        assert_eq!(mappings.len(), self.unique.len(), "one mapping per unique layer");
        let mut reports = Vec::with_capacity(mappings.len());
        for (u, mapping) in self.unique.iter().zip(mappings) {
            reports.push(self.evaluate_layer(&u.layer, mapping)?);
        }
        Ok(self.aggregate(fanouts, mappings, &reports))
    }

    /// Combines per-layer cost reports into one design evaluation: sum
    /// latency/energy weighted by layer multiplicity, derive the
    /// minimum-footprint hardware (or check the fixed one), and score
    /// against the area budget.
    fn aggregate(
        &self,
        fanouts: &[u64],
        mappings: &[Mapping],
        reports: &[Arc<CostReport>],
    ) -> DesignEvaluation {
        let mut latency = 0.0;
        let mut energy = 0.0;
        let mut derived = HwConfig {
            fanouts: fanouts.to_vec(),
            l2_words: 0,
            mid_words_per_unit: vec![0; fanouts.len().saturating_sub(2)],
            l1_words_per_pe: 0,
        };
        let mut fits_fixed = true;

        for ((u, mapping), report) in self.unique.iter().zip(mappings).zip(reports) {
            latency += report.latency_cycles * u.count as f64;
            energy += report.energy_pj * u.count as f64;
            if let Constraint::FixedHw(hw) = &self.constraint {
                fits_fixed &= hw.accommodates(&mapping.pe_shape(), &report.buffers);
            }
            derived.grow_to_fit(&report.buffers);
        }

        // The hardware that must exist: the fixed one, or the derived
        // minimum (buffer allocation strategy).
        let hw = match &self.constraint {
            Constraint::FixedHw(fixed) => fixed.clone(),
            Constraint::None => derived,
        };
        let area = self.evaluator.area_model().area_um2(&hw);
        let pe_area = self.evaluator.area_model().pe_area_um2(&hw);
        let budget = self.platform().area_budget_um2;

        let over_budget = area > budget;
        let feasible = !over_budget && fits_fixed;
        let cost = if feasible {
            self.objective.score(latency, energy)
        } else if over_budget {
            INFEASIBLE_COST * (1.0 + (area - budget) / budget)
        } else {
            INFEASIBLE_COST * 2.0
        };

        DesignEvaluation {
            cost,
            feasible,
            latency_cycles: latency,
            energy_pj: energy,
            area_um2: area,
            pe_area_um2: pe_area,
            hw,
        }
    }

    /// One per-layer cost-model call, routed through the attached memo
    /// cache when there is one. Errors (structurally invalid mappings)
    /// are never cached — repair upstream makes them rare, and a penalty
    /// evaluation is cheap anyway.
    fn evaluate_layer(
        &self,
        layer: &digamma_workload::Layer,
        mapping: &Mapping,
    ) -> Result<Arc<CostReport>, EvalError> {
        let Some(cache) = &self.cache else {
            return Ok(Arc::new(self.evaluator.evaluate(layer, mapping)?));
        };
        let key = self.evaluator.cache_key(layer, mapping);
        if let Some(report) = cache.lookup(key) {
            return Ok(report);
        }
        let report = Arc::new(self.evaluator.evaluate(layer, mapping)?);
        cache.store(key, &report);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_workload::zoo;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn problem() -> CoOptProblem {
        CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency)
    }

    #[test]
    fn random_genomes_evaluate_without_panicking() {
        let p = problem();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..30 {
            let g = Genome::random(&mut rng, p.unique_layers(), p.platform(), 2);
            let e = p.evaluate(&g);
            assert!(e.latency_cycles > 0.0);
            assert!(e.area_um2 > 0.0);
            if e.feasible {
                assert!(e.area_um2 <= p.platform().area_budget_um2);
                assert!(e.cost < INFEASIBLE_COST);
            } else {
                assert!(e.cost >= INFEASIBLE_COST);
            }
        }
    }

    #[test]
    fn evaluate_batch_matches_per_genome_evaluate() {
        let p = problem();
        let mut rng = SmallRng::seed_from_u64(8);
        let mut genomes: Vec<Genome> =
            (0..8).map(|_| Genome::random(&mut rng, p.unique_layers(), p.platform(), 2)).collect();
        // A duplicate genome, as elites and their unmutated offspring
        // produce in every real generation.
        genomes.push(genomes[0].clone());
        for threads in [1, 4] {
            let batch = p.evaluate_batch(&genomes, threads);
            for (g, e) in genomes.iter().zip(&batch) {
                assert_eq!(*e, p.evaluate(g), "dedupe must not change results");
            }
        }
        // The duplicate's per-layer evaluations were all skipped (twice:
        // once per thread count above).
        assert!(
            p.batch_dedup_skipped() >= 2 * p.unique_layers().len() as u64,
            "skipped only {}",
            p.batch_dedup_skipped()
        );
    }

    #[test]
    fn infeasible_cost_grows_with_overshoot() {
        let p = problem();
        let mut rng = SmallRng::seed_from_u64(2);
        // Force enormous hardware: max fan-outs with huge tiles.
        let mut g = Genome::random(&mut rng, p.unique_layers(), p.platform(), 2);
        g.fanouts = vec![64, 16]; // 1024 PEs on edge: PE area alone ≈ 0.36 mm² > 0.2 mm².
        for lg in &mut g.layers {
            for lvl in &mut lg.levels {
                lvl.tile = digamma_workload::DimVec::splat(u64::MAX);
            }
        }
        let e = p.evaluate(&g);
        assert!(!e.feasible);
        assert!(e.cost > INFEASIBLE_COST);
    }

    #[test]
    fn latency_accounts_for_layer_multiplicity() {
        let model = zoo::dlrm();
        let p = CoOptProblem::new(model.clone(), Platform::edge(), Objective::Latency);
        let mut rng = SmallRng::seed_from_u64(3);
        let g = Genome::random(&mut rng, p.unique_layers(), p.platform(), 2);
        let e = p.evaluate(&g);
        // Evaluating per-layer manually must reproduce the aggregate.
        let mappings = {
            let mut eff = g.clone();
            eff.fanouts = g.fanouts.clone();
            eff.decode(p.unique_layers())
        };
        let mut manual = 0.0;
        for (u, m) in p.unique_layers().iter().zip(&mappings) {
            let r = p.evaluator().evaluate(&u.layer, m).unwrap();
            manual += r.latency_cycles * u.count as f64;
        }
        assert!((manual - e.latency_cycles).abs() < 1e-6);
    }

    #[test]
    fn fixed_hw_constraint_penalizes_oversized_mappings() {
        let tiny_hw = HwConfig {
            fanouts: vec![2, 2],
            l2_words: 64,
            mid_words_per_unit: vec![],
            l1_words_per_pe: 8,
        };
        let p = problem().with_constraint(Constraint::FixedHw(tiny_hw.clone()));
        let mut rng = SmallRng::seed_from_u64(4);
        let mut any_feasible = false;
        let mut any_infeasible = false;
        for _ in 0..60 {
            let g = Genome::random(&mut rng, p.unique_layers(), p.platform(), 2);
            let e = p.evaluate(&g);
            // Fixed hardware: the reported hw is always the given one.
            assert_eq!(e.hw, tiny_hw);
            any_feasible |= e.feasible;
            any_infeasible |= !e.feasible;
        }
        assert!(any_infeasible, "random mappings should often overflow 8-word L1s");
        // (Some random mapping with unit tiles may fit; either way the
        // penalty path must be exercised above.)
        let _ = any_feasible;
    }

    #[test]
    fn objective_changes_ranking_dimension() {
        let p_lat = problem();
        let p_edp = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Edp);
        let mut rng = SmallRng::seed_from_u64(5);
        let g = Genome::random(&mut rng, p_lat.unique_layers(), p_lat.platform(), 2);
        let e_lat = p_lat.evaluate(&g);
        let e_edp = p_edp.evaluate(&g);
        if e_lat.feasible {
            assert!((e_lat.cost - e_lat.latency_cycles).abs() < 1e-9);
            assert!(
                (e_edp.cost - e_lat.latency_cycles * e_lat.energy_pj).abs() / e_edp.cost.max(1.0)
                    < 1e-9
            );
        }
    }
}
