//! Fixed hardware presets for the Mapping-opt baseline (Sec. V-A).
//!
//! The paper "cherry-picks" three HW configurations per platform that
//! trade compute against buffer under the same area budget:
//!
//! * **Buffer-focused** — small PE array, large buffers,
//! * **Medium-Buf-Com** — balanced,
//! * **Compute-focused** — large PE array, small buffers.
//!
//! Each preset consumes (close to) the full budget; GAMMA then searches
//! the best mapping for each.

use digamma_costmodel::{AreaModel, HwConfig, Platform};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three fixed HW flavours of the Mapping-opt baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HwPreset {
    /// Small compute + large buffer.
    BufferFocused,
    /// Medium buffer + medium compute.
    MediumBufCom,
    /// Large compute + small buffer.
    ComputeFocused,
}

impl HwPreset {
    /// All presets, in the paper's column order.
    pub const ALL: [HwPreset; 3] =
        [HwPreset::BufferFocused, HwPreset::MediumBufCom, HwPreset::ComputeFocused];

    /// Fraction of the area budget given to PEs (+ their L1s).
    fn compute_fraction(self) -> f64 {
        match self {
            HwPreset::BufferFocused => 0.25,
            HwPreset::MediumBufCom => 0.50,
            HwPreset::ComputeFocused => 0.75,
        }
    }

    /// Per-PE L1 words for the preset (larger on buffer-heavy designs).
    fn l1_words(self) -> u64 {
        match self {
            HwPreset::BufferFocused => 256,
            HwPreset::MediumBufCom => 128,
            HwPreset::ComputeFocused => 64,
        }
    }

    /// Materializes the preset under a platform's budget.
    ///
    /// The PE count is the largest power-of-two total that keeps the
    /// compute share within its fraction; the array is near-square; the
    /// L2 buffer absorbs the remaining area.
    pub fn build(self, platform: &Platform, area: &AreaModel) -> HwConfig {
        let budget = platform.area_budget_um2;
        let l1 = self.l1_words();
        let per_pe = area.pe_um2 + l1 as f64 * area.l1_um2_per_word;
        let max_by_area = (budget * self.compute_fraction() / per_pe) as u64;
        let max_pes = max_by_area.min(platform.max_pes).max(4);
        // Largest power of two ≤ max_pes, split near-square.
        let total = 1u64 << (63 - max_pes.leading_zeros() as u64);
        let clusters = 1u64 << ((63 - total.leading_zeros() as u64) / 2);
        let pes_per_cluster = total / clusters;

        let hw_probe = HwConfig {
            fanouts: vec![clusters, pes_per_cluster],
            l2_words: 0,
            mid_words_per_unit: vec![],
            l1_words_per_pe: l1,
        };
        let used = area.area_um2(&hw_probe);
        let l2_words = (((budget - used) * 0.95).max(0.0) / area.l2_um2_per_word) as u64;
        HwConfig { l2_words, ..hw_probe }
    }
}

impl fmt::Display for HwPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HwPreset::BufferFocused => "Buffer-focused",
            HwPreset::MediumBufCom => "Medium-Buf-Com",
            HwPreset::ComputeFocused => "Compute-focused",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_costmodel::AREA_MODEL_15NM;

    #[test]
    fn presets_fit_their_budgets() {
        for platform in [Platform::edge(), Platform::cloud()] {
            for preset in HwPreset::ALL {
                let hw = preset.build(&platform, &AREA_MODEL_15NM);
                let a = AREA_MODEL_15NM.area_um2(&hw);
                assert!(
                    a <= platform.area_budget_um2,
                    "{preset} on {}: {a} > {}",
                    platform.name,
                    platform.area_budget_um2
                );
                // And they should consume most of it (no sandbagging).
                assert!(
                    a >= 0.7 * platform.area_budget_um2,
                    "{preset} on {} wastes budget: {a}",
                    platform.name
                );
            }
        }
    }

    #[test]
    fn compute_focused_has_most_pes_buffer_focused_most_buffer() {
        let p = Platform::edge();
        let buf = HwPreset::BufferFocused.build(&p, &AREA_MODEL_15NM);
        let med = HwPreset::MediumBufCom.build(&p, &AREA_MODEL_15NM);
        let com = HwPreset::ComputeFocused.build(&p, &AREA_MODEL_15NM);
        assert!(com.num_pes() > med.num_pes());
        assert!(med.num_pes() > buf.num_pes());
        assert!(buf.l2_words > med.l2_words);
        assert!(med.l2_words > com.l2_words);
    }

    #[test]
    fn cloud_presets_dwarf_edge_presets() {
        let edge = HwPreset::MediumBufCom.build(&Platform::edge(), &AREA_MODEL_15NM);
        let cloud = HwPreset::MediumBufCom.build(&Platform::cloud(), &AREA_MODEL_15NM);
        assert!(cloud.num_pes() >= 8 * edge.num_pes());
        assert!(cloud.l2_words > 8 * edge.l2_words);
    }

    #[test]
    fn preset_arrays_are_power_of_two_shaped() {
        for preset in HwPreset::ALL {
            let hw = preset.build(&Platform::edge(), &AREA_MODEL_15NM);
            for f in &hw.fanouts {
                assert!(f.is_power_of_two(), "{preset}: fanout {f}");
            }
        }
    }
}
