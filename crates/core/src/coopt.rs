//! Plugging baseline black-box optimizers into the co-opt framework.
//!
//! The framework's optimization block (Fig. 3(a)) is algorithm-agnostic:
//! any ask/tell optimizer can drive it through the continuous codec. This
//! is how the paper runs the eight nevergrad baselines of Fig. 5.

use crate::problem::CoOptProblem;
use crate::result::{DesignPoint, SearchResult};
use digamma_encoding::Codec;
use digamma_opt::Algorithm;

/// Runs `algorithm` against `problem` for `budget` design evaluations.
///
/// Each asked vector is decoded to a (repaired, always-valid) genome,
/// scored by the evaluation block, and told back; the returned result
/// mirrors [`crate::DiGamma::search`]'s bookkeeping so Fig. 5 compares
/// like with like.
pub fn run_algorithm(
    algorithm: Algorithm,
    problem: &CoOptProblem,
    budget: usize,
    seed: u64,
) -> SearchResult {
    let codec = Codec::new(problem.unique_layers(), problem.platform(), problem.num_levels());
    let mut opt = algorithm.build(codec.dimension(), seed);

    let mut best: Option<DesignPoint> = None;
    let mut history = Vec::with_capacity(budget);

    for _ in 0..budget {
        let x = opt.ask();
        let genome = codec.decode(&x);
        let eval = problem.evaluate(&genome);
        opt.tell(&x, eval.cost);
        let better = eval.feasible && best.as_ref().is_none_or(|b| eval.cost < b.cost);
        if better {
            best = Some(DesignPoint::from_evaluation(genome, &eval));
        }
        history.push(best.as_ref().map_or(f64::INFINITY, |b| b.cost));
    }

    SearchResult { best, history, samples: budget }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use digamma_costmodel::Platform;
    use digamma_workload::zoo;

    fn problem() -> CoOptProblem {
        CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency)
    }

    #[test]
    fn every_baseline_runs_through_the_framework() {
        let p = problem();
        for alg in Algorithm::ALL {
            let result = run_algorithm(alg, &p, 120, 11);
            assert_eq!(result.samples, 120, "{alg}");
            assert_eq!(result.history.len(), 120, "{alg}");
            if let Some(best) = &result.best {
                assert!(best.feasible, "{alg}");
                assert!(best.area_um2 <= p.platform().area_budget_um2, "{alg}");
            }
        }
    }

    #[test]
    fn results_are_deterministic_per_seed() {
        let p = problem();
        let a = run_algorithm(Algorithm::Cma, &p, 80, 3);
        let b = run_algorithm(Algorithm::Cma, &p, 80, 3);
        assert_eq!(a.best_cost(), b.best_cost());
    }

    #[test]
    fn cma_typically_beats_random_here() {
        // Not a hard guarantee sample-by-sample, but with equal budgets on
        // this small problem CMA should not lose badly; this guards
        // against wiring errors (e.g. telling the wrong values).
        let p = problem();
        let cma = run_algorithm(Algorithm::Cma, &p, 300, 13).best_cost().unwrap();
        let rnd = run_algorithm(Algorithm::Random, &p, 300, 13).best_cost().unwrap();
        assert!(cma < rnd * 3.0, "cma {cma} vs random {rnd}");
    }
}
