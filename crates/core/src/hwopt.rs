//! HW-opt baseline: grid search over hardware with a fixed mapping style.
//!
//! Models the paper's first baseline scheme (Sec. V-A): "the HW is
//! optimized by grid search approach over number of PEs and buffer
//! sizes", with the mapping fixed to a manual style (dla/shi/eye-like).
//! The grid walks power-of-two PE array shapes and L1 capacities; the L2
//! buffer takes whatever area remains under the budget (a larger L2 is
//! never harmful, so gridding it separately would only waste points).

use crate::problem::{CoOptProblem, Constraint};
use crate::result::{DesignPoint, SearchResult};
use crate::templates::{instantiate_all, MappingStyle};
use digamma_costmodel::HwConfig;
use digamma_encoding::Genome;

/// Outcome of a hardware grid search.
#[derive(Debug, Clone)]
pub struct GridSearchResult {
    /// The best feasible design, if any grid point fits the budget.
    pub best: Option<DesignPoint>,
    /// Grid points evaluated (each costs one design-point evaluation).
    pub points_evaluated: usize,
    /// Grid points that produced a feasible design.
    pub feasible_points: usize,
}

impl From<GridSearchResult> for SearchResult {
    fn from(g: GridSearchResult) -> SearchResult {
        SearchResult { best: g.best, history: Vec::new(), samples: g.points_evaluated }
    }
}

/// Runs the HW-opt grid search for one mapping style.
///
/// Grid axes: cluster count × PEs-per-cluster (powers of two up to the
/// platform PE cap) × per-PE L1 words (powers of two, 16..=4096). For
/// each point the style template is instantiated per unique layer and the
/// whole design is scored under a Fixed-HW constraint.
pub fn hw_grid_search(problem: &CoOptProblem, style: MappingStyle) -> GridSearchResult {
    let platform = problem.platform();
    let area = problem.evaluator().area_model();
    let budget = platform.area_budget_um2;

    let mut best: Option<DesignPoint> = None;
    let mut points = 0usize;
    let mut feasible = 0usize;

    let pow2 = |limit: u64| -> Vec<u64> {
        let mut v = vec![];
        let mut x = 1u64;
        while x <= limit {
            v.push(x);
            x *= 2;
        }
        v
    };
    let cluster_options = pow2(platform.max_pes);
    let l1_options: Vec<u64> = pow2(4096).into_iter().filter(|&w| w >= 16).collect();

    for &clusters in &cluster_options {
        for &pes_per_cluster in &cluster_options {
            let total_pes = clusters.saturating_mul(pes_per_cluster);
            if total_pes > platform.max_pes {
                continue;
            }
            for &l1_words in &l1_options {
                // Area of PEs + L1s; skip if already over budget.
                let probe = HwConfig {
                    fanouts: vec![clusters, pes_per_cluster],
                    l2_words: 0,
                    mid_words_per_unit: vec![],
                    l1_words_per_pe: l1_words,
                };
                let fixed_area = area.area_um2(&probe);
                if fixed_area >= budget {
                    continue;
                }
                // L2 absorbs the remaining budget (95% fill for slack).
                let l2_words = ((budget - fixed_area) * 0.95 / area.l2_um2_per_word) as u64;
                if l2_words < 64 {
                    continue;
                }
                let hw = HwConfig { l2_words, ..probe };

                let mappings = instantiate_all(style, problem.unique_layers(), &hw);
                let constrained = problem.clone().with_constraint(Constraint::FixedHw(hw.clone()));
                let Ok(eval) = constrained.evaluate_mappings(&hw.fanouts, &mappings) else {
                    continue;
                };
                points += 1;
                if eval.feasible {
                    feasible += 1;
                    if best.as_ref().is_none_or(|b| eval.cost < b.cost) {
                        let genome = Genome::from_mappings(&mappings);
                        best = Some(DesignPoint::from_evaluation(genome, &eval));
                    }
                }
            }
        }
    }

    GridSearchResult { best, points_evaluated: points, feasible_points: feasible }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use digamma_costmodel::Platform;
    use digamma_workload::zoo;

    #[test]
    fn grid_search_finds_feasible_edge_design() {
        let problem = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency);
        let result = hw_grid_search(&problem, MappingStyle::DlaLike);
        assert!(result.points_evaluated > 10, "grid too small: {}", result.points_evaluated);
        let best = result.best.expect("some grid point fits 0.2 mm²");
        assert!(best.feasible);
        assert!(best.area_um2 <= Platform::edge().area_budget_um2);
    }

    #[test]
    fn all_styles_complete_on_edge() {
        let problem = CoOptProblem::new(zoo::dlrm(), Platform::edge(), Objective::Latency);
        for style in MappingStyle::ALL {
            let result = hw_grid_search(&problem, style);
            assert!(result.best.is_some(), "{style} found nothing");
            assert!(result.feasible_points <= result.points_evaluated);
        }
    }

    #[test]
    fn grid_best_is_within_pe_cap() {
        let problem = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency);
        let best = hw_grid_search(&problem, MappingStyle::ShiLike).best.unwrap();
        assert!(best.hw.num_pes() <= Platform::edge().max_pes);
    }
}
