//! GAMMA (ICCAD 2020): the mapping-only GA baseline.
//!
//! GAMMA is DiGamma's ancestor — the same genetic machinery restricted to
//! the mapping space of a *given* hardware configuration. The paper's
//! Mapping-opt baseline runs GAMMA on three hand-picked HW presets
//! (Sec. V-A). Here it is implemented as DiGamma with hardware operators
//! disabled and a Fixed-HW constraint, which is exactly the historical
//! relationship between the two tools.

use crate::digamma_ga::{DiGamma, DiGammaConfig};
use crate::problem::{CoOptProblem, Constraint};
use crate::result::SearchResult;
use digamma_costmodel::HwConfig;

/// Hyper-parameters of the GAMMA mapper.
#[derive(Debug, Clone, PartialEq)]
pub struct GammaConfig {
    /// Individuals per generation.
    pub population_size: usize,
    /// Fraction of the population surviving unchanged.
    pub elite_fraction: f64,
    /// Worker threads for fitness evaluation (same contract as
    /// [`DiGammaConfig::threads`]: any value yields identical results).
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GammaConfig {
    fn default() -> GammaConfig {
        GammaConfig {
            population_size: 60,
            elite_fraction: 0.10,
            threads: crate::parallel::default_threads(),
            seed: 0,
        }
    }
}

/// The mapping-only GA searcher.
#[derive(Debug, Clone)]
pub struct Gamma {
    config: GammaConfig,
}

impl Gamma {
    /// Creates a mapper with the given hyper-parameters.
    pub fn new(config: GammaConfig) -> Gamma {
        Gamma { config }
    }

    /// The constrained problem and the underlying [`DiGamma`] searcher
    /// this mapper drives. This is the seam long-running services use:
    /// the returned pair exposes the full stepping / snapshot / restore
    /// machinery ([`DiGamma::init`], [`DiGamma::step`],
    /// [`DiGamma::restore`]) for mapping-only jobs too.
    pub fn searcher(&self, problem: &CoOptProblem, hw: &HwConfig) -> (CoOptProblem, DiGamma) {
        let constrained = problem.clone().with_constraint(Constraint::FixedHw(hw.clone()));
        let ga = DiGamma::new(DiGammaConfig {
            population_size: self.config.population_size,
            elite_fraction: self.config.elite_fraction,
            threads: self.config.threads,
            seed: self.config.seed,
            // Hardware is frozen: no Mutate-HW, no Grow/Aging, and the
            // level count matches the given PE array.
            mutate_hw_rate: 0.0,
            grow_aging_rate: 0.0,
            num_levels: hw.fanouts.len(),
            ..DiGammaConfig::default()
        });
        (constrained, ga)
    }

    /// Searches for the best mapping of `problem`'s model on the fixed
    /// hardware `hw`, within `budget` evaluations.
    ///
    /// The returned designs all carry `hw` as their hardware; mappings
    /// that do not fit its buffers are penalized as infeasible.
    pub fn search(&self, problem: &CoOptProblem, hw: &HwConfig, budget: usize) -> SearchResult {
        let (constrained, ga) = self.searcher(problem, hw);
        ga.search(&constrained, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use digamma_costmodel::Platform;
    use digamma_workload::zoo;

    fn fixed_hw() -> HwConfig {
        HwConfig {
            fanouts: vec![8, 16],
            l2_words: 32 * 1024,
            mid_words_per_unit: vec![],
            l1_words_per_pe: 128,
        }
    }

    #[test]
    fn gamma_finds_fitting_mappings() {
        let problem = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency);
        let result = Gamma::new(GammaConfig { population_size: 16, seed: 3, ..Default::default() })
            .search(&problem, &fixed_hw(), 300);
        let best = result.best.expect("a mapping fitting the fixed HW");
        assert!(best.feasible);
        assert_eq!(best.hw, fixed_hw());
        assert_eq!(best.genome.fanouts, vec![8, 16]);
    }

    #[test]
    fn gamma_never_mutates_hardware() {
        let problem = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency);
        let hw = fixed_hw();
        let result = Gamma::new(GammaConfig { population_size: 12, seed: 5, ..Default::default() })
            .search(&problem, &hw, 200);
        if let Some(best) = result.best {
            assert_eq!(best.hw.fanouts, hw.fanouts);
            assert_eq!(best.hw.l2_words, hw.l2_words);
        }
    }

    #[test]
    fn bigger_hw_yields_no_worse_mappings() {
        // Sanity: doubling every resource cannot hurt the best latency.
        let problem = CoOptProblem::new(zoo::ncf(), Platform::cloud(), Objective::Latency);
        let small = fixed_hw();
        let big = HwConfig {
            fanouts: vec![16, 16],
            l2_words: small.l2_words * 8,
            mid_words_per_unit: vec![],
            l1_words_per_pe: small.l1_words_per_pe * 8,
        };
        let cfg = GammaConfig { population_size: 16, seed: 7, ..Default::default() };
        let a = Gamma::new(cfg.clone()).search(&problem, &small, 400);
        let b = Gamma::new(cfg).search(&problem, &big, 400);
        let (sa, sb) = (a.best.unwrap(), b.best.unwrap());
        assert!(
            sb.latency_cycles <= sa.latency_cycles * 1.5,
            "bigger HW much worse: {} vs {}",
            sb.latency_cycles,
            sa.latency_cycles
        );
    }
}
