//! Search results and convergence records.

use crate::problem::DesignEvaluation;
use digamma_costmodel::HwConfig;
use digamma_encoding::Genome;

/// A fully evaluated design point kept as a search outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The winning genome.
    pub genome: Genome,
    /// Scalar cost under the problem's objective.
    pub cost: f64,
    /// Whether all constraints hold.
    pub feasible: bool,
    /// Total model latency in cycles.
    pub latency_cycles: f64,
    /// Total model energy in pJ.
    pub energy_pj: f64,
    /// Hardware area in µm².
    pub area_um2: f64,
    /// PE-only area in µm².
    pub pe_area_um2: f64,
    /// The hardware configuration.
    pub hw: HwConfig,
}

impl DesignPoint {
    /// Builds a design point from a genome and its evaluation.
    pub fn from_evaluation(genome: Genome, eval: &DesignEvaluation) -> DesignPoint {
        DesignPoint {
            genome,
            cost: eval.cost,
            feasible: eval.feasible,
            latency_cycles: eval.latency_cycles,
            energy_pj: eval.energy_pj,
            area_um2: eval.area_um2,
            pe_area_um2: eval.pe_area_um2,
            hw: eval.hw.clone(),
        }
    }

    /// Latency·area product (Fig. 5's secondary metric).
    pub fn latency_area_product(&self) -> f64 {
        self.latency_cycles * self.area_um2
    }

    /// PE : buffer area split in percent (Fig. 7's last column).
    pub fn area_ratio_percent(&self) -> (f64, f64) {
        let pe = 100.0 * self.pe_area_um2 / self.area_um2;
        (pe, 100.0 - pe)
    }
}

/// Outcome of one search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Best *feasible* design found, if any (the paper reports `N/A`
    /// when an algorithm finds no valid solution within budget).
    pub best: Option<DesignPoint>,
    /// Best-so-far cost after each evaluated sample (infeasible samples
    /// record `f64::INFINITY` until the first feasible design appears).
    pub history: Vec<f64>,
    /// Number of design points evaluated.
    pub samples: usize,
}

impl SearchResult {
    /// Convenience: the best feasible cost, or `None`.
    pub fn best_cost(&self) -> Option<f64> {
        self.best.as_ref().map(|b| b.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_point(cost: f64) -> DesignPoint {
        DesignPoint {
            genome: Genome { fanouts: vec![2, 2], layers: vec![] },
            cost,
            feasible: true,
            latency_cycles: cost,
            energy_pj: 1.0,
            area_um2: 100.0,
            pe_area_um2: 60.0,
            hw: HwConfig {
                fanouts: vec![2, 2],
                l2_words: 10,
                mid_words_per_unit: vec![],
                l1_words_per_pe: 5,
            },
        }
    }

    #[test]
    fn latency_area_product_multiplies() {
        let p = dummy_point(50.0);
        assert_eq!(p.latency_area_product(), 50.0 * 100.0);
    }

    #[test]
    fn area_ratio_sums_to_hundred() {
        let p = dummy_point(1.0);
        let (pe, buf) = p.area_ratio_percent();
        assert!((pe - 60.0).abs() < 1e-9);
        assert!((pe + buf - 100.0).abs() < 1e-9);
    }

    #[test]
    fn best_cost_passthrough() {
        let r = SearchResult { best: Some(dummy_point(3.0)), history: vec![], samples: 1 };
        assert_eq!(r.best_cost(), Some(3.0));
        let none = SearchResult { best: None, history: vec![], samples: 0 };
        assert_eq!(none.best_cost(), None);
    }
}
