//! Fixed mapping templates: NVDLA-like, ShiDianNao-like, Eyeriss-like.
//!
//! The HW-opt baseline (Sec. V-A) pairs a hardware grid search with a
//! *manually designed* mapping style. Each style here is a parametric
//! generator: given a layer and a hardware configuration it picks the
//! style's characteristic parallelism and loop order, then greedily grows
//! tile sizes (multiplicatively, in a style-specific priority) until the
//! hardware's L1/L2 buffers are full.
//!
//! | Style | Parallelism | Stationarity |
//! |-------|-------------|--------------|
//! | [`MappingStyle::DlaLike`] | K across clusters, C across PEs | weight-stationary |
//! | [`MappingStyle::ShiLike`] | Y across clusters, X across PEs | output-stationary |
//! | [`MappingStyle::EyeLike`] | Y across clusters, R across PEs | row-stationary |

use digamma_costmodel::{HwConfig, LevelSpec, Mapping};
use digamma_workload::{tensor_footprint, Dim, DimVec, Layer, Tensor, NUM_DIMS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three manual mapping styles of the HW-opt baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingStyle {
    /// NVDLA-like: K-C parallelism, weight-stationary orders.
    DlaLike,
    /// ShiDianNao-like: Y-X parallelism, output-stationary orders.
    ShiLike,
    /// Eyeriss-like: Y-R parallelism, row-stationary orders.
    EyeLike,
}

impl MappingStyle {
    /// All styles, in the paper's column order.
    pub const ALL: [MappingStyle; 3] =
        [MappingStyle::DlaLike, MappingStyle::ShiLike, MappingStyle::EyeLike];

    /// `(cluster-level, PE-level)` parallel dimensions.
    pub fn parallel_dims(self) -> (Dim, Dim) {
        match self {
            MappingStyle::DlaLike => (Dim::K, Dim::C),
            MappingStyle::ShiLike => (Dim::Y, Dim::X),
            MappingStyle::EyeLike => (Dim::Y, Dim::R),
        }
    }

    /// Loop order used at both levels (outermost first).
    fn order(self) -> [Dim; NUM_DIMS] {
        match self {
            // Weight-relevant loops outermost: weights stream once.
            MappingStyle::DlaLike => [Dim::K, Dim::C, Dim::R, Dim::S, Dim::Y, Dim::X],
            // Output-relevant loops outermost: partial sums never leave.
            MappingStyle::ShiLike => [Dim::Y, Dim::X, Dim::K, Dim::C, Dim::R, Dim::S],
            // Row-stationary flavour: spatial rows and filter rows outer.
            MappingStyle::EyeLike => [Dim::Y, Dim::R, Dim::K, Dim::C, Dim::X, Dim::S],
        }
    }

    /// Tile-growth priority when filling buffers.
    fn growth_priority(self) -> [Dim; NUM_DIMS] {
        match self {
            MappingStyle::DlaLike => [Dim::C, Dim::K, Dim::R, Dim::S, Dim::X, Dim::Y],
            MappingStyle::ShiLike => [Dim::X, Dim::Y, Dim::K, Dim::C, Dim::R, Dim::S],
            MappingStyle::EyeLike => [Dim::R, Dim::S, Dim::Y, Dim::C, Dim::K, Dim::X],
        }
    }
}

impl fmt::Display for MappingStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MappingStyle::DlaLike => "dla-like",
            MappingStyle::ShiLike => "shi-like",
            MappingStyle::EyeLike => "eye-like",
        };
        f.write_str(s)
    }
}

/// Sum of the three tensor footprints for a tile, in words.
fn tile_words(layer: &Layer, tile: &DimVec<u64>) -> u64 {
    Tensor::ALL.iter().map(|&t| tensor_footprint(layer.kind(), t, tile, layer.stride())).sum()
}

/// Grows `tile` multiplicatively along `priority` while `fits` holds and
/// extents stay within `bound`.
fn grow_tile<F: Fn(&DimVec<u64>) -> bool>(
    tile: &mut DimVec<u64>,
    bound: &DimVec<u64>,
    priority: &[Dim; NUM_DIMS],
    fits: F,
) {
    loop {
        let mut grew = false;
        for &d in priority {
            let current = tile[d];
            let trial = (current * 2).min(bound[d]);
            if trial == current {
                continue;
            }
            tile[d] = trial;
            if fits(tile) {
                grew = true;
            } else {
                tile[d] = current;
            }
        }
        if !grew {
            break;
        }
    }
}

/// Instantiates `style` for one layer on the given hardware.
///
/// The result is always structurally valid; whether it *fits* `hw`'s
/// buffers is checked by the caller (undersized hardware simply yields
/// unit tiles that fit trivially, or an infeasible evaluation).
///
/// # Panics
///
/// Panics if `hw` is not a 2-level configuration.
pub fn instantiate(style: MappingStyle, layer: &Layer, hw: &HwConfig) -> Mapping {
    assert_eq!(hw.fanouts.len(), 2, "templates target 2-level accelerators");
    let (p2, p1) = style.parallel_dims();
    let dims = *layer.dims();
    let order = style.order();
    let priority = style.growth_priority();

    // Per-cluster share of the layer (spatial split at the outer level).
    let mut cluster_bound = dims;
    cluster_bound[p2] = dims[p2].div_ceil(hw.fanouts[0]).max(1);
    // Per-PE share within the cluster.
    let mut pe_bound = cluster_bound;
    pe_bound[p1] = cluster_bound[p1].div_ceil(hw.fanouts[1]).max(1);

    // L1 tile: grow within the per-PE buffer.
    let mut t1 = DimVec::splat(1u64);
    grow_tile(&mut t1, &pe_bound, &priority, |t| tile_words(layer, t) <= hw.l1_words_per_pe);

    // L2 tile: starts at the L1 tile, grows while the π-stacked footprint
    // fits the global buffer.
    let mut t2 = t1;
    let stacked_words = |t: &DimVec<u64>| {
        let mut stacked = *t;
        stacked[p2] = stacked[p2].saturating_mul(hw.fanouts[0]).min(dims[p2]);
        tile_words(layer, &stacked)
    };
    grow_tile(&mut t2, &cluster_bound, &priority, |t| stacked_words(t) <= hw.l2_words);
    // Nesting: the L1 tile must fit inside the L2 tile.
    let t1 = t1.min(&t2);

    Mapping::new(vec![
        LevelSpec { fanout: hw.fanouts[0], spatial_dim: p2, order, tile: t2 },
        LevelSpec { fanout: hw.fanouts[1], spatial_dim: p1, order, tile: t1 },
    ])
}

/// Instantiates `style` for every unique layer of a model.
pub fn instantiate_all(
    style: MappingStyle,
    unique: &[digamma_workload::UniqueLayer],
    hw: &HwConfig,
) -> Vec<Mapping> {
    unique.iter().map(|u| instantiate(style, &u.layer, hw)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_costmodel::{Evaluator, Platform};
    use digamma_workload::zoo;

    fn hw() -> HwConfig {
        HwConfig {
            fanouts: vec![8, 16],
            l2_words: 16 * 1024,
            mid_words_per_unit: vec![],
            l1_words_per_pe: 64,
        }
    }

    #[test]
    fn templates_validate_on_every_layer() {
        let cfg = hw();
        for style in MappingStyle::ALL {
            for model in zoo::all_models() {
                for layer in model.layers() {
                    let m = instantiate(style, layer, &cfg);
                    m.validate(layer).unwrap_or_else(|e| {
                        panic!("{style} on {}/{}: {e}", model.name(), layer.name())
                    });
                }
            }
        }
    }

    #[test]
    fn templates_respect_buffer_capacities() {
        let cfg = hw();
        let eval = Evaluator::new(Platform::edge());
        for style in MappingStyle::ALL {
            for layer in zoo::resnet18().layers() {
                let m = instantiate(style, layer, &cfg);
                let r = eval.evaluate(layer, &m).unwrap();
                assert!(
                    r.buffers.l1_words_per_pe <= cfg.l1_words_per_pe,
                    "{style} {} L1 {} > {}",
                    layer.name(),
                    r.buffers.l1_words_per_pe,
                    cfg.l1_words_per_pe
                );
                assert!(
                    r.buffers.l2_words <= cfg.l2_words,
                    "{style} {} L2 {} > {}",
                    layer.name(),
                    r.buffers.l2_words,
                    cfg.l2_words
                );
            }
        }
    }

    #[test]
    fn styles_use_characteristic_parallelism() {
        let layer = &zoo::resnet18().layers()[5].clone();
        let cfg = hw();
        let dla = instantiate(MappingStyle::DlaLike, layer, &cfg);
        assert_eq!(dla.levels()[0].spatial_dim, Dim::K);
        assert_eq!(dla.levels()[1].spatial_dim, Dim::C);
        let shi = instantiate(MappingStyle::ShiLike, layer, &cfg);
        assert_eq!(shi.levels()[0].spatial_dim, Dim::Y);
        assert_eq!(shi.levels()[1].spatial_dim, Dim::X);
        let eye = instantiate(MappingStyle::EyeLike, layer, &cfg);
        assert_eq!(eye.levels()[1].spatial_dim, Dim::R);
    }

    #[test]
    fn bigger_buffers_grow_tiles() {
        let layer = &zoo::resnet50().layers()[10].clone();
        let small = hw();
        let mut big = hw();
        big.l1_words_per_pe *= 16;
        big.l2_words *= 16;
        let m_small = instantiate(MappingStyle::DlaLike, layer, &small);
        let m_big = instantiate(MappingStyle::DlaLike, layer, &big);
        let words = |m: &Mapping| tile_words(layer, &m.levels()[1].tile);
        assert!(words(&m_big) > words(&m_small));
    }

    #[test]
    fn unit_buffers_still_yield_valid_mappings() {
        let layer = &zoo::ncf().layers()[0].clone();
        let tiny = HwConfig {
            fanouts: vec![2, 2],
            l2_words: 1,
            mid_words_per_unit: vec![],
            l1_words_per_pe: 1,
        };
        for style in MappingStyle::ALL {
            let m = instantiate(style, layer, &tiny);
            m.validate(layer).unwrap();
        }
    }
}
