//! The DiGamma domain-aware genetic algorithm (paper Sec. IV-C).
//!
//! Instead of perturbing the raw encoding arbitrarily (the stdGA
//! baseline), DiGamma steps through the design space with operators that
//! respect its structure (Fig. 4):
//!
//! | Operator    | Perturbs |
//! |-------------|----------|
//! | Crossover   | tiling, parallelism (and the derived buffers) |
//! | Reorder     | loop order |
//! | Grow/Aging  | clustering (level count), tiling, buffers |
//! | Mutate-Map  | tiling, parallelism, buffers |
//! | Mutate-HW   | PE array size/shape, buffers |
//!
//! Buffer sizes are never genes: after every perturbation the buffer
//! allocation strategy re-derives the exact minimum capacities from the
//! decoded mapping, keeping buffer utilization at 100%.

use crate::problem::{CoOptProblem, Constraint, DesignEvaluation};
use crate::result::{DesignPoint, SearchResult};
use digamma_encoding::{repair, Genome, LevelGenes};
use digamma_obs::{CostPoint, GenStats, OpCounters, OpKind};
use digamma_workload::{Dim, UniqueLayer, NUM_DIMS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the DiGamma GA.
///
/// Defaults follow the magnitudes the paper's Bayesian-optimization
/// tuning lands on (population ≈ 60, strong elitism, mapping mutations
/// more frequent than hardware mutations); [`crate::tuning`] can re-tune
/// them for a specific problem.
#[derive(Debug, Clone, PartialEq)]
pub struct DiGammaConfig {
    /// Individuals per generation.
    pub population_size: usize,
    /// Fraction of the population surviving unchanged (elitism).
    pub elite_fraction: f64,
    /// Probability a child is produced by two-parent crossover.
    pub crossover_rate: f64,
    /// Probability of a loop-order swap (Reorder operator).
    pub reorder_rate: f64,
    /// Probability of a tiling/parallelism mutation (Mutate-Map).
    pub mutate_map_rate: f64,
    /// Probability of a PE-array mutation (Mutate-HW). Zero disables
    /// hardware search (the GAMMA baseline).
    pub mutate_hw_rate: f64,
    /// Probability of inserting/removing a cluster level (Grow/Aging).
    /// Zero pins the level count.
    pub grow_aging_rate: f64,
    /// Cluster levels of the initial population.
    pub num_levels: usize,
    /// Seed the initial population with template mappings (the manual
    /// styles on the preset hardware flavours) before random fill.
    /// Domain-aware initialization in the same spirit as the operators;
    /// the E5 ablation quantifies its contribution.
    pub template_seeding: bool,
    /// Worker threads for fitness evaluation. Defaults to the machine's
    /// available parallelism; `1` evaluates inline on the caller's
    /// thread. Results are identical for any value (the parallel map
    /// preserves order and evaluation is deterministic), so this only
    /// trades wall-clock for cores.
    pub threads: usize,
    /// Compute per-generation search analytics ([`GenStats`], operator
    /// attribution, cost-vs-evaluations points). Analytics are derived
    /// entirely from already-evaluated data and consume zero RNG draws,
    /// so the search trajectory is bit-identical with this on or off
    /// (the determinism suite and the perf harness's `analytics`
    /// section both enforce it).
    pub analytics: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DiGammaConfig {
    fn default() -> DiGammaConfig {
        DiGammaConfig {
            population_size: 60,
            elite_fraction: 0.10,
            crossover_rate: 0.60,
            // Per-layer rates: with ~L unique layers a child receives
            // ~0.1·L mapping perturbations — enough to move, few enough
            // that a good parent's offspring stay coherent.
            reorder_rate: 0.10,
            mutate_map_rate: 0.10,
            mutate_hw_rate: 0.30,
            grow_aging_rate: 0.05,
            num_levels: 2,
            template_seeding: true,
            threads: crate::parallel::default_threads(),
            analytics: true,
            seed: 0,
        }
    }
}

/// Mid-search GA state: everything [`DiGamma::step`] reads and writes.
///
/// A `SearchState` is only ever observed at a *generation boundary*, and
/// at a boundary it is a pure function of `(config, problem, generation)`
/// — the per-generation RNG is re-derived from the seed and the
/// generation counter, never carried across generations. That invariant
/// is what makes text checkpoints possible: a snapshot needs only the
/// population genomes, the best-so-far genome, the history, and two
/// counters, and a restored search replays the exact byte-for-byte
/// trajectory of an uninterrupted one (the `digamma-server` crate builds
/// its versioned snapshot format and determinism tests on this).
#[derive(Debug, Clone)]
pub struct SearchState {
    population: Vec<Genome>,
    evals: Vec<DesignEvaluation>,
    best: Option<(Genome, DesignEvaluation)>,
    history: Vec<f64>,
    samples: usize,
    generation: u64,
    /// Cumulative per-operator attribution (analytics only; zeros when
    /// `DiGammaConfig::analytics` is off).
    ops: OpCounters,
    /// One `(generation, cumulative evals, best cost)` sample per
    /// generation boundary, generation 0 included (analytics only).
    cost_points: Vec<CostPoint>,
    /// The stats of the most recent generation (analytics only).
    last_stats: Option<GenStats>,
    /// Generation in which the incumbent last improved (maintained
    /// unconditionally — a single store per improvement).
    last_improved_gen: u64,
    /// Reused per-generation buffers for the analytics path. Purely
    /// transient (never snapshotted, never observed): kept only so the
    /// measured per-generation analytics budget (≤1% of search wall
    /// time, see `perfjson`) is not spent in the allocator.
    scratch: StepScratch,
}

/// Transient buffers reused across [`DiGamma::step`] calls (see
/// [`SearchState::scratch`]).
#[derive(Debug, Clone, Default)]
struct StepScratch {
    /// Per-child `(operator, reference cost)` provenance tags.
    tags: Vec<(OpKind, f64)>,
    /// Feature rows reused by [`genotypic_diversity`] refreshes.
    feats: Vec<GenomeFeatures>,
    /// Population indices sorted ascending by cost, precomputed by
    /// `push_analytics` for the *next* step. The stats pass needs the
    /// ranking for its median/worst fields, and the next `step` call
    /// needs the identical ranking for selection — computing it once
    /// makes the analytics sort free instead of a second O(n log n)
    /// pass. `None` whenever analytics are off or no step has run; the
    /// next step then sorts for itself, producing the same permutation.
    next_order: Option<Vec<usize>>,
}

impl SearchState {
    /// The current population, in the order it was produced.
    pub fn population(&self) -> &[Genome] {
        &self.population
    }

    /// The best feasible genome found so far, if any.
    pub fn best_genome(&self) -> Option<&Genome> {
        self.best.as_ref().map(|(g, _)| g)
    }

    /// The best feasible cost found so far, if any.
    pub fn best_cost(&self) -> Option<f64> {
        self.best.as_ref().map(|(_, e)| e.cost)
    }

    /// Best-so-far cost after each evaluated sample.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Design points evaluated so far.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Completed generations (0 = only the initial population).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Cumulative operator attribution. All-zero unless the search runs
    /// with [`DiGammaConfig::analytics`] enabled.
    pub fn op_counters(&self) -> &OpCounters {
        &self.ops
    }

    /// Best-so-far cost against cumulative evaluations, one point per
    /// generation boundary (generation 0 included). Empty unless the
    /// search runs with analytics enabled.
    pub fn cost_points(&self) -> &[CostPoint] {
        &self.cost_points
    }

    /// The most recent generation's [`GenStats`], if analytics are on
    /// and at least one generation has completed.
    pub fn last_gen_stats(&self) -> Option<GenStats> {
        self.last_stats
    }

    /// The generation in which the incumbent last improved.
    pub fn last_improved_generation(&self) -> u64 {
        self.last_improved_gen
    }

    /// Rehydrates analytics state from a checkpoint (the server calls
    /// this after [`DiGamma::restore`] so cumulative operator
    /// attribution survives a kill).
    pub fn restore_analytics(
        &mut self,
        ops: OpCounters,
        cost_points: Vec<CostPoint>,
        last_improved_gen: u64,
    ) {
        self.ops = ops;
        self.cost_points = cost_points;
        self.last_improved_gen = last_improved_gen;
    }

    /// Finishes the search, converting the state into its result.
    pub fn into_result(self) -> SearchResult {
        SearchResult {
            best: self.best.map(|(g, e)| DesignPoint::from_evaluation(g, &e)),
            history: self.history,
            samples: self.samples,
        }
    }

    fn record(&mut self, genomes: &[Genome], evals: &[DesignEvaluation]) {
        for (g, e) in genomes.iter().zip(evals) {
            self.samples += 1;
            let better = e.feasible && self.best.as_ref().is_none_or(|(_, b)| e.cost < b.cost);
            if better {
                self.best = Some((g.clone(), e.clone()));
                self.last_improved_gen = self.generation;
            }
            self.history.push(self.best.as_ref().map_or(f64::INFINITY, |(_, b)| b.cost));
        }
    }

    /// Computes this generation's [`GenStats`] from the freshly
    /// evaluated children and appends the cost-vs-evaluations point.
    /// Pure bookkeeping over already-evaluated data — no RNG, no extra
    /// evaluations.
    /// `cost_sum` and `feasible` are accumulated by the caller's
    /// attribution pass (same index order as a local loop would use, so
    /// the mean is bit-identical) to avoid a second walk over `evals`.
    fn push_analytics(
        &mut self,
        children: &[Genome],
        evals: &[DesignEvaluation],
        cost_sum: f64,
        feasible: usize,
    ) {
        let best = self.best.as_ref().map_or(f64::INFINITY, |(_, e)| e.cost);
        self.cost_points.push(CostPoint {
            generation: self.generation,
            evals: self.samples as u64,
            best,
        });
        if self.generation == 0 {
            // Generation 0 is the initial population: no operator ran,
            // and observers only fire at step boundaries — the cost
            // point above is all the record that is needed.
            return;
        }
        // Rank the children exactly the way the next `step` call will
        // (same stable sort, same comparator — ties must permute
        // identically because the ranking feeds tournament selection).
        // The ranking is handed to that step through the scratch, so
        // this sort replaces one rather than adding one — and the
        // buffer it fills is the one the previous step just drained.
        let mut order = self.scratch.next_order.take().unwrap_or_default();
        order.clear();
        order.extend(0..evals.len());
        order.sort_by(|&a, &b| evals[a].cost.total_cmp(&evals[b].cost));

        let n = evals.len().max(1);
        // Population diversity moves on a generations timescale, so it
        // is refreshed on a deterministic stride (and whenever there is
        // no previous value to carry, e.g. the first boundary after a
        // restore) instead of paying the genome walk every generation.
        let diversity = match self.last_stats {
            Some(prev) if !self.generation.is_multiple_of(DIVERSITY_STRIDE) => prev.diversity,
            _ => genotypic_diversity(children, &mut self.scratch.feats),
        };
        self.last_stats = Some(GenStats {
            generation: self.generation,
            evals: self.samples as u64,
            best,
            median: order.get(order.len() / 2).map_or(f64::INFINITY, |&i| evals[i].cost),
            mean: cost_sum / n as f64,
            worst: order.last().map_or(f64::INFINITY, |&i| evals[i].cost),
            feasible_frac: feasible as f64 / n as f64,
            diversity,
            stale_gens: self.generation.saturating_sub(self.last_improved_gen),
        });
        self.scratch.next_order = Some(order);
    }
}

/// Mean normalized gene distance over a deterministic sample: up to
/// [`GENOME_SAMPLE`] genomes (evenly strided over the population) and,
/// within each genome, up to [`LAYER_SAMPLE`] unique layers (evenly
/// strided over the network). Zero RNG draws by construction.
///
/// The distance runs on per-genome feature vectors extracted once per
/// sampled genome, with magnitude genes pre-converted through
/// [`approx_log2`] — the pairwise loop is subtractions and compares
/// only. Analytics run inside every generation of every job under a
/// measured wall-time budget of ≤1% (`perfjson`'s `analytics` section),
/// which rules out per-pair transcendentals.
fn genotypic_diversity(population: &[Genome], feats: &mut Vec<GenomeFeatures>) -> f64 {
    let n = population.len();
    if n < 2 {
        return 0.0;
    }
    let k = n.min(GENOME_SAMPLE);
    // The buffer lives in the step scratch and is sized exactly once
    // per search; extraction overwrites every row it later reads, so
    // refreshes never pay to re-zero it.
    if feats.len() < k {
        feats.resize(k, GenomeFeatures::EMPTY);
    }
    for (i, feat) in feats.iter_mut().enumerate().take(k) {
        feat.extract_from(&population[i * n / k]);
    }
    let mut sum = 0.0;
    let mut pairs = 0u32;
    for a in 0..k {
        for b in a + 1..k {
            sum += feats[a].distance(&feats[b]);
            pairs += 1;
        }
    }
    sum / f64::from(pairs)
}

/// Generations between diversity refreshes. In between, the previous
/// value is carried forward — diversity drifts on a generations
/// timescale, and the stride is what keeps the analytics path inside
/// its overhead budget on microsecond-cheap cost models.
const DIVERSITY_STRIDE: u64 = 4;

/// Genomes sampled by [`genotypic_diversity`] — at most 6 pairs.
const GENOME_SAMPLE: usize = 4;

/// Unique layers sampled per genome by [`genotypic_diversity`].
const LAYER_SAMPLE: usize = 4;

/// Approximate `log2(x.max(1))` read straight off the f64 bit pattern
/// (exponent plus a linear-in-mantissa correction; max error ≈ 0.09 of
/// a doubling). Magnitude genes only need "how many doublings apart",
/// so the approximation is invisible in a `[0, 1]` diversity score
/// while costing a handful of integer ops instead of a transcendental.
fn approx_log2(x: u64) -> f64 {
    const MANTISSA_SCALE: f64 = 1.0 / (1u64 << 52) as f64;
    (x.max(1) as f64).to_bits() as f64 * MANTISSA_SCALE - 1023.0
}

/// Saturating magnitude distance between two [`approx_log2`] values:
/// the fraction of a 2^20× ratio, clamped into `[0, 1]`.
fn log2_distance(a: f64, b: f64) -> f64 {
    ((a - b).abs() / 20.0).min(1.0)
}

/// Per cluster-level distance features (see [`GenomeFeatures`]).
#[derive(Debug, Clone, Copy)]
struct LevelFeatures {
    spatial: Dim,
    order: [Dim; NUM_DIMS],
    tile_log2: [f64; NUM_DIMS],
}

impl LevelFeatures {
    const EMPTY: LevelFeatures =
        LevelFeatures { spatial: Dim::K, order: Dim::ALL, tile_log2: [0.0; NUM_DIMS] };
}

/// Distance features for one sampled genome: one flat
/// [`LevelFeatures`] row per sampled layer × level, magnitude genes
/// already in log2 space. Rows past `layers * num_levels` are stale
/// between refreshes; [`GenomeFeatures::distance`] never reads them.
#[derive(Debug, Clone, Copy)]
struct GenomeFeatures {
    num_levels: usize,
    layers: usize,
    fanout_log2: [f64; digamma_costmodel::MAX_LEVELS],
    levels: [LevelFeatures; LAYER_SAMPLE * digamma_costmodel::MAX_LEVELS],
}

impl GenomeFeatures {
    const EMPTY: GenomeFeatures = GenomeFeatures {
        num_levels: 0,
        layers: 0,
        fanout_log2: [0.0; digamma_costmodel::MAX_LEVELS],
        levels: [LevelFeatures::EMPTY; LAYER_SAMPLE * digamma_costmodel::MAX_LEVELS],
    };

    /// Overwrites `self` with `g`'s features. Writes the `num_levels`
    /// and `layers` headers plus exactly the rows `distance` will read
    /// for them — whatever a previous genome left behind is dead data.
    fn extract_from(&mut self, g: &Genome) {
        let num_levels = g.num_levels().min(digamma_costmodel::MAX_LEVELS);
        self.num_levels = num_levels;
        for (slot, &f) in self.fanout_log2.iter_mut().zip(&g.fanouts) {
            *slot = approx_log2(f);
        }
        // The layer stride mirrors the genome stride in
        // `genotypic_diversity`: both genomes of a pair sample the same
        // layer indices, so rows always compare like with like.
        self.layers = g.layers.len().min(LAYER_SAMPLE);
        for li in 0..self.layers {
            let lg = &g.layers[li * g.layers.len() / self.layers.max(1)];
            for lvl in 0..num_levels {
                let genes = lg.levels.get(lvl).copied().unwrap_or_else(LevelGenes::unit);
                let feat = &mut self.levels[li * num_levels + lvl];
                feat.spatial = genes.spatial_dim;
                feat.order = genes.order;
                for (slot, &d) in feat.tile_log2.iter_mut().zip(Dim::ALL.iter()) {
                    *slot = approx_log2(genes.tile[d]);
                }
            }
        }
    }

    /// Normalized gene distance in `[0, 1]`: the mean over per-gene
    /// terms — level-count mismatch and fan-out magnitudes for the
    /// hardware genes; spatial-dim inequality, loop-order Hamming
    /// distance, and tile magnitudes per sampled layer and common
    /// cluster level for the mapping genes.
    fn distance(&self, other: &GenomeFeatures) -> f64 {
        let common_levels = self.num_levels.min(other.num_levels);
        let mut sum = (self.num_levels.abs_diff(other.num_levels) as f64
            / digamma_costmodel::MAX_LEVELS.max(1) as f64)
            .min(1.0);
        let mut terms = 1u32;
        for lvl in 0..common_levels {
            sum += log2_distance(self.fanout_log2[lvl], other.fanout_log2[lvl]);
            terms += 1;
        }
        for li in 0..self.layers.min(other.layers) {
            let a = &self.levels[li * self.num_levels..];
            let b = &other.levels[li * other.num_levels..];
            for (fa, fb) in a.iter().zip(b).take(common_levels) {
                sum += f64::from(u8::from(fa.spatial != fb.spatial));
                let mismatched = fa.order.iter().zip(&fb.order).filter(|(x, y)| x != y).count();
                sum += mismatched as f64 / NUM_DIMS as f64;
                let tile_dist: f64 = fa
                    .tile_log2
                    .iter()
                    .zip(&fb.tile_log2)
                    .map(|(&x, &y)| log2_distance(x, y))
                    .sum::<f64>()
                    / NUM_DIMS as f64;
                sum += tile_dist;
                terms += 3;
            }
        }
        sum / f64::from(terms.max(1))
    }
}

/// What a [`StepObserver`] tells the stepping loop after a generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepAction {
    /// Keep stepping.
    Continue,
    /// Stop at this generation boundary (cooperative cancellation).
    Stop,
}

/// Why [`DiGamma::run_observed`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The sample budget ran out (the search is finished).
    BudgetExhausted,
    /// The observer asked to stop early; the state sits at a generation
    /// boundary and may be snapshotted and resumed later.
    ObserverStopped,
}

/// A per-generation hook on the stepping loop.
///
/// Long-running services hang progress streaming, checkpoint cadence,
/// and cooperative cancellation off this seam: the observer runs at
/// every generation boundary — exactly the points where a
/// [`SearchState`] may be snapshotted — and its return value decides
/// whether the loop keeps going. Observers see the live state, so they
/// can report best-so-far cost or capture a snapshot without any extra
/// bookkeeping inside the GA itself.
pub trait StepObserver {
    /// Called after each completed generation; return [`StepAction::Stop`]
    /// to end the search at this boundary.
    fn on_generation(&mut self, state: &SearchState, budget: usize) -> StepAction;
}

/// The trivial observer: never stops, observes nothing.
impl StepObserver for () {
    fn on_generation(&mut self, _state: &SearchState, _budget: usize) -> StepAction {
        StepAction::Continue
    }
}

/// The domain-aware GA searcher.
#[derive(Debug, Clone)]
pub struct DiGamma {
    config: DiGammaConfig,
}

impl DiGamma {
    /// Creates a searcher with the given hyper-parameters.
    pub fn new(config: DiGammaConfig) -> DiGamma {
        assert!(config.population_size >= 4, "population too small");
        assert!((0.0..=1.0).contains(&config.elite_fraction), "elite fraction out of range");
        DiGamma { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DiGammaConfig {
        &self.config
    }

    /// The RNG driving generation `g` — a pure function of the seed and
    /// the generation counter, so checkpoints need not serialize RNG
    /// internals: "position in the stream" restores by reseeding.
    fn generation_rng(&self, generation: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.config.seed ^ generation.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Runs the search for at most `budget` design-point evaluations.
    pub fn search(&self, problem: &CoOptProblem, budget: usize) -> SearchResult {
        let mut state = self.init(problem, budget);
        while self.step(problem, &mut state, budget) {}
        state.into_result()
    }

    /// Drives `state` with [`DiGamma::step`] until the budget runs out or
    /// the observer asks to stop, invoking the observer at every
    /// generation boundary.
    ///
    /// This is the loop long-running services use: the observer streams
    /// progress, writes checkpoints, and checks a cancellation flag, and
    /// an [`StopCause::ObserverStopped`] return leaves the state at a
    /// clean boundary for snapshotting.
    pub fn run_observed(
        &self,
        problem: &CoOptProblem,
        state: &mut SearchState,
        budget: usize,
        observer: &mut dyn StepObserver,
    ) -> StopCause {
        while self.step(problem, state, budget) {
            if observer.on_generation(state, budget) == StepAction::Stop {
                return StopCause::ObserverStopped;
            }
        }
        StopCause::BudgetExhausted
    }

    /// Builds and evaluates the initial population (generation 0).
    ///
    /// Consumes `min(population_size, budget)` samples. Drive the
    /// returned state with [`DiGamma::step`], or let [`DiGamma::search`]
    /// do both.
    pub fn init(&self, problem: &CoOptProblem, budget: usize) -> SearchState {
        let cfg = &self.config;
        let mut rng = self.generation_rng(0);
        let unique = problem.unique_layers();
        let platform = problem.platform();

        let mut state = SearchState {
            population: Vec::new(),
            evals: Vec::new(),
            best: None,
            history: Vec::with_capacity(budget),
            samples: 0,
            generation: 0,
            ops: OpCounters::new(),
            cost_points: Vec::new(),
            last_stats: None,
            last_improved_gen: 0,
            scratch: StepScratch::default(),
        };

        // Initial population. Under a Fixed-HW constraint the buffers are
        // hard limits random tiles rarely respect, so — as GAMMA does —
        // the population is seeded with feasible template mappings (one
        // per manual style) before random exploration fills the rest.
        let init_count = cfg.population_size.min(budget);
        let mut population: Vec<Genome> = Vec::with_capacity(init_count);
        if cfg.template_seeding {
            let seed_hws: Vec<_> = match problem.constraint() {
                Constraint::FixedHw(hw) => vec![hw.clone()],
                // For co-optimization, seed each preset twice: at full
                // buffer fill (best immediate cost) and at half fill —
                // the half-fill seeds leave area slack so Mutate-HW /
                // tile-growth mutations have room to move.
                Constraint::None => crate::schemes::HwPreset::ALL
                    .iter()
                    .flat_map(|p| {
                        let full = p.build(platform, problem.evaluator().area_model());
                        let mut half = full.clone();
                        half.l2_words = (half.l2_words / 2).max(1);
                        half.l1_words_per_pe = (half.l1_words_per_pe / 2).max(1);
                        [full, half]
                    })
                    .collect(),
            };
            'seeding: for hw in &seed_hws {
                if hw.fanouts.len() != 2 {
                    continue;
                }
                for style in crate::templates::MappingStyle::ALL {
                    if population.len() >= init_count {
                        break 'seeding;
                    }
                    let mappings = crate::templates::instantiate_all(style, unique, hw);
                    population.push(Genome::from_mappings(&mappings));
                }
            }
        }
        while population.len() < init_count {
            let mut g = Genome::random(&mut rng, unique, platform, cfg.num_levels);
            if let Constraint::FixedHw(hw) = problem.constraint() {
                g.fanouts = hw.fanouts.clone();
            }
            population.push(g);
        }
        let evals = problem.evaluate_batch(&population, cfg.threads);
        state.record(&population, &evals);
        if cfg.analytics {
            // Generation 0 returns after the cost point; the
            // accumulator arguments are never read.
            state.push_analytics(&population, &evals, 0.0, 0);
        }
        state.population = population;
        state.evals = evals;
        state
    }

    /// Advances `state` by one generation, stopping at `budget` samples.
    ///
    /// Returns `false` (leaving the state untouched) once the budget is
    /// exhausted. After a `step`, the state sits at a generation boundary
    /// and may be snapshotted and later resumed bit-identically.
    pub fn step(&self, problem: &CoOptProblem, state: &mut SearchState, budget: usize) -> bool {
        if state.samples >= budget {
            return false;
        }
        let cfg = &self.config;
        let unique = problem.unique_layers();
        let platform = problem.platform();
        state.generation += 1;
        let mut rng = self.generation_rng(state.generation);
        let elites = ((cfg.population_size as f64 * cfg.elite_fraction).ceil() as usize).max(1);

        // Rank current population (ascending cost) — or take the
        // identical ranking `push_analytics` precomputed over these
        // same evaluations at the previous boundary.
        let order: Vec<usize> = state.scratch.next_order.take().unwrap_or_else(|| {
            let mut order: Vec<usize> = (0..state.population.len()).collect();
            order.sort_by(|&a, &b| state.evals[a].cost.total_cmp(&state.evals[b].cost));
            order
        });

        let want = (cfg.population_size).min(budget - state.samples);
        let fixed_hw = matches!(problem.constraint(), Constraint::FixedHw(_));
        // Provenance tags (operator, reference cost) parallel to
        // `children`, recorded only when analytics are on. Tagging
        // captures decisions the construction below already makes — it
        // consumes no RNG draws, so the trajectory is identical either
        // way.
        // The tag buffer is taken out of the state (and returned after
        // attribution) so generations after the first reuse one
        // allocation for the whole search.
        let mut provenance: Option<Vec<(OpKind, f64)>> = cfg.analytics.then(|| {
            let mut tags = std::mem::take(&mut state.scratch.tags);
            tags.clear();
            tags.reserve(want);
            tags
        });
        let mut children: Vec<Genome> = Vec::with_capacity(want);
        // Elites survive unchanged (re-evaluated only to keep the
        // bookkeeping simple; evaluation is deterministic — and with a
        // fitness cache attached the re-evaluation is a pure cache hit).
        for &i in order.iter().take(elites.min(want)) {
            children.push(state.population[i].clone());
            if let Some(tags) = &mut provenance {
                tags.push((OpKind::Elite, state.evals[i].cost));
            }
        }
        // A trickle of random immigrants keeps diversity up — floored
        // at one so populations below 20 keep the trickle instead of
        // silently losing it to integer division.
        let immigrants = (want / 20).max(1).min(want.saturating_sub(children.len()));
        // An immigrant "improves" when it beats the previous
        // generation's median — the bar a random design has to clear to
        // be worth its evaluation.
        let median_cost = state.evals[order[order.len() / 2]].cost;
        for _ in 0..immigrants {
            let mut g = Genome::random(&mut rng, unique, platform, cfg.num_levels);
            if let Constraint::FixedHw(hw) = problem.constraint() {
                g.fanouts = hw.fanouts.clone();
            }
            children.push(g);
            if let Some(tags) = &mut provenance {
                tags.push((OpKind::Immigrant, median_cost));
            }
        }
        // Exploiters: single-mutation neighbours of the incumbent
        // best — cheap hill-climbing woven into the generation.
        if let Some((best_genome, best_eval)) = &state.best {
            let incumbent_cost = best_eval.cost;
            let exploiters = (want / 10).min(want.saturating_sub(children.len()));
            for _ in 0..exploiters {
                let mut g = best_genome.clone();
                let kind = if cfg.mutate_hw_rate > 0.0 && rng.gen_bool(0.25) {
                    operators::mutate_hw(&mut rng, &mut g, platform.max_pes);
                    if fixed_hw {
                        OpKind::HwForced
                    } else {
                        OpKind::MutateHw
                    }
                } else {
                    let li = rng.gen_range(0..g.layers.len().max(1));
                    operators::mutate_one_layer(&mut rng, &mut g, unique, li);
                    OpKind::MutateMap
                };
                repair(&mut g, unique, platform);
                if let Constraint::FixedHw(hw) = problem.constraint() {
                    g.fanouts = hw.fanouts.clone();
                }
                children.push(g);
                if let Some(tags) = &mut provenance {
                    tags.push((kind, incumbent_cost));
                }
            }
        }
        while children.len() < want {
            let parent_a_idx = tournament(&mut rng, &order, &state.evals);
            let parent_a = &state.population[parent_a_idx];
            let parent_a_cost = state.evals[parent_a_idx].cost;
            let crossed = rng.gen_bool(cfg.crossover_rate) && state.population.len() >= 2;
            let (mut child, reference) = if crossed {
                let parent_b_idx = tournament(&mut rng, &order, &state.evals);
                let parent_b = &state.population[parent_b_idx];
                // A crossover child improves when it beats its *better*
                // parent — beating the worse one is not a win.
                let reference = parent_a_cost.min(state.evals[parent_b_idx].cost);
                (operators::crossover(&mut rng, parent_a, parent_b), reference)
            } else {
                (parent_a.clone(), parent_a_cost)
            };
            operators::reorder(&mut rng, &mut child, cfg.reorder_rate);
            operators::mutate_map(&mut rng, &mut child, unique, cfg.mutate_map_rate);
            let hw_fired = rng.gen_bool(cfg.mutate_hw_rate);
            if hw_fired {
                operators::mutate_hw(&mut rng, &mut child, platform.max_pes);
            }
            let grew = rng.gen_bool(cfg.grow_aging_rate);
            if grew {
                operators::grow_or_age(&mut rng, &mut child);
            }
            repair(&mut child, unique, platform);
            if let Constraint::FixedHw(hw) = problem.constraint() {
                child.fanouts = hw.fanouts.clone();
            }
            children.push(child);
            if let Some(tags) = &mut provenance {
                // One tag per child: the most structural operator that
                // fired wins (crossover ≻ grow/age ≻ mutate-hw ≻
                // mutate-map; reorder and mutate-map always run, so the
                // plain-clone path attributes to mutate_map).
                let kind = if crossed {
                    OpKind::Crossover
                } else if grew {
                    OpKind::GrowAge
                } else if hw_fired {
                    if fixed_hw {
                        OpKind::HwForced
                    } else {
                        OpKind::MutateHw
                    }
                } else {
                    OpKind::MutateMap
                };
                tags.push((kind, reference));
            }
        }

        let child_evals = problem.evaluate_batch(&children, cfg.threads);
        // Attribution: replay the incumbent locally over this batch so
        // every child is judged against the incumbent *at its own
        // position*, matching what `record` is about to do.
        let mut cost_sum = 0.0;
        let mut feasible = 0usize;
        if let Some(tags) = provenance.take() {
            let mut incumbent = state.best.as_ref().map_or(f64::INFINITY, |(_, e)| e.cost);
            for ((kind, reference), eval) in tags.iter().zip(&child_evals) {
                cost_sum += eval.cost;
                feasible += usize::from(eval.feasible);
                let counter = state.ops.get_mut(*kind);
                counter.attempted += 1;
                if eval.feasible && eval.cost < *reference {
                    counter.improved += 1;
                }
                if eval.feasible && eval.cost < incumbent {
                    counter.incumbents += 1;
                    incumbent = eval.cost;
                }
            }
            state.scratch.tags = tags;
        }
        state.record(&children, &child_evals);
        if cfg.analytics {
            // The spent ranking buffer rides back in through the
            // scratch so `push_analytics` can refill it in place.
            state.scratch.next_order = Some(order);
            state.push_analytics(&children, &child_evals, cost_sum, feasible);
        }
        state.population = children;
        state.evals = child_evals;
        true
    }

    /// Rebuilds a [`SearchState`] from checkpointed data.
    ///
    /// Per-genome evaluations are *recomputed* (evaluation is pure and
    /// deterministic, and cheap again under a fitness cache), so
    /// checkpoints carry only genomes, history, and counters. The
    /// restored state continues exactly where [`DiGamma::step`] left off:
    /// resuming reproduces an uninterrupted run bit-for-bit because each
    /// generation reseeds its RNG from `(seed, generation)`.
    ///
    /// Bit-identical resumption assumes the resumed run keeps the
    /// original total budget: the final generation of a budget is
    /// truncated to the remaining samples, so a snapshot taken after
    /// such a truncated generation describes a *finished* search, not a
    /// resumable midpoint.
    ///
    /// # Panics
    ///
    /// Panics if `population` is empty or `history.len() != samples`.
    pub fn restore(
        &self,
        problem: &CoOptProblem,
        population: Vec<Genome>,
        best: Option<Genome>,
        history: Vec<f64>,
        samples: usize,
        generation: u64,
    ) -> SearchState {
        assert!(!population.is_empty(), "cannot restore an empty population");
        assert_eq!(history.len(), samples, "history must have one entry per sample");
        let evals = problem.evaluate_batch(&population, self.config.threads);
        let best = best.map(|g| {
            let e = problem.evaluate(&g);
            (g, e)
        });
        SearchState {
            population,
            evals,
            best,
            history,
            samples,
            generation,
            ops: OpCounters::new(),
            cost_points: Vec::new(),
            last_stats: None,
            // Conservative: treat the restore point as fresh. Callers
            // with checkpointed analytics overwrite this through
            // `SearchState::restore_analytics`.
            last_improved_gen: generation,
            scratch: StepScratch::default(),
        }
    }
}

/// Binary tournament over the *top half* of the ranked population
/// (returns a population index). Restricting parents to the upper half
/// keeps selection pressure high even while the population still carries
/// many infeasible explorers.
fn tournament(rng: &mut SmallRng, order: &[usize], evals: &[DesignEvaluation]) -> usize {
    let half = (order.len() / 2).max(1);
    let a = order[rng.gen_range(0..half)];
    let b = order[rng.gen_range(0..half)];
    if evals[a].cost <= evals[b].cost {
        a
    } else {
        b
    }
}

/// The specialized genetic operators (kept free-standing for unit tests
/// and for the ablation benchmark E5).
pub mod operators {
    use super::*;

    /// Crossover: blends two parents — per-layer mapping genes are
    /// inherited from either parent, the PE-array genes from one of them.
    pub fn crossover(rng: &mut SmallRng, a: &Genome, b: &Genome) -> Genome {
        let mut child = a.clone();
        // Mixing mapping genes only makes sense level-by-level when the
        // parents agree on the level count; otherwise inherit whole sets.
        if a.num_levels() == b.num_levels() {
            for (cl, bl) in child.layers.iter_mut().zip(&b.layers) {
                if rng.gen_bool(0.5) {
                    *cl = bl.clone();
                }
            }
            if rng.gen_bool(0.5) {
                child.fanouts = b.fanouts.clone();
            }
        } else if rng.gen_bool(0.5) {
            child = b.clone();
        }
        child
    }

    /// Reorder: per layer (with probability `rate`), swaps two positions
    /// in a random level's loop order. Applying the operator per layer —
    /// rather than to one layer per child — is what lets every layer's
    /// mapping improve each generation on deep models.
    pub fn reorder(rng: &mut SmallRng, g: &mut Genome, rate: f64) {
        for lg in &mut g.layers {
            if !rng.gen_bool(rate) {
                continue;
            }
            let lvl = rng.gen_range(0..lg.levels.len());
            let order = &mut lg.levels[lvl].order;
            let i = rng.gen_range(0..NUM_DIMS);
            let j = rng.gen_range(0..NUM_DIMS);
            order.swap(i, j);
        }
    }

    /// Mutate-Map: per layer (with probability `rate`), perturbs tiling
    /// or parallelism of a random level; if no layer fires, one random
    /// layer is mutated so a mutation pass is never a no-op.
    ///
    /// The operator mix favours area-neutral/structured moves (spatial
    /// dim change, tile double/halve) over destructive full resamples —
    /// the "structured manner" of stepping through the space the paper
    /// credits for DiGamma's sample efficiency.
    pub fn mutate_map(rng: &mut SmallRng, g: &mut Genome, unique: &[UniqueLayer], rate: f64) {
        let mut fired = false;
        for li in 0..g.layers.len() {
            if rng.gen_bool(rate) {
                mutate_one_layer(rng, g, unique, li);
                fired = true;
            }
        }
        if !fired && !g.layers.is_empty() {
            let li = rng.gen_range(0..g.layers.len());
            mutate_one_layer(rng, g, unique, li);
        }
    }

    pub(crate) fn mutate_one_layer(
        rng: &mut SmallRng,
        g: &mut Genome,
        unique: &[UniqueLayer],
        li: usize,
    ) {
        let extents = *unique[li].layer.dims();
        let lg = &mut g.layers[li];
        let lvl = rng.gen_range(0..lg.levels.len());
        let genes = &mut lg.levels[lvl];
        let dim = Dim::from_index(rng.gen_range(0..NUM_DIMS));
        match rng.gen_range(0..10) {
            0..=2 => genes.tile[dim] = genes.tile[dim].saturating_mul(2),
            3..=5 => genes.tile[dim] = (genes.tile[dim] / 2).max(1),
            6 => {
                let max = extents[dim];
                genes.tile[dim] = super::log_uniform(rng, max);
            }
            _ => genes.spatial_dim = Dim::from_index(rng.gen_range(0..NUM_DIMS)),
        }
    }

    /// Mutate-HW: perturbs the PE array — total size (double/halve one
    /// level) or aspect ratio (move a factor of two between levels while
    /// keeping the PE count). Buffer sizes follow automatically through
    /// the allocation strategy.
    pub fn mutate_hw(rng: &mut SmallRng, g: &mut Genome, max_pes: u64) {
        let levels = g.fanouts.len();
        match rng.gen_range(0..4) {
            0 => {
                let i = rng.gen_range(0..levels);
                g.fanouts[i] = g.fanouts[i].saturating_mul(2).min(max_pes);
            }
            1 => {
                let i = rng.gen_range(0..levels);
                g.fanouts[i] = (g.fanouts[i] / 2).max(1);
            }
            2 if levels >= 2 => {
                // Aspect-ratio move: ×2 one level, ÷2 another.
                let i = rng.gen_range(0..levels);
                let mut j = rng.gen_range(0..levels);
                if i == j {
                    j = (j + 1) % levels;
                }
                if g.fanouts[j] >= 2 {
                    g.fanouts[i] = g.fanouts[i].saturating_mul(2);
                    g.fanouts[j] /= 2;
                }
            }
            _ => {
                let i = rng.gen_range(0..levels);
                g.fanouts[i] = super::log_uniform(rng, max_pes);
            }
        }
    }

    /// Grow/Aging: inserts a middle cluster level (grow) or removes one
    /// (aging), re-shaping the clustering hierarchy.
    pub fn grow_or_age(rng: &mut SmallRng, g: &mut Genome) {
        let levels = g.fanouts.len();
        let can_grow = levels < digamma_costmodel::MAX_LEVELS;
        let can_age = levels > 2;
        match (can_grow, can_age) {
            (false, false) => {}
            (true, false) => grow(rng, g),
            (false, true) => age(rng, g),
            (true, true) => {
                if rng.gen_bool(0.5) {
                    grow(rng, g)
                } else {
                    age(rng, g)
                }
            }
        }
    }

    fn grow(rng: &mut SmallRng, g: &mut Genome) {
        // Split the outermost fan-out and insert a middle level whose
        // genes interpolate its neighbours.
        let moved = if g.fanouts[0] >= 2 { 2 } else { 1 };
        g.fanouts[0] = (g.fanouts[0] / moved).max(1);
        g.fanouts.insert(1, moved);
        for lg in &mut g.layers {
            let outer = lg.levels[0];
            let mut mid = outer;
            mid.spatial_dim = Dim::from_index(rng.gen_range(0..NUM_DIMS));
            // Mid tiles: geometric middle between outer and inner tiles.
            if let Some(inner) = lg.levels.get(1) {
                mid.tile = outer.tile.zip_with(inner.tile, |o, i| {
                    (((o.max(1) * i.max(1)) as f64).sqrt().round() as u64).max(1)
                });
            }
            lg.levels.insert(1, mid);
        }
    }

    fn age(rng: &mut SmallRng, g: &mut Genome) {
        // Remove a middle level, folding its fan-out into the level above.
        let levels = g.fanouts.len();
        let victim = rng.gen_range(1..levels - 1);
        let folded = g.fanouts.remove(victim);
        g.fanouts[victim - 1] = g.fanouts[victim - 1].saturating_mul(folded);
        for lg in &mut g.layers {
            lg.levels.remove(victim);
        }
    }
}

/// Log-uniform sample in `[1, max]` (shared with the encoding crate's
/// sampler semantics).
fn log_uniform(rng: &mut SmallRng, max: u64) -> u64 {
    if max <= 1 {
        return 1;
    }
    let exp = rng.gen_range(0.0..=(max as f64).ln());
    (exp.exp().round() as u64).clamp(1, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use digamma_costmodel::Platform;
    use digamma_workload::zoo;

    fn small_problem() -> CoOptProblem {
        CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency)
    }

    fn quick_config(seed: u64) -> DiGammaConfig {
        DiGammaConfig { population_size: 16, seed, ..DiGammaConfig::default() }
    }

    #[test]
    fn search_finds_feasible_design() {
        let result = DiGamma::new(quick_config(1)).search(&small_problem(), 200);
        let best = result.best.expect("feasible design within 200 samples");
        assert!(best.feasible);
        assert!(best.area_um2 <= Platform::edge().area_budget_um2);
        assert_eq!(result.samples, 200);
        assert_eq!(result.history.len(), 200);
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let result = DiGamma::new(quick_config(2)).search(&small_problem(), 150);
        for w in result.history.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn search_improves_over_random_initialization() {
        let result = DiGamma::new(quick_config(3)).search(&small_problem(), 400);
        let first_feasible =
            result.history.iter().copied().find(|c| c.is_finite()).expect("feasible");
        let final_cost = *result.history.last().unwrap();
        assert!(final_cost < first_feasible, "no improvement: {first_feasible} → {final_cost}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = DiGamma::new(quick_config(7)).search(&small_problem(), 100);
        let b = DiGamma::new(quick_config(7)).search(&small_problem(), 100);
        assert_eq!(a.best_cost(), b.best_cost());
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn budget_is_respected_exactly() {
        let result = DiGamma::new(quick_config(4)).search(&small_problem(), 37);
        assert_eq!(result.samples, 37);
    }

    #[test]
    fn stepping_matches_one_shot_search() {
        let problem = small_problem();
        let ga = DiGamma::new(quick_config(11));
        let one_shot = ga.search(&problem, 150);
        let mut state = ga.init(&problem, 150);
        while ga.step(&problem, &mut state, 150) {}
        let stepped = state.into_result();
        assert_eq!(one_shot.history, stepped.history);
        assert_eq!(one_shot.best_cost(), stepped.best_cost());
    }

    #[test]
    fn restore_resumes_bit_identically() {
        let problem = small_problem();
        let ga = DiGamma::new(quick_config(12));
        let full = ga.search(&problem, 200);

        // Run the first half of the same 200-sample job (a mid-run
        // kill), then rebuild the state from its checkpointable parts
        // only (genomes, history, counters) and finish.
        let mut state = ga.init(&problem, 200);
        while state.samples() < 100 && ga.step(&problem, &mut state, 200) {}
        let restored = ga.restore(
            &problem,
            state.population().to_vec(),
            state.best_genome().cloned(),
            state.history().to_vec(),
            state.samples(),
            state.generation(),
        );
        let mut resumed = restored;
        while ga.step(&problem, &mut resumed, 200) {}
        let result = resumed.into_result();

        assert_eq!(full.history.len(), result.history.len());
        assert_eq!(full.history, result.history, "resumed history must match bit-for-bit");
        assert_eq!(full.best_cost(), result.best_cost());
        assert_eq!(full.best.as_ref().map(|b| &b.genome), result.best.as_ref().map(|b| &b.genome));
    }

    #[test]
    fn deep_cnn_search_skips_duplicate_layer_evals() {
        // VGG-style models make the batch-local dedupe earn its keep:
        // elites and the children inheriting their per-layer genes
        // re-state many identical (layer shape, mapping) evaluations
        // within one generation batch.
        let problem = CoOptProblem::new(zoo::vgg16(), Platform::edge(), Objective::Latency);
        let ga = DiGamma::new(quick_config(6));
        let result = ga.search(&problem, 96);
        assert_eq!(result.samples, 96);
        assert!(
            problem.batch_dedup_skipped() > 0,
            "a vgg16 search must dedupe intra-batch layer evals"
        );
    }

    #[test]
    fn observer_stops_the_loop_at_a_generation_boundary() {
        struct StopAfter(u64);
        impl StepObserver for StopAfter {
            fn on_generation(&mut self, state: &SearchState, _budget: usize) -> StepAction {
                if state.generation() >= self.0 {
                    StepAction::Stop
                } else {
                    StepAction::Continue
                }
            }
        }
        let problem = small_problem();
        let ga = DiGamma::new(quick_config(21));
        let mut state = ga.init(&problem, 400);
        let cause = ga.run_observed(&problem, &mut state, 400, &mut StopAfter(3));
        assert_eq!(cause, StopCause::ObserverStopped);
        assert_eq!(state.generation(), 3, "stop lands exactly at the asked boundary");
        // Resuming with the trivial observer finishes the search
        // identically to an uninterrupted run.
        let cause = ga.run_observed(&problem, &mut state, 400, &mut ());
        assert_eq!(cause, StopCause::BudgetExhausted);
        let full = ga.search(&problem, 400);
        let resumed = state.into_result();
        assert_eq!(full.history, resumed.history);
        assert_eq!(full.best_cost(), resumed.best_cost());
    }

    #[test]
    fn observer_sees_every_generation() {
        struct Count(Vec<u64>);
        impl StepObserver for Count {
            fn on_generation(&mut self, state: &SearchState, _budget: usize) -> StepAction {
                self.0.push(state.generation());
                StepAction::Continue
            }
        }
        let problem = small_problem();
        let ga = DiGamma::new(quick_config(22));
        let mut state = ga.init(&problem, 96);
        let mut count = Count(Vec::new());
        ga.run_observed(&problem, &mut state, 96, &mut count);
        let expect: Vec<u64> = (1..=state.generation()).collect();
        assert_eq!(count.0, expect, "one callback per generation, in order");
    }

    #[test]
    fn analytics_on_and_off_are_bit_identical() {
        // The whole introspection layer is computed from
        // already-evaluated data and consumes zero RNG draws, so the
        // search trajectory must not depend on it in any way.
        let on = DiGamma::new(DiGammaConfig { analytics: true, ..quick_config(31) })
            .search(&small_problem(), 150);
        let off = DiGamma::new(DiGammaConfig { analytics: false, ..quick_config(31) })
            .search(&small_problem(), 150);
        assert_eq!(on.samples, off.samples);
        assert_eq!(on.best_cost(), off.best_cost());
        assert_eq!(
            on.history.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            off.history.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "histories must match bit-for-bit"
        );
        assert_eq!(
            on.best.map(|b| b.genome),
            off.best.map(|b| b.genome),
            "incumbent genomes must be identical"
        );
    }

    #[test]
    fn analytics_off_state_stays_empty() {
        let problem = small_problem();
        let ga = DiGamma::new(DiGammaConfig { analytics: false, ..quick_config(31) });
        let mut state = ga.init(&problem, 100);
        while ga.step(&problem, &mut state, 100) {}
        assert_eq!(state.op_counters().total_attempted(), 0);
        assert!(state.cost_points().is_empty());
        assert!(state.last_gen_stats().is_none());
    }

    #[test]
    fn small_populations_keep_the_immigrant_trickle() {
        // Regression: `(want / 20)` silently truncated to zero for
        // populations below 20, so small configs lost the diversity
        // trickle entirely. The floor guarantees one immigrant per
        // generation whenever there is room for one.
        let problem = small_problem();
        let ga = DiGamma::new(quick_config(33)); // population 16 < 20
        let mut state = ga.init(&problem, 160);
        while ga.step(&problem, &mut state, 160) {}
        let immigrants = state.op_counters().get(OpKind::Immigrant);
        assert_eq!(
            immigrants.attempted,
            state.generation(),
            "exactly one immigrant per stepped generation at population 16"
        );
    }

    #[test]
    fn operator_attribution_covers_every_stepped_child() {
        let problem = small_problem();
        let ga = DiGamma::new(quick_config(34));
        let init_samples = 16; // population_size, consumed by init
        let mut state = ga.init(&problem, 200);
        while ga.step(&problem, &mut state, 200) {}
        let ops = state.op_counters();
        assert_eq!(
            ops.total_attempted(),
            (state.samples() - init_samples) as u64,
            "every child after the initial population carries exactly one tag"
        );
        assert!(ops.get(OpKind::Elite).attempted > 0);
        assert!(ops.get(OpKind::Crossover).attempted > 0);
        assert!(
            ops.total_incumbents() > 0,
            "a 200-sample ncf search must improve its incumbent at least once"
        );
        // Unconstrained searches never force hardware genes.
        assert_eq!(ops.get(OpKind::HwForced).attempted, 0);
    }

    #[test]
    fn gen_stats_and_cost_points_track_the_search() {
        let problem = small_problem();
        let ga = DiGamma::new(quick_config(35));
        let mut state = ga.init(&problem, 120);
        assert_eq!(state.cost_points().len(), 1, "generation 0 contributes a cost point");
        assert_eq!(state.cost_points()[0].evals, 16);
        while ga.step(&problem, &mut state, 120) {}
        assert_eq!(state.cost_points().len() as u64, state.generation() + 1);
        let last = state.cost_points().last().unwrap();
        assert_eq!(last.evals, state.samples() as u64);
        assert_eq!(last.best.to_bits(), state.best_cost().unwrap_or(f64::INFINITY).to_bits());
        // Cost points are monotone in evals and non-increasing in cost.
        for w in state.cost_points().windows(2) {
            assert!(w[1].evals > w[0].evals);
            assert!(w[1].best <= w[0].best);
        }
        let stats = state.last_gen_stats().expect("analytics on");
        assert_eq!(stats.generation, state.generation());
        assert_eq!(stats.evals, state.samples() as u64);
        assert!((0.0..=1.0).contains(&stats.diversity), "diversity {}", stats.diversity);
        assert!((0.0..=1.0).contains(&stats.feasible_frac));
        assert!(stats.best <= stats.median && stats.median <= stats.worst);
        assert_eq!(stats.stale_gens, state.generation() - state.last_improved_generation());
    }

    #[test]
    fn fixed_hw_attribution_reports_forced_hardware_mutations() {
        // Under a fixed-HW constraint every Mutate-HW draw is nullified
        // by the fan-out forcing — attribution must expose that as
        // `hw_forced` rather than crediting a hardware move.
        let hw = digamma_costmodel::HwConfig {
            fanouts: vec![8, 16],
            l2_words: 32 * 1024,
            mid_words_per_unit: vec![],
            l1_words_per_pe: 128,
        };
        let problem = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency)
            .with_constraint(Constraint::FixedHw(hw));
        let ga = DiGamma::new(quick_config(36));
        let mut state = ga.init(&problem, 200);
        while ga.step(&problem, &mut state, 200) {}
        let ops = state.op_counters();
        assert!(ops.get(OpKind::HwForced).attempted > 0, "hw mutations must surface as forced");
        assert_eq!(ops.get(OpKind::MutateHw).attempted, 0, "no real hw moves under fixed hw");
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let mut cfg = quick_config(5);
        let seq = DiGamma::new(cfg.clone()).search(&small_problem(), 120);
        cfg.threads = 4;
        let par = DiGamma::new(cfg).search(&small_problem(), 120);
        assert_eq!(seq.best_cost(), par.best_cost());
    }

    mod operator_tests {
        use super::super::operators::*;
        use super::*;
        use digamma_encoding::Genome;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        fn setup() -> (SmallRng, Vec<digamma_workload::UniqueLayer>, Genome) {
            let unique = zoo::ncf().unique_layers();
            let mut rng = SmallRng::seed_from_u64(9);
            let g = Genome::random(&mut rng, &unique, &Platform::edge(), 2);
            (rng, unique, g)
        }

        #[test]
        fn reorder_keeps_permutation() {
            let (mut rng, _, mut g) = setup();
            for _ in 0..50 {
                reorder(&mut rng, &mut g, 1.0);
            }
            for lg in &g.layers {
                for lvl in &lg.levels {
                    let mut seen = [false; NUM_DIMS];
                    for d in lvl.order {
                        assert!(!std::mem::replace(&mut seen[d.index()], true));
                    }
                }
            }
        }

        #[test]
        fn mutate_map_changes_only_mapping_genes() {
            let (mut rng, unique, mut g) = setup();
            let fanouts = g.fanouts.clone();
            for _ in 0..50 {
                mutate_map(&mut rng, &mut g, &unique, 1.0);
            }
            assert_eq!(g.fanouts, fanouts, "Mutate-Map must not touch HW genes");
        }

        #[test]
        fn mutate_map_touches_every_layer_at_full_rate() {
            let (mut rng, unique, g) = setup();
            let mut mutated = vec![false; g.layers.len()];
            for _ in 0..30 {
                let mut child = g.clone();
                mutate_map(&mut rng, &mut child, &unique, 1.0);
                for (i, (a, b)) in child.layers.iter().zip(&g.layers).enumerate() {
                    if a != b {
                        mutated[i] = true;
                    }
                }
            }
            assert!(mutated.iter().all(|&m| m), "some layer never mutated: {mutated:?}");
        }

        #[test]
        fn mutate_hw_changes_only_hw_genes() {
            let (mut rng, _, mut g) = setup();
            let layers = g.layers.clone();
            for _ in 0..50 {
                mutate_hw(&mut rng, &mut g, 1024);
            }
            assert_eq!(g.layers, layers, "Mutate-HW must not touch mapping genes");
        }

        #[test]
        fn grow_and_age_preserve_level_consistency() {
            let (mut rng, unique, mut g) = setup();
            for _ in 0..20 {
                grow_or_age(&mut rng, &mut g);
                assert!(g.fanouts.len() >= 2 && g.fanouts.len() <= 3);
                for lg in &g.layers {
                    assert_eq!(lg.levels.len(), g.fanouts.len());
                }
                // Post-repair the genome must decode cleanly.
                digamma_encoding::repair(&mut g, &unique, &Platform::edge());
                for (u, m) in unique.iter().zip(g.decode(&unique)) {
                    m.validate(&u.layer).unwrap();
                }
            }
        }

        #[test]
        fn crossover_mixes_parents() {
            let unique = zoo::ncf().unique_layers();
            let mut rng = SmallRng::seed_from_u64(10);
            let a = Genome::random(&mut rng, &unique, &Platform::edge(), 2);
            let b = Genome::random(&mut rng, &unique, &Platform::edge(), 2);
            let mut saw_a = false;
            let mut saw_b = false;
            for _ in 0..30 {
                let child = crossover(&mut rng, &a, &b);
                for (i, lg) in child.layers.iter().enumerate() {
                    if *lg == a.layers[i] {
                        saw_a = true;
                    }
                    if *lg == b.layers[i] {
                        saw_b = true;
                    }
                }
            }
            assert!(saw_a && saw_b, "crossover never mixed both parents");
        }
    }
}
