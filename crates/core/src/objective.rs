//! Optimization objectives (paper Sec. V-A).

use serde::{Deserialize, Serialize};
use std::fmt;

/// What the search minimizes.
///
/// The paper's experiments optimize latency; power/energy/EDP are listed
/// as alternative objectives the framework accepts, so they are supported
/// here too. Latency-area product is *reported* in Fig. 5 but not used as
/// a search objective; [`crate::DesignPoint::latency_area_product`]
/// computes it post-hoc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Total model latency in cycles.
    Latency,
    /// Total model energy in pJ.
    Energy,
    /// Energy-delay product.
    Edp,
}

impl Objective {
    /// Scalar score (lower is better) for aggregated model metrics.
    pub fn score(self, latency_cycles: f64, energy_pj: f64) -> f64 {
        match self {
            Objective::Latency => latency_cycles,
            Objective::Energy => energy_pj,
            Objective::Edp => latency_cycles * energy_pj,
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Objective::Latency => "latency",
            Objective::Energy => "energy",
            Objective::Edp => "EDP",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_compose_expected_metrics() {
        assert_eq!(Objective::Latency.score(10.0, 5.0), 10.0);
        assert_eq!(Objective::Energy.score(10.0, 5.0), 5.0);
        assert_eq!(Objective::Edp.score(10.0, 5.0), 50.0);
    }

    #[test]
    fn displays_lowercase_names() {
        assert_eq!(Objective::Latency.to_string(), "latency");
        assert_eq!(Objective::Edp.to_string(), "EDP");
    }
}
