//! `digamma-obs`: hand-rolled, dependency-free observability.
//!
//! The same in-tree discipline as `httpio`: no external crates, just
//! what the service needs. The centerpiece is [`MetricsRegistry`], a
//! lock-sharded registry of counters, gauges, and fixed-bucket
//! histograms with label support, rendered on demand in Prometheus
//! text exposition format (version 0.0.4). Handles returned by the
//! registry are cheap `Arc` clones over atomics: the instrumented hot
//! path performs a few relaxed atomic ops and never allocates, and a
//! [`MetricsRegistry::disabled`] registry hands out detached cells so
//! instrumentation compiles down to the same few atomic stores with
//! nothing retained or rendered.
//!
//! The crate also ships [`parse_text`], a parser for the exposition
//! format, so clients (`digamma-netc metrics`) and wire tests can
//! round-trip a scrape without guessing at the grammar.
//!
//! Two sibling modules complete the observability story: [`mod@trace`]
//! records per-request/per-job span timelines (W3C `traceparent`
//! propagation, Chrome trace-event export for Perfetto), and
//! [`mod@log`] is the structured leveled logger that stamps those
//! trace/span ids onto every line.

#![warn(missing_docs)]

pub mod analytics;
pub mod fail;
pub mod log;
pub mod trace;

pub use analytics::{
    parse_json, render_analytics_json, AnalyticsRing, CostPoint, GenStats, JsonValue, OpCounter,
    OpCounters, OpKind,
};
pub use fail::{FailAction, FailSet};
pub use log::{format_line, LogLevel, Logger};
pub use trace::{
    parse_chrome_trace, render_chrome_trace, ChromeEvent, Span, SpanContext, SpanId, SpanRecord,
    TraceId, Tracer,
};

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default latency buckets, in seconds: roughly exponential from 1µs
/// to 16s, dense where the service actually operates (µs-scale evals,
/// ms-scale requests, second-scale jobs).
pub const DEFAULT_LATENCY_BUCKETS: &[f64] = &[
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 1e-3, 4e-3, 1.6e-2, 6.4e-2, 0.25, 1.0,
    4.0, 16.0,
];

const SHARDS: usize = 16;

/// What kind of metric a family holds; fixed at first registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Arbitrary `f64`, set or adjusted.
    Gauge,
    /// Fixed-bucket distribution with sum and count.
    Histogram,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotonically increasing counter handle. Cloning is cheap and all
/// clones update the same cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    fn detached() -> Counter {
        Counter { cell: Arc::new(AtomicU64::new(0)) }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle (an `f64` stored as bits in an atomic). Cloning is
/// cheap and all clones update the same cell.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    fn detached() -> Gauge {
        Gauge { cell: Arc::new(AtomicU64::new(0)) }
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.cell.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (CAS loop; safe from any thread).
    pub fn add(&self, delta: f64) {
        let mut current = self.cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.cell.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCell {
    /// Upper bounds, ascending; an implicit `+Inf` bucket follows.
    bounds: Arc<[f64]>,
    /// One per bound, plus the overflow bucket — **non**-cumulative;
    /// rendering accumulates.
    buckets: Box<[AtomicU64]>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram handle. Cloning is cheap and all clones
/// update the same cell.
#[derive(Debug, Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

impl Histogram {
    fn with_bounds(bounds: Arc<[f64]>) -> Histogram {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            cell: Arc::new(HistogramCell {
                bounds,
                buckets,
                sum_bits: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let cell = &*self.cell;
        let idx = cell.bounds.iter().position(|&b| v <= b).unwrap_or(cell.bounds.len());
        cell.buckets[idx].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        let mut current = cell.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match cell.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Records a duration, in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Starts a timer that observes its elapsed time when stopped or
    /// dropped.
    #[must_use]
    pub fn start_timer(&self) -> SpanTimer {
        SpanTimer { histogram: self.clone(), start: Instant::now(), armed: true }
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.cell.sum_bits.load(Ordering::Relaxed))
    }
}

/// A span timer: born from [`Histogram::start_timer`], it observes the
/// elapsed wall time into its histogram when stopped or dropped, so a
/// timed scope needs exactly one line at the top.
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Histogram,
    start: Instant,
    armed: bool,
}

impl SpanTimer {
    /// Stops the timer now and returns the elapsed time (the drop
    /// observation is disarmed).
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.armed = false;
        self.histogram.observe_duration(elapsed);
        elapsed
    }

    /// Abandons the timer without recording anything.
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if self.armed {
            self.histogram.observe_duration(self.start.elapsed());
        }
    }
}

/// A 1-in-N sampling tick for hot paths where even two clock reads per
/// event would be measurable: `due()` costs one relaxed `fetch_add`
/// and a mask — no division — so it is safe to call hundreds of
/// thousands of times per second.
#[derive(Debug)]
pub struct SampleTick {
    mask: u64,
    tick: AtomicU64,
}

impl SampleTick {
    /// A tick answering `true` once every `every` calls (first call
    /// included). `every` is clamped to at least 1 and rounded up to
    /// the next power of two, which keeps `due()` division-free.
    #[must_use]
    pub fn new(every: u64) -> SampleTick {
        SampleTick { mask: every.max(1).next_power_of_two() - 1, tick: AtomicU64::new(0) }
    }

    /// Advances the tick; `true` on sampled calls.
    pub fn due(&self) -> bool {
        self.tick.fetch_add(1, Ordering::Relaxed) & self.mask == 0
    }

    /// The sampling period.
    #[must_use]
    pub fn every(&self) -> u64 {
        self.mask + 1
    }
}

#[derive(Debug, Clone)]
enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    bounds: Option<Arc<[f64]>>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SeriesKey {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
}

/// The process-wide metric store: a fixed set of mutex-sharded series
/// maps plus a family table for `# HELP` / `# TYPE` metadata.
///
/// Registration (`counter`/`gauge`/`histogram`) interns by name +
/// sorted label set: asking twice returns handles on the same cell, so
/// call sites can re-derive handles for dynamic labels (tenants) at
/// event frequency without unbounded growth. The *update* path never
/// touches the registry at all — handles are self-contained atomics.
///
/// A [`MetricsRegistry::disabled`] registry hands out detached cells
/// (never stored, never rendered): instrumentation keeps working at
/// the cost of a few dead atomic ops, and `render` yields nothing.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    shards: [Mutex<HashMap<SeriesKey, Cell>>; SHARDS],
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            enabled: true,
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            families: Mutex::new(BTreeMap::new()),
        }
    }

    /// A registry that hands out detached cells and renders nothing.
    #[must_use]
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry { enabled: false, ..MetricsRegistry::new() }
    }

    /// Whether this registry records anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The process-global registry (enabled). Most code should thread
    /// an explicit `Arc<MetricsRegistry>` instead; this exists for
    /// leaf code with no plumbing path.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Returns the counter for `name` + `labels`, registering it on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` was previously registered as a different kind,
    /// or if a name or label fails [`valid_metric_name`] /
    /// [`valid_label_name`].
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Counter {
        if !self.enabled {
            return Counter::detached();
        }
        match self.intern(name, help, labels, MetricKind::Counter, None) {
            Cell::Counter(c) => c,
            _ => unreachable!("intern returned wrong cell kind"),
        }
    }

    /// Returns the gauge for `name` + `labels`, registering it on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`MetricsRegistry::counter`].
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Gauge {
        if !self.enabled {
            return Gauge::detached();
        }
        match self.intern(name, help, labels, MetricKind::Gauge, None) {
            Cell::Gauge(g) => g,
            _ => unreachable!("intern returned wrong cell kind"),
        }
    }

    /// Returns the histogram for `name` + `labels`, registering it on
    /// first use with the given bucket upper bounds (ascending,
    /// seconds by convention; an implicit `+Inf` bucket is added).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`MetricsRegistry::counter`],
    /// and if `bounds` is empty, not strictly ascending, or differs
    /// from the bounds the family was first registered with.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(!bounds.is_empty(), "histogram {name} needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name} bounds must be strictly ascending"
        );
        if !self.enabled {
            return Histogram::with_bounds(bounds.into());
        }
        match self.intern(name, help, labels, MetricKind::Histogram, Some(bounds)) {
            Cell::Histogram(h) => h,
            _ => unreachable!("intern returned wrong cell kind"),
        }
    }

    fn intern(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        kind: MetricKind,
        bounds: Option<&[f64]>,
    ) -> Cell {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let family_bounds = {
            let mut families = self.families.lock().expect("family table poisoned");
            match families.get(name) {
                Some(family) => {
                    assert!(
                        family.kind == kind,
                        "metric {name} registered as {:?} and {kind:?}",
                        family.kind
                    );
                    if let (Some(have), Some(want)) = (&family.bounds, bounds) {
                        assert!(
                            have.as_ref() == want,
                            "histogram {name} registered with two different bucket layouts"
                        );
                    }
                    family.bounds.clone()
                }
                None => {
                    let bounds: Option<Arc<[f64]>> = bounds.map(Into::into);
                    families.insert(
                        name,
                        Family { help: help.to_owned(), kind, bounds: bounds.clone() },
                    );
                    bounds
                }
            }
        };
        let mut sorted: Vec<(&'static str, String)> = labels
            .iter()
            .map(|&(k, v)| {
                assert!(valid_label_name(k), "invalid label name {k:?} on {name}");
                (k, v.to_owned())
            })
            .collect();
        sorted.sort_unstable_by(|a, b| a.0.cmp(b.0));
        let key = SeriesKey { name, labels: sorted };
        let shard = &self.shards[shard_of(&key)];
        let mut map = shard.lock().expect("metric shard poisoned");
        map.entry(key)
            .or_insert_with(|| match kind {
                MetricKind::Counter => Cell::Counter(Counter::detached()),
                MetricKind::Gauge => Cell::Gauge(Gauge::detached()),
                MetricKind::Histogram => Cell::Histogram(Histogram::with_bounds(
                    family_bounds.expect("histogram family without bounds"),
                )),
            })
            .clone()
    }

    /// Renders every registered series in Prometheus text exposition
    /// format (version 0.0.4): families sorted by name, each preceded
    /// by `# HELP` and `# TYPE`, histograms expanded into cumulative
    /// `_bucket{le=...}` series plus `_sum` and `_count`.
    #[must_use]
    pub fn render(&self) -> String {
        if !self.enabled {
            return String::new();
        }
        let mut series: HashMap<&'static str, Vec<(SeriesKey, Cell)>> = HashMap::new();
        for shard in &self.shards {
            let map = shard.lock().expect("metric shard poisoned");
            for (key, cell) in map.iter() {
                series.entry(key.name).or_default().push((key.clone(), cell.clone()));
            }
        }
        let families = self.families.lock().expect("family table poisoned");
        let mut out = String::new();
        for (&name, family) in families.iter() {
            let Some(mut rows) = series.remove(name) else { continue };
            rows.sort_unstable_by(|a, b| a.0.labels.cmp(&b.0.labels));
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&family.help)));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.exposition_name()));
            for (key, cell) in rows {
                match cell {
                    Cell::Counter(c) => {
                        render_sample(&mut out, name, "", &key.labels, None, c.value() as f64);
                    }
                    Cell::Gauge(g) => {
                        render_sample(&mut out, name, "", &key.labels, None, g.value());
                    }
                    Cell::Histogram(h) => {
                        let cell = &*h.cell;
                        let mut cumulative = 0u64;
                        for (i, bound) in cell.bounds.iter().enumerate() {
                            cumulative += cell.buckets[i].load(Ordering::Relaxed);
                            render_sample(
                                &mut out,
                                name,
                                "_bucket",
                                &key.labels,
                                Some(&fmt_f64(*bound)),
                                cumulative as f64,
                            );
                        }
                        cumulative += cell.buckets[cell.bounds.len()].load(Ordering::Relaxed);
                        render_sample(
                            &mut out,
                            name,
                            "_bucket",
                            &key.labels,
                            Some("+Inf"),
                            cumulative as f64,
                        );
                        render_sample(&mut out, name, "_sum", &key.labels, None, h.sum());
                        render_sample(
                            &mut out,
                            name,
                            "_count",
                            &key.labels,
                            None,
                            h.count() as f64,
                        );
                    }
                }
            }
        }
        out
    }
}

fn shard_of(key: &SeriesKey) -> usize {
    // FNV-1a over the name and label bytes; only shard selection, so
    // collisions are harmless.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(key.name.as_bytes());
    for (k, v) in &key.labels {
        eat(k.as_bytes());
        eat(v.as_bytes());
    }
    (hash % SHARDS as u64) as usize
}

/// Whether `name` is a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
#[must_use]
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Whether `name` is a legal Prometheus label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`).
#[must_use]
pub fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn render_sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &[(&'static str, String)],
    le: Option<&str>,
    value: f64,
) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&fmt_f64(value));
    out.push('\n');
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
#[must_use]
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        // Rust's Display is shortest-roundtrip, which the format accepts.
        format!("{v}")
    }
}

/// One parsed sample line from an exposition scrape.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (histogram series keep their `_bucket` /
    /// `_sum` / `_count` suffix).
    pub name: String,
    /// Label pairs in the order they appeared.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parses Prometheus text exposition into samples, skipping comments
/// and blank lines. Strict enough to prove a scrape is well-formed:
/// names and label names are validated, label values must be quoted
/// with legal escapes, and values must parse as floats (`+Inf`, `-Inf`
/// and `NaN` included).
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn parse_text(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}: {raw:?}", idx + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let name_end = bytes
        .iter()
        .position(|&b| b == b'{' || b == b' ' || b == b'\t')
        .ok_or("no value after metric name")?;
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut labels = Vec::new();
    let mut rest = &line[name_end..];
    if let Some(stripped) = rest.strip_prefix('{') {
        let mut chars = stripped.char_indices().peekable();
        loop {
            // Label name (or closing brace for an empty/trailing-comma set).
            let start = match chars.peek() {
                Some(&(i, '}')) => {
                    chars.next();
                    rest = &stripped[i + 1..];
                    break;
                }
                Some(&(i, _)) => i,
                None => return Err("unterminated label set".to_owned()),
            };
            let mut key_end = start;
            for (i, c) in chars.by_ref() {
                if c == '=' {
                    key_end = i;
                    break;
                }
            }
            let key = &stripped[start..key_end];
            if !valid_label_name(key) {
                return Err(format!("invalid label name {key:?}"));
            }
            match chars.next() {
                Some((_, '"')) => {}
                _ => return Err(format!("label {key} value is not quoted")),
            }
            let mut value = String::new();
            loop {
                match chars.next() {
                    Some((_, '\\')) => match chars.next() {
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        Some((_, 'n')) => value.push('\n'),
                        other => return Err(format!("bad escape {other:?} in label {key}")),
                    },
                    Some((_, '"')) => break,
                    Some((_, c)) => value.push(c),
                    None => return Err(format!("unterminated value for label {key}")),
                }
            }
            labels.push((key.to_owned(), value));
            match chars.next() {
                Some((_, ',')) => continue,
                Some((i, '}')) => {
                    rest = &stripped[i + 1..];
                    break;
                }
                other => return Err(format!("expected , or }} after label, got {other:?}")),
            }
        }
    }
    let value_text = rest.trim();
    let value_text = value_text.split_whitespace().next().ok_or("missing sample value")?;
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other.parse().map_err(|_| format!("bad sample value {other:?}"))?,
    };
    Ok(Sample { name: name.to_owned(), labels, value })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_interned_by_name_and_labels() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total", "reqs", &[("endpoint", "/jobs")]);
        let b = reg.counter("requests_total", "reqs", &[("endpoint", "/jobs")]);
        let other = reg.counter("requests_total", "reqs", &[("endpoint", "/stats")]);
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.value(), 3);
        assert_eq!(b.value(), 3);
        assert_eq!(other.value(), 1);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", "x", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("x_total", "x", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.value(), 1);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth", "queue depth", &[]);
        g.set(4.0);
        g.add(-1.5);
        assert!((g.value() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_sum_count() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_seconds", "latency", &[], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 5.55).abs() < 1e-12);
        let text = reg.render();
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_seconds_count 3"), "{text}");
    }

    #[test]
    fn histogram_value_exactly_on_a_bound_lands_in_that_bucket() {
        // Prometheus buckets are upper-inclusive: observe(b) counts in
        // le="b", not the next one up.
        let reg = MetricsRegistry::new();
        let h = reg.histogram("edge_seconds", "edges", &[], &[0.1, 1.0, 10.0]);
        h.observe(0.1);
        h.observe(1.0);
        let text = reg.render();
        assert!(text.contains("edge_seconds_bucket{le=\"0.1\"} 1"), "{text}");
        assert!(text.contains("edge_seconds_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("edge_seconds_bucket{le=\"10\"} 2"), "{text}");
        assert!(text.contains("edge_seconds_bucket{le=\"+Inf\"} 2"), "{text}");
    }

    #[test]
    fn histogram_above_last_finite_bucket_counts_only_in_inf() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("tail_seconds", "tails", &[], &[0.1, 1.0]);
        h.observe(1.000_000_1);
        h.observe(f64::MAX);
        let text = reg.render();
        assert!(text.contains("tail_seconds_bucket{le=\"0.1\"} 0"), "{text}");
        assert!(text.contains("tail_seconds_bucket{le=\"1\"} 0"), "{text}");
        assert!(text.contains("tail_seconds_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("tail_seconds_count 2"), "{text}");
    }

    #[test]
    fn histogram_rendered_buckets_are_cumulative_up_to_inf() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("cum_seconds", "cum", &[], &[0.01, 0.1, 1.0]);
        for v in [0.005, 0.05, 0.05, 0.5, 2.0, 3.0, 4.0] {
            h.observe(v);
        }
        let samples = parse_text(&reg.render()).expect("parse");
        let mut buckets: Vec<(f64, f64)> = samples
            .iter()
            .filter(|s| s.name == "cum_seconds_bucket")
            .map(|s| {
                let le = s.label("le").expect("le label");
                let bound =
                    if le == "+Inf" { f64::INFINITY } else { le.parse().expect("finite bound") };
                (bound, s.value)
            })
            .collect();
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        let counts: Vec<f64> = buckets.iter().map(|(_, c)| *c).collect();
        assert_eq!(counts, vec![1.0, 3.0, 4.0, 7.0], "cumulative counts must never decrease");
        assert_eq!(buckets.last().expect("inf bucket").0, f64::INFINITY);
        let count = samples.iter().find(|s| s.name == "cum_seconds_count").expect("count");
        assert_eq!(count.value, 7.0, "+Inf bucket must equal _count");
    }

    #[test]
    fn span_timer_observes_on_drop_and_stop() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("span_seconds", "spans", &[], &[10.0]);
        {
            let _t = h.start_timer();
        }
        let elapsed = h.start_timer().stop();
        h.start_timer().discard();
        assert_eq!(h.count(), 2);
        assert!(elapsed.as_secs_f64() < 10.0);
    }

    #[test]
    fn sample_tick_fires_one_in_n() {
        let tick = SampleTick::new(4);
        let fired = (0..16).filter(|_| tick.due()).count();
        assert_eq!(fired, 4);
        assert!(SampleTick::new(0).due(), "clamped period still fires");
    }

    #[test]
    fn render_is_sorted_with_help_and_type() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total", "bees", &[]).inc();
        reg.gauge("a_gauge", "ays", &[]).set(1.0);
        let text = reg.render();
        let a = text.find("# HELP a_gauge ays").expect("a help line");
        let b = text.find("# HELP b_total bees").expect("b help line");
        assert!(a < b, "families must render sorted by name:\n{text}");
        assert!(text.contains("# TYPE a_gauge gauge"), "{text}");
        assert!(text.contains("# TYPE b_total counter"), "{text}");
    }

    #[test]
    fn label_values_escaped_and_parsed_back() {
        let reg = MetricsRegistry::new();
        let weird = "C:\\tmp\\dir with \"spaces\"\nand newline";
        reg.counter("weird_total", "weird", &[("path", weird)]).inc();
        let text = reg.render();
        assert!(text.contains("\\\\tmp"), "backslashes must be escaped:\n{text}");
        assert!(text.contains("\\\"spaces\\\""), "quotes must be escaped:\n{text}");
        assert!(text.contains("\\nand"), "newlines must be escaped:\n{text}");
        let samples = parse_text(&text).expect("round-trip parse");
        let sample = samples.iter().find(|s| s.name == "weird_total").expect("sample");
        assert_eq!(sample.label("path"), Some(weird));
        assert_eq!(sample.value, 1.0);
    }

    #[test]
    fn disabled_registry_hands_out_working_but_detached_cells() {
        let reg = MetricsRegistry::disabled();
        let c = reg.counter("c_total", "c", &[]);
        let h = reg.histogram("h_seconds", "h", &[], DEFAULT_LATENCY_BUCKETS);
        c.inc();
        h.observe(0.1);
        assert_eq!(c.value(), 1, "detached cells still count locally");
        assert_eq!(h.count(), 1);
        assert!(reg.render().is_empty(), "disabled registry renders nothing");
        let again = reg.counter("c_total", "c", &[]);
        assert_eq!(again.value(), 0, "detached cells are not interned");
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("same_name", "x", &[]);
        reg.gauge("same_name", "x", &[]);
    }

    #[test]
    #[should_panic(expected = "two different bucket layouts")]
    fn histogram_bounds_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.histogram("h_seconds", "x", &[], &[1.0]);
        reg.histogram("h_seconds", "x", &[], &[2.0]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_text("no_value_here").is_err());
        assert!(parse_text("bad name{} 1").is_err());
        assert!(parse_text("x{unterminated=\"v} 1").is_err());
        assert!(parse_text("x{k=\"v\"} not_a_number").is_err());
        assert!(parse_text("x{k=\"bad\\q\"} 1").is_err(), "unknown escapes rejected");
    }

    #[test]
    fn parse_accepts_timestamps_and_special_values() {
        let samples = parse_text("x 1 1700000000\ny{} +Inf\nz NaN\n").expect("parse");
        assert_eq!(samples[0].value, 1.0);
        assert_eq!(samples[1].value, f64::INFINITY);
        assert!(samples[2].value.is_nan());
    }

    #[test]
    fn global_registry_is_enabled_and_stable() {
        let a = MetricsRegistry::global();
        let b = MetricsRegistry::global();
        assert!(a.enabled());
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn default_latency_buckets_ascend() {
        assert!(DEFAULT_LATENCY_BUCKETS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_updates_land() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = std::sync::Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("mt_total", "mt", &[("tenant", "a")]);
                let h = reg.histogram("mt_seconds", "mt", &[], &[1.0]);
                for _ in 0..1000 {
                    c.inc();
                    h.observe(0.5);
                }
            }));
        }
        for handle in handles {
            handle.join().expect("thread");
        }
        assert_eq!(reg.counter("mt_total", "mt", &[("tenant", "a")]).value(), 4000);
        assert_eq!(reg.histogram("mt_seconds", "mt", &[], &[1.0]).count(), 4000);
    }
}
