//! Search analytics: per-generation GA telemetry and operator
//! attribution.
//!
//! The search core computes one [`GenStats`] record at every generation
//! boundary and tags every child with the operator that produced it, so
//! each operator family accumulates an [`OpCounter`] (attempted /
//! improved-on-parent / produced-new-incumbent). This module holds the
//! plain data types, the bounded per-job ring the server keeps, and the
//! in-tree JSON renderer + parser the `/jobs/{id}/analytics` endpoint
//! and `digamma-netc top` speak — no serde, same discipline as the rest
//! of the crate.
//!
//! Everything here is computed from *already-evaluated* data and
//! consumes zero RNG draws: a search runs bit-identically with
//! analytics on or off (the determinism suite and the perf harness's
//! `analytics` section both enforce this).

use std::collections::VecDeque;
use std::fmt;

/// The operator families a child can be attributed to.
///
/// `HwForced` is a Mutate-HW draw whose hardware genes were immediately
/// overwritten by a fixed-HW constraint — the mutation fired but could
/// not express, which is worth counting separately from a real
/// hardware move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Elite carried over unchanged.
    Elite,
    /// Two-parent crossover child.
    Crossover,
    /// Mapping mutation (tiling / parallelism / loop order).
    MutateMap,
    /// PE-array mutation.
    MutateHw,
    /// Cluster-level grow/aging move.
    GrowAge,
    /// Random immigrant (diversity trickle).
    Immigrant,
    /// Mutate-HW nullified by a fixed-HW constraint.
    HwForced,
}

impl OpKind {
    /// Every operator family, in render order. The set is closed — it is
    /// what bounds the `{operator}` label cardinality in `/metrics`.
    pub const ALL: [OpKind; 7] = [
        OpKind::Elite,
        OpKind::Crossover,
        OpKind::MutateMap,
        OpKind::MutateHw,
        OpKind::GrowAge,
        OpKind::Immigrant,
        OpKind::HwForced,
    ];

    /// The stable wire name (used as the JSON key and the metric label).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Elite => "elite",
            OpKind::Crossover => "crossover",
            OpKind::MutateMap => "mutate_map",
            OpKind::MutateHw => "mutate_hw",
            OpKind::GrowAge => "grow_age",
            OpKind::Immigrant => "immigrant",
            OpKind::HwForced => "hw_forced",
        }
    }

    /// The inverse of [`OpKind::name`].
    pub fn from_name(name: &str) -> Option<OpKind> {
        OpKind::ALL.into_iter().find(|k| k.name() == name)
    }

    fn index(self) -> usize {
        OpKind::ALL.iter().position(|&k| k == self).expect("OpKind::ALL is exhaustive")
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cumulative attribution for one operator family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounter {
    /// Children this operator produced.
    pub attempted: u64,
    /// Children that beat their reference (parent / incumbent / median).
    pub improved: u64,
    /// Children that became the new global incumbent.
    pub incumbents: u64,
}

/// Cumulative [`OpCounter`]s for every operator family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    counters: [OpCounter; 7],
}

impl OpCounters {
    /// All-zero counters.
    pub fn new() -> OpCounters {
        OpCounters::default()
    }

    /// The counter for one operator family.
    pub fn get(&self, kind: OpKind) -> OpCounter {
        self.counters[kind.index()]
    }

    /// Mutable access to one operator family's counter.
    pub fn get_mut(&mut self, kind: OpKind) -> &mut OpCounter {
        &mut self.counters[kind.index()]
    }

    /// `(kind, counter)` pairs in [`OpKind::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (OpKind, OpCounter)> + '_ {
        OpKind::ALL.into_iter().map(move |k| (k, self.counters[k.index()]))
    }

    /// Total children attributed across every family.
    pub fn total_attempted(&self) -> u64 {
        self.counters.iter().map(|c| c.attempted).sum()
    }

    /// Total new incumbents across every family.
    pub fn total_incumbents(&self) -> u64 {
        self.counters.iter().map(|c| c.incumbents).sum()
    }

    /// Adds another set of counters member-wise (the `/stats` aggregate).
    pub fn merge(&mut self, other: &OpCounters) {
        for (mine, theirs) in self.counters.iter_mut().zip(&other.counters) {
            mine.attempted += theirs.attempted;
            mine.improved += theirs.improved;
            mine.incumbents += theirs.incumbents;
        }
    }
}

/// One generation boundary's telemetry, computed from the freshly
/// evaluated children (never from extra evaluations or RNG draws).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenStats {
    /// Generation this record describes (1 = first stepped generation).
    pub generation: u64,
    /// Cumulative design-point evaluations after this generation.
    pub evals: u64,
    /// Best-so-far cost (`INFINITY` until a feasible design exists).
    pub best: f64,
    /// Median cost of this generation's children.
    pub median: f64,
    /// Mean cost of this generation's children.
    pub mean: f64,
    /// Worst cost of this generation's children.
    pub worst: f64,
    /// Fraction of this generation's children that are feasible.
    pub feasible_frac: f64,
    /// Genotypic diversity: mean normalized gene distance over a
    /// deterministic population sample, in `[0, 1]`. Refreshed on a
    /// fixed generation stride (diversity drifts slowly, and the
    /// analytics path holds a ≤1% overhead budget); in-between
    /// generations carry the previous value forward.
    pub diversity: f64,
    /// Generations since the incumbent last improved (0 = improved in
    /// this generation).
    pub stale_gens: u64,
}

/// One `(generation, cumulative evals, best cost)` sample — the data a
/// cost-vs-evaluations convergence plot needs (cost-vs-generation alone
/// hides how many evaluations each generation spent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPoint {
    /// Generation the sample was taken at (0 = initial population).
    pub generation: u64,
    /// Cumulative evaluations consumed up to and including it.
    pub evals: u64,
    /// Best-so-far cost at that point.
    pub best: f64,
}

/// A bounded ring of [`GenStats`] — the per-job window the server keeps
/// in memory. Pushing past the capacity drops the oldest record;
/// `total` keeps counting so consumers can tell a short search from a
/// wrapped window.
#[derive(Debug, Clone)]
pub struct AnalyticsRing {
    ring: VecDeque<GenStats>,
    capacity: usize,
    total: u64,
}

impl AnalyticsRing {
    /// A ring holding at most `capacity` records (floored at 1).
    pub fn new(capacity: usize) -> AnalyticsRing {
        let capacity = capacity.max(1);
        AnalyticsRing { ring: VecDeque::with_capacity(capacity.min(256)), capacity, total: 0 }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, stats: GenStats) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(stats);
        self.total += 1;
    }

    /// Records currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &GenStats> {
        self.ring.iter()
    }

    /// The most recent record, if any.
    pub fn latest(&self) -> Option<&GenStats> {
        self.ring.back()
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records pushed over the ring's lifetime (≥ `len`).
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// A JSON number: finite values print in Rust's shortest round-trip
/// form, non-finite values as `null` (JSON has no infinities).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders one job's analytics document: the ring window, the
/// cumulative operator attribution, and the cost-vs-evaluations curve.
/// This is exactly what `GET /jobs/{id}/analytics` serves.
pub fn render_analytics_json(
    job_id: u64,
    ring: &AnalyticsRing,
    ops: &OpCounters,
    points: &[CostPoint],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"job\": {job_id},\n"));
    let (generation, evals, best) = match ring.latest() {
        Some(s) => (s.generation, s.evals, s.best),
        None => (0, 0, f64::INFINITY),
    };
    out.push_str(&format!("  \"generation\": {generation},\n"));
    out.push_str(&format!("  \"evals\": {evals},\n"));
    out.push_str(&format!("  \"best\": {},\n", json_num(best)));
    out.push_str(&format!("  \"window_total\": {},\n", ring.total()));
    out.push_str("  \"generations\": [\n");
    let len = ring.len();
    for (i, s) in ring.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"generation\": {}, ", s.generation));
        out.push_str(&format!("\"evals\": {}, ", s.evals));
        out.push_str(&format!("\"best\": {}, ", json_num(s.best)));
        out.push_str(&format!("\"median\": {}, ", json_num(s.median)));
        out.push_str(&format!("\"mean\": {}, ", json_num(s.mean)));
        out.push_str(&format!("\"worst\": {}, ", json_num(s.worst)));
        out.push_str(&format!("\"feasible_frac\": {}, ", json_num(s.feasible_frac)));
        out.push_str(&format!("\"diversity\": {}, ", json_num(s.diversity)));
        out.push_str(&format!("\"stale_gens\": {}", s.stale_gens));
        out.push_str(if i + 1 < len { "},\n" } else { "}\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"operators\": [\n");
    for (i, (kind, c)) in ops.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"operator\": {}, ", json_str(kind.name())));
        out.push_str(&format!("\"attempted\": {}, ", c.attempted));
        out.push_str(&format!("\"improved\": {}, ", c.improved));
        out.push_str(&format!("\"incumbents\": {}", c.incumbents));
        out.push_str(if i + 1 < OpKind::ALL.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"cost_points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"generation\": {}, ", p.generation));
        out.push_str(&format!("\"evals\": {}, ", p.evals));
        out.push_str(&format!("\"best\": {}", json_num(p.best)));
        out.push_str(if i + 1 < points.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// A parsed JSON value — the minimal in-tree model the analytics
/// document needs (`digamma-netc top` and the wire tests parse through
/// this instead of eyeballing substrings).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, entries in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match), `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number (`Null` reads as `None`).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a description (with byte position) of the first syntax
/// error, including trailing garbage after the root value.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf-8")?;
            raw.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("bad number {raw:?} at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            _ => {
                // Copy the full UTF-8 sequence starting here.
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf-8")?);
            }
        }
    }
    Err("unterminated string".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(generation: u64) -> GenStats {
        GenStats {
            generation,
            evals: generation * 16,
            best: 100.0 / (generation + 1) as f64,
            median: 120.0,
            mean: 130.0,
            worst: 900.0,
            feasible_frac: 0.75,
            diversity: 0.42,
            stale_gens: 0,
        }
    }

    #[test]
    fn ring_bounds_memory_and_keeps_totals() {
        let mut ring = AnalyticsRing::new(4);
        for g in 1..=10 {
            ring.push(stats(g));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total(), 10);
        let gens: Vec<u64> = ring.iter().map(|s| s.generation).collect();
        assert_eq!(gens, vec![7, 8, 9, 10], "oldest records evict first");
        assert_eq!(ring.latest().unwrap().generation, 10);
    }

    #[test]
    fn rendered_analytics_roundtrip_through_the_parser() {
        let mut ring = AnalyticsRing::new(8);
        ring.push(stats(1));
        ring.push(stats(2));
        let mut ops = OpCounters::new();
        ops.get_mut(OpKind::Crossover).attempted = 9;
        ops.get_mut(OpKind::Crossover).improved = 4;
        ops.get_mut(OpKind::Crossover).incumbents = 1;
        ops.get_mut(OpKind::Immigrant).attempted = 2;
        let points = vec![
            CostPoint { generation: 0, evals: 16, best: f64::INFINITY },
            CostPoint { generation: 1, evals: 32, best: 50.0 },
        ];
        let json = render_analytics_json(3, &ring, &ops, &points);
        let doc = parse_json(&json).expect("well-formed");
        assert_eq!(doc.get("job").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(doc.get("generation").and_then(JsonValue::as_u64), Some(2));
        let gens = doc.get("generations").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(gens.len(), 2);
        assert_eq!(gens[1].get("generation").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(gens[0].get("diversity").and_then(JsonValue::as_num), Some(0.42));
        let operators = doc.get("operators").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(operators.len(), OpKind::ALL.len());
        let crossover = operators
            .iter()
            .find(|o| o.get("operator").and_then(JsonValue::as_str) == Some("crossover"))
            .unwrap();
        assert_eq!(crossover.get("attempted").and_then(JsonValue::as_u64), Some(9));
        // The infeasible-era point renders as null and reads back as such.
        let points = doc.get("cost_points").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(points[0].get("best"), Some(&JsonValue::Null));
        assert_eq!(points[1].get("best").and_then(JsonValue::as_num), Some(50.0));
    }

    #[test]
    fn op_names_roundtrip_and_stay_bounded() {
        for kind in OpKind::ALL {
            assert_eq!(OpKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(OpKind::from_name("mystery"), None);
        assert_eq!(OpKind::ALL.len(), 7, "the metric label set is closed");
    }

    #[test]
    fn counters_merge_and_total() {
        let mut a = OpCounters::new();
        a.get_mut(OpKind::Elite).attempted = 3;
        a.get_mut(OpKind::MutateMap).incumbents = 2;
        let mut b = OpCounters::new();
        b.get_mut(OpKind::Elite).attempted = 4;
        b.get_mut(OpKind::Elite).improved = 1;
        a.merge(&b);
        assert_eq!(a.get(OpKind::Elite).attempted, 7);
        assert_eq!(a.get(OpKind::Elite).improved, 1);
        assert_eq!(a.total_attempted(), 7);
        assert_eq!(a.total_incumbents(), 2);
    }

    #[test]
    fn json_parser_handles_the_grammar_and_rejects_damage() {
        let doc = parse_json(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\"y"}, "d": null, "e": true}"#)
            .unwrap();
        assert_eq!(doc.get("a").and_then(JsonValue::as_arr).unwrap().len(), 3);
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(doc.get("b").unwrap().get("c").and_then(JsonValue::as_str), Some("x\"y"));
        assert_eq!(doc.get("d"), Some(&JsonValue::Null));
        assert_eq!(doc.get("e"), Some(&JsonValue::Bool(true)));
        assert!(parse_json("{\"a\": ").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("[1] [2]").is_err());
    }
}
