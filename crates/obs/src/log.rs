//! A structured, leveled logger: `key=value` lines on stderr.
//!
//! The same in-tree discipline as the metrics registry — no external
//! crates, one process-global [`Logger`] with an atomic level, and a
//! line format machines can split and humans can read:
//!
//! ```text
//! ts=1754650000.123 level=info target=netd trace=4bf92f3577b34da6a3ce929d0e0e4736 span=00f067aa0ba902b7 msg="listening" addr=127.0.0.1:7171
//! ```
//!
//! Every line carries `trace=`/`span=` fields — the ids of the active
//! [`SpanContext`](crate::SpanContext) when the caller has one, `-`
//! otherwise — so a grep for a trace id walks a request's log lines and
//! its span timeline together. Values are quoted only when they contain
//! whitespace, quotes, or `=`, so the common case stays clean.

use crate::trace::SpanContext;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered. The logger drops lines below its level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Verbose diagnostics (per-request, per-generation chatter).
    Debug,
    /// Normal operational events (startup, shutdown, job lifecycle).
    Info,
    /// Something degraded but the service continues (slow spans,
    /// transient accept failures).
    Warn,
    /// Something failed (a subsystem could not start, an I/O path died).
    Error,
}

impl LogLevel {
    /// Parses a level name, case-insensitively (`debug`, `info`,
    /// `warn`/`warning`, `error`).
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(LogLevel::Debug),
            "info" => Some(LogLevel::Info),
            "warn" | "warning" => Some(LogLevel::Warn),
            "error" => Some(LogLevel::Error),
            _ => None,
        }
    }

    /// The lowercase label rendered into log lines.
    pub fn label(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }
}

/// The process logger: an atomic level filter in front of stderr.
///
/// Use [`global`] rather than constructing one per call site — the
/// daemon's `--log-level` flag sets the global level once and every
/// subsystem (accept loop, registry, tracer slow-span warnings)
/// inherits it.
#[derive(Debug)]
pub struct Logger {
    level: AtomicUsize,
}

static GLOBAL: Logger = Logger { level: AtomicUsize::new(LogLevel::Info as usize) };

/// The process-global logger.
pub fn global() -> &'static Logger {
    &GLOBAL
}

impl Logger {
    /// A logger starting at `Info` (for tests; production code uses
    /// [`global`]).
    pub fn new() -> Logger {
        Logger { level: AtomicUsize::new(LogLevel::Info as usize) }
    }

    /// Sets the minimum level that reaches stderr.
    pub fn set_level(&self, level: LogLevel) {
        self.level.store(level as usize, Ordering::Relaxed);
    }

    /// The current minimum level.
    pub fn level(&self) -> LogLevel {
        match self.level.load(Ordering::Relaxed) {
            0 => LogLevel::Debug,
            1 => LogLevel::Info,
            2 => LogLevel::Warn,
            _ => LogLevel::Error,
        }
    }

    /// Whether a line at `level` would be emitted.
    pub fn enabled(&self, level: LogLevel) -> bool {
        level >= self.level()
    }

    /// Emits one structured line to stderr (dropped when below the
    /// logger's level). `target` names the subsystem (`netd`, `net`,
    /// `registry`, `trace`); `ctx` stamps the trace/span ids when the
    /// caller is inside a span.
    pub fn log(
        &self,
        level: LogLevel,
        target: &str,
        ctx: Option<SpanContext>,
        msg: &str,
        fields: &[(&str, String)],
    ) {
        if !self.enabled(level) {
            return;
        }
        eprintln!("{}", format_line(level, target, ctx, msg, fields));
    }
}

impl Default for Logger {
    fn default() -> Logger {
        Logger::new()
    }
}

/// Renders one log line (pure; what [`Logger::log`] writes). Exposed so
/// tests can pin the format without capturing stderr.
pub fn format_line(
    level: LogLevel,
    target: &str,
    ctx: Option<SpanContext>,
    msg: &str,
    fields: &[(&str, String)],
) -> String {
    let now = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default();
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "ts={}.{:03} level={} target={}",
        now.as_secs(),
        now.subsec_millis(),
        level.label(),
        quote(target)
    );
    match ctx {
        Some(ctx) => {
            let _ = write!(line, " trace={} span={}", ctx.trace, ctx.span);
        }
        None => line.push_str(" trace=- span=-"),
    }
    let _ = write!(line, " msg={}", quote(msg));
    for (key, value) in fields {
        let _ = write!(line, " {key}={}", quote(value));
    }
    line
}

/// Quotes a value only when the bare form would be ambiguous to split
/// on whitespace/`=`.
fn quote(v: &str) -> String {
    let bare = !v.is_empty()
        && v.chars().all(|c| !c.is_whitespace() && c != '"' && c != '=' && !c.is_control());
    if bare {
        v.to_owned()
    } else {
        let mut out = String::with_capacity(v.len() + 2);
        out.push('"');
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanContext, SpanId, TraceId};

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(LogLevel::parse("INFO"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse(" warning "), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("fatal"), None);
        assert!(LogLevel::Debug < LogLevel::Info);
        assert!(LogLevel::Warn < LogLevel::Error);
    }

    #[test]
    fn logger_filters_below_its_level() {
        let logger = Logger::new();
        assert!(logger.enabled(LogLevel::Info));
        assert!(!logger.enabled(LogLevel::Debug));
        logger.set_level(LogLevel::Error);
        assert_eq!(logger.level(), LogLevel::Error);
        assert!(!logger.enabled(LogLevel::Warn));
        logger.set_level(LogLevel::Debug);
        assert!(logger.enabled(LogLevel::Debug));
    }

    #[test]
    fn lines_carry_level_target_trace_and_fields() {
        let ctx = SpanContext {
            trace: TraceId(0x4bf9_2f35_77b3_4da6_a3ce_929d_0e0e_4736),
            span: SpanId(0x00f0_67aa_0ba9_02b7),
        };
        let line = format_line(
            LogLevel::Warn,
            "netd",
            Some(ctx),
            "slow span",
            &[("name", "job.run".to_owned()), ("dur_ms", "1500.0".to_owned())],
        );
        assert!(line.starts_with("ts="), "{line}");
        assert!(line.contains(" level=warn target=netd "), "{line}");
        assert!(line.contains(" trace=4bf92f3577b34da6a3ce929d0e0e4736 "), "{line}");
        assert!(line.contains(" span=00f067aa0ba902b7 "), "{line}");
        assert!(line.contains(" msg=\"slow span\" name=job.run dur_ms=1500.0"), "{line}");
    }

    #[test]
    fn spanless_lines_mark_ids_absent_and_quote_awkward_values() {
        let line = format_line(
            LogLevel::Info,
            "net",
            None,
            "accept failed",
            &[("err", "too many open files (os error 24)".to_owned()), ("empty", String::new())],
        );
        assert!(line.contains(" trace=- span=- "), "{line}");
        assert!(line.contains(" err=\"too many open files (os error 24)\""), "{line}");
        assert!(line.ends_with(" empty=\"\""), "{line}");
        // Quotes and backslashes survive escaping.
        assert_eq!(quote("a \"b\" \\c"), "\"a \\\"b\\\" \\\\c\"");
        assert_eq!(quote("plain-value"), "plain-value");
        assert_eq!(quote("k=v"), "\"k=v\"");
    }
}
