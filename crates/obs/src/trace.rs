//! Span tracing: per-job causal timelines, dependency-free.
//!
//! Aggregate metrics (the registry next door) answer "how slow are
//! jobs on average?"; this module answers "where did *this* job's 40
//! seconds go?". A [`Tracer`] records [`SpanRecord`]s — named
//! intervals with a monotonic start, a duration, a parent link, and a
//! few key=value attributes — into a lock-sharded bounded store with
//! whole-trace eviction, and renders any trace as Chrome trace-event
//! JSON ([`render_chrome_trace`]) loadable in Perfetto or
//! `chrome://tracing`.
//!
//! Trace identity follows the W3C Trace Context model: a 128-bit
//! [`TraceId`] names the whole causal tree, a 64-bit [`SpanId`] names
//! one interval, and a [`SpanContext`] (the pair) travels over the
//! wire as a `traceparent` header ([`SpanContext::traceparent`] /
//! [`SpanContext::parse_traceparent`]), so a client-minted trace id
//! shows up verbatim on the server's job-lifecycle spans.
//!
//! Like [`MetricsRegistry::disabled`](crate::MetricsRegistry::disabled),
//! [`Tracer::disabled`] makes every operation a cheap no-op branch:
//! instrumented code runs unchanged with zero recording overhead.
//!
//! As with the Prometheus exposition, the renderer ships with its own
//! parser ([`parse_chrome_trace`]) so clients and wire tests can
//! round-trip an export without guessing at the grammar.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

const SHARDS: usize = 16;

/// Spans retained by [`Tracer::new`] before the oldest traces evict.
pub const DEFAULT_SPAN_CAPACITY: usize = 16 * 1024;

/// Hard cap on spans retained per trace: a runaway job cannot evict
/// every other trace by flooding its own. Overflow increments
/// [`Tracer::dropped`] instead of recording.
const PER_TRACE_SPAN_CAP: usize = 4096;

/// Attributes retained per span; extras are silently dropped so a
/// buggy caller cannot balloon the store.
const MAX_ATTRS: usize = 8;

/// Spans slower than this default threshold log a `warn` line (see
/// [`Tracer::set_slow_span_threshold`]).
const DEFAULT_SLOW_SPAN: Duration = Duration::from_secs(1);

/// A 128-bit trace identifier (the W3C Trace Context `trace-id`).
/// Displays as 32 lowercase hex digits; the all-zero id is invalid on
/// the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u128);

impl TraceId {
    /// Parses exactly 32 lowercase-or-uppercase hex digits; rejects the
    /// all-zero id (invalid per the W3C spec).
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let value = u128::from_str_radix(s, 16).ok()?;
        (value != 0).then_some(TraceId(value))
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A 64-bit span identifier (the W3C Trace Context `parent-id`).
/// Displays as 16 hex digits; all-zero is invalid on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Parses exactly 16 hex digits; rejects the all-zero id.
    pub fn parse(s: &str) -> Option<SpanId> {
        if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let value = u64::from_str_radix(s, 16).ok()?;
        (value != 0).then_some(SpanId(value))
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A position in a trace: which trace, and which span new children
/// should name as their parent. This is what propagates — across
/// threads in-process, and as a `traceparent` header across the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The causal tree this context belongs to.
    pub trace: TraceId,
    /// The span children of this context hang under.
    pub span: SpanId,
}

impl SpanContext {
    /// Mints a fresh context (new trace, new span id) from the process
    /// id generator — how a client with no tracer of its own starts a
    /// trace to propagate via [`SpanContext::traceparent`].
    pub fn generate() -> SpanContext {
        SpanContext { trace: next_trace_id(), span: next_span_id() }
    }

    /// Renders the W3C `traceparent` header value:
    /// `00-{trace-id}-{parent-id}-01` (version 00, sampled flag set —
    /// everything this tracer records is sampled by construction).
    pub fn traceparent(&self) -> String {
        format!("00-{}-{}-01", self.trace, self.span)
    }

    /// Parses a W3C `traceparent` header value. Accepts any known
    /// version field except the reserved `ff`, per the spec's
    /// forward-compatibility rule; rejects malformed or all-zero ids.
    pub fn parse_traceparent(s: &str) -> Option<SpanContext> {
        let mut parts = s.trim().splitn(4, '-');
        let version = parts.next()?;
        if version.len() != 2 || !version.bytes().all(|b| b.is_ascii_hexdigit()) || version == "ff"
        {
            return None;
        }
        let trace = TraceId::parse(parts.next()?)?;
        let span = SpanId::parse(parts.next()?)?;
        let flags = parts.next()?;
        if flags.len() < 2 || !flags.as_bytes()[..2].iter().all(u8::is_ascii_hexdigit) {
            return None;
        }
        Some(SpanContext { trace, span })
    }
}

/// One completed span: a named interval inside a trace.
///
/// `start_ns` is nanoseconds since its tracer's epoch (a process-local
/// monotonic clock), so spans recorded from any thread order and nest
/// consistently; it is **not** wall-clock time.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's own id.
    pub span: SpanId,
    /// The enclosing span, `None` for a trace root.
    pub parent: Option<SpanId>,
    /// Static span name (`http.request`, `job.run`, `job.generation`…).
    pub name: &'static str,
    /// The job this span describes, when it describes one; groups the
    /// Chrome export into one `pid` lane per job.
    pub job: Option<u64>,
    /// Start offset in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Bounded key=value annotations (at most 8 retained).
    pub attrs: Vec<(&'static str, String)>,
}

/// Mixes a counter into well-distributed bits (splitmix64). Not
/// cryptographic — trace ids need global uniqueness in practice, not
/// unpredictability.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Process-wide id sequence, seeded once from wall-clock nanoseconds
/// (so two daemon lives do not mint colliding trace ids) and stepped
/// atomically (so two threads never mint the same id).
fn next_raw_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0x5eed, |since| since.as_nanos() as u64);
        nanos ^ (std::process::id() as u64).rotate_left(32)
    });
    splitmix64(seed.wrapping_add(SEQ.fetch_add(1, Ordering::Relaxed)))
}

fn next_span_id() -> SpanId {
    loop {
        let id = next_raw_id();
        if id != 0 {
            return SpanId(id);
        }
    }
}

fn next_trace_id() -> TraceId {
    loop {
        let id = ((next_raw_id() as u128) << 64) | next_raw_id() as u128;
        if id != 0 {
            return TraceId(id);
        }
    }
}

/// One shard of the span store: traces in arrival order plus their
/// spans. A trace lives entirely in the shard its id hashes to, so
/// eviction can drop it whole.
#[derive(Default)]
struct Shard {
    /// Trace ids in first-seen order (the eviction queue).
    order: VecDeque<TraceId>,
    spans: HashMap<u128, Vec<SpanRecord>>,
    /// Σ spans across `spans` (the capacity meter).
    held: usize,
}

struct TracerInner {
    shards: Vec<Mutex<Shard>>,
    /// Span budget per shard; a shard over budget evicts its oldest
    /// traces whole until it fits.
    shard_capacity: usize,
    epoch: Instant,
    dropped: AtomicU64,
    slow_ns: AtomicU64,
}

/// The span store and recording front door. Cheap to clone (an `Arc`
/// under the hood); [`Tracer::disabled`] carries no store at all and
/// turns every operation into a no-op branch.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Tracer")
                .field("shard_capacity", &inner.shard_capacity)
                .field("dropped", &inner.dropped.load(Ordering::Relaxed))
                .finish(),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// An enabled tracer retaining [`DEFAULT_SPAN_CAPACITY`] spans.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled tracer retaining about `capacity` spans across its
    /// shards before old traces evict whole.
    pub fn with_capacity(capacity: usize) -> Tracer {
        let inner = TracerInner {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: (capacity / SHARDS).max(1),
            epoch: Instant::now(),
            dropped: AtomicU64::new(0),
            slow_ns: AtomicU64::new(DEFAULT_SLOW_SPAN.as_nanos() as u64),
        };
        Tracer { inner: Some(Arc::new(inner)) }
    }

    /// A tracer that records nothing: spans start and end as no-ops,
    /// queries return empty. The zero-overhead off switch.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether this tracer records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since this tracer's epoch — the time base every
    /// [`SpanRecord::start_ns`] uses. 0 when disabled.
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.epoch.elapsed().as_nanos() as u64)
    }

    /// Spans slower than `threshold` log a `warn` line through the
    /// global [`Logger`](crate::Logger) when recorded.
    pub fn set_slow_span_threshold(&self, threshold: Duration) {
        if let Some(inner) = &self.inner {
            inner.slow_ns.store(threshold.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Starts a root span in a fresh trace. The returned guard records
    /// on drop (or [`Span::end`]).
    pub fn start_root(&self, name: &'static str) -> Span {
        self.start_span(name, next_trace_id(), None)
    }

    /// Starts a child span under `parent` (same trace, parent link set).
    /// This is also how a remote `traceparent` is adopted: parse it to
    /// a [`SpanContext`] and hand it here.
    pub fn start_child(&self, name: &'static str, parent: SpanContext) -> Span {
        self.start_span(name, parent.trace, Some(parent.span))
    }

    fn start_span(&self, name: &'static str, trace: TraceId, parent: Option<SpanId>) -> Span {
        if self.inner.is_none() {
            return Span { tracer: Tracer::disabled(), record: None, started: Instant::now() };
        }
        let record = SpanRecord {
            trace,
            span: next_span_id(),
            parent,
            name,
            job: None,
            start_ns: self.now_ns(),
            dur_ns: 0,
            attrs: Vec::new(),
        };
        Span { tracer: self.clone(), record: Some(record), started: Instant::now() }
    }

    /// Mints a span id from the process sequence (for manually-built
    /// [`SpanRecord`]s whose interval was measured out of band, like a
    /// queued span that starts on one thread and ends on another).
    pub fn span_id(&self) -> SpanId {
        next_span_id()
    }

    /// Mints a fresh trace id (for work with no inbound `traceparent`
    /// to adopt, like journal-replayed jobs).
    pub fn trace_id(&self) -> TraceId {
        next_trace_id()
    }

    /// Records a completed span built by the caller. No-op when
    /// disabled. Attributes beyond the per-span bound are dropped.
    pub fn record(&self, mut record: SpanRecord) {
        let Some(inner) = &self.inner else { return };
        record.attrs.truncate(MAX_ATTRS);
        let slow_ns = inner.slow_ns.load(Ordering::Relaxed);
        if record.dur_ns > slow_ns {
            crate::log::global().log(
                crate::LogLevel::Warn,
                "trace",
                Some(SpanContext { trace: record.trace, span: record.span }),
                "slow span",
                &[
                    ("name", record.name.to_owned()),
                    ("dur_ms", format!("{:.1}", record.dur_ns as f64 / 1e6)),
                ],
            );
        }
        let shard_index = (splitmix64(record.trace.0 as u64 ^ (record.trace.0 >> 64) as u64)
            % SHARDS as u64) as usize;
        let mut shard = inner.shards[shard_index].lock().expect("span shard poisoned");
        let entry = shard.spans.entry(record.trace.0).or_default();
        if entry.is_empty() {
            // First span of a new trace: enter the eviction queue.
            shard.order.push_back(record.trace);
            shard.spans.get_mut(&record.trace.0).expect("just inserted").push(record);
        } else if entry.len() >= PER_TRACE_SPAN_CAP {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        } else {
            entry.push(record);
        }
        shard.held += 1;
        // Over budget: evict oldest traces whole — a trace with its
        // tail missing is worse than no trace at all. The newest trace
        // always survives its own insertion.
        while shard.held > inner.shard_capacity && shard.order.len() > 1 {
            let Some(oldest) = shard.order.pop_front() else { break };
            if let Some(evicted) = shard.spans.remove(&oldest.0) {
                shard.held -= evicted.len();
            }
        }
    }

    /// Every retained span of one trace, ordered by start time.
    pub fn spans_for(&self, trace: TraceId) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else { return Vec::new() };
        let shard_index =
            (splitmix64(trace.0 as u64 ^ (trace.0 >> 64) as u64) % SHARDS as u64) as usize;
        let shard = inner.shards[shard_index].lock().expect("span shard poisoned");
        let mut spans = shard.spans.get(&trace.0).cloned().unwrap_or_default();
        spans.sort_by_key(|s| s.start_ns);
        spans
    }

    /// The newest `limit` retained spans across every trace, ordered by
    /// start time (the `GET /trace` overview).
    pub fn recent(&self, limit: usize) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else { return Vec::new() };
        let mut all: Vec<SpanRecord> = Vec::new();
        for shard in &inner.shards {
            let shard = shard.lock().expect("span shard poisoned");
            for spans in shard.spans.values() {
                all.extend(spans.iter().cloned());
            }
        }
        all.sort_by_key(|s| std::cmp::Reverse(s.start_ns));
        all.truncate(limit);
        all.reverse();
        all
    }

    /// Spans refused because their trace hit the per-trace cap.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.dropped.load(Ordering::Relaxed))
    }
}

/// A live span: created by [`Tracer::start_root`]/[`Tracer::start_child`],
/// recorded when dropped (or explicitly via [`Span::end`]). From a
/// disabled tracer every method is a no-op.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    record: Option<SpanRecord>,
    started: Instant,
}

impl Span {
    /// This span's context — what children (local or remote) should
    /// name as their parent. A no-op span returns `None`.
    pub fn context(&self) -> Option<SpanContext> {
        self.record.as_ref().map(|r| SpanContext { trace: r.trace, span: r.span })
    }

    /// Attaches one key=value attribute (bounded; extras are dropped).
    pub fn set_attr(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(record) = &mut self.record {
            if record.attrs.len() < MAX_ATTRS {
                record.attrs.push((key, value.into()));
            }
        }
    }

    /// Tags the span with the job it describes (its Chrome `pid` lane).
    pub fn set_job(&mut self, job: u64) {
        if let Some(record) = &mut self.record {
            record.job = Some(job);
        }
    }

    /// Ends and records the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(mut record) = self.record.take() {
            record.dur_ns = self.started.elapsed().as_nanos() as u64;
            self.tracer.record(record);
        }
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event export.

/// Renders spans as Chrome trace-event JSON (the "JSON Array Format"
/// with a `traceEvents` wrapper), loadable in Perfetto and
/// `chrome://tracing`. Each span becomes one complete (`"ph":"X"`)
/// event: `ts`/`dur` in microseconds, `pid` = the span's job id (0 for
/// request-level spans), `tid` = 1 for job spans / 0 for request
/// spans, and the trace/span/parent ids carried in `args`. A
/// `process_name` metadata event labels each job lane.
pub fn render_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(256 + spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut lanes: Vec<u64> = Vec::new();
    for span in spans {
        let pid = span.job.unwrap_or(0);
        if !lanes.contains(&pid) {
            lanes.push(pid);
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n{{\"name\":{},\"cat\":\"digamma\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":{pid},\"tid\":{}",
            json_string(span.name),
            span.start_ns as f64 / 1e3,
            span.dur_ns as f64 / 1e3,
            u64::from(span.job.is_some()),
        );
        let _ = write!(out, ",\"args\":{{\"trace\":\"{}\",\"span\":\"{}\"", span.trace, span.span);
        if let Some(parent) = span.parent {
            let _ = write!(out, ",\"parent\":\"{parent}\"");
        }
        for (key, value) in &span.attrs {
            let _ = write!(out, ",{}:{}", json_string(key), json_string(value));
        }
        out.push_str("}}");
    }
    for pid in lanes {
        if !first {
            out.push(',');
        }
        first = false;
        let name = if pid == 0 { "digamma-net requests".to_owned() } else { format!("job {pid}") };
        let _ = write!(
            out,
            "\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            json_string(&name)
        );
    }
    out.push_str("\n]}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One event parsed back out of a Chrome trace-event export.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name (the span name, or `process_name` for metadata).
    pub name: String,
    /// Event phase: `X` for complete spans, `M` for metadata.
    pub ph: String,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds (0 for metadata events).
    pub dur: f64,
    /// Process lane (the job id, 0 for request-level spans).
    pub pid: u64,
    /// Thread lane within the process.
    pub tid: u64,
    /// The event's `args` object, flattened to string pairs.
    pub args: Vec<(String, String)>,
}

impl ChromeEvent {
    /// Looks up one `args` value.
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parses a Chrome trace-event export (what [`render_chrome_trace`]
/// emits; also accepts the bare-array form). Built on a small strict
/// JSON reader, so it doubles as a well-formedness check in tests and
/// the CI trace probe.
///
/// # Errors
///
/// Returns a description of the first syntax or shape problem.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let value = JsonParser { bytes: text.as_bytes(), at: 0 }.parse_document()?;
    let events = match &value {
        Json::Array(items) => items,
        Json::Object(fields) => match fields.iter().find(|(k, _)| k == "traceEvents") {
            Some((_, Json::Array(items))) => items,
            _ => return Err("root object lacks a traceEvents array".to_owned()),
        },
        _ => return Err("root must be an object or array".to_owned()),
    };
    let mut out = Vec::with_capacity(events.len());
    for (i, event) in events.iter().enumerate() {
        let Json::Object(fields) = event else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let string = |key: &str| match get(key) {
            Some(Json::String(s)) => Ok(s.clone()),
            _ => Err(format!("traceEvents[{i}] lacks string {key:?}")),
        };
        let number = |key: &str, required: bool| match get(key) {
            Some(Json::Number(n)) => Ok(*n),
            None if !required => Ok(0.0),
            _ => Err(format!("traceEvents[{i}] lacks number {key:?}")),
        };
        let mut args = Vec::new();
        if let Some(Json::Object(arg_fields)) = get("args") {
            for (k, v) in arg_fields {
                let rendered = match v {
                    Json::String(s) => s.clone(),
                    Json::Number(n) => format!("{n}"),
                    Json::Bool(b) => b.to_string(),
                    Json::Null => "null".to_owned(),
                    _ => continue,
                };
                args.push((k.clone(), rendered));
            }
        }
        out.push(ChromeEvent {
            name: string("name")?,
            ph: string("ph")?,
            ts: number("ts", false)?,
            dur: number("dur", false)?,
            pid: number("pid", true)? as u64,
            tid: number("tid", true)? as u64,
            args,
        });
    }
    Ok(out)
}

/// Minimal JSON value tree for [`parse_chrome_trace`].
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// A small strict recursive-descent JSON reader (objects as ordered
/// pairs; no external crates, like everything else here).
struct JsonParser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl JsonParser<'_> {
    fn parse_document(mut self) -> Result<Json, String> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.at != self.bytes.len() {
            return Err(format!("trailing content at byte {}", self.at));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.at).is_some_and(|b| b.is_ascii_whitespace()) {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.at).copied().ok_or_else(|| "unexpected end of input".to_owned())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.at))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Json::String(self.parse_string()?)),
            b't' => self.parse_literal("true", Json::Bool(true)),
            b'f' => self.parse_literal("false", Json::Bool(false)),
            b'n' => self.parse_literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(format!("unexpected {:?} at byte {}", other as char, self.at)),
        }
    }

    fn parse_literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.bytes.get(self.at) == Some(&b'-') {
            self.at += 1;
        }
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.at).ok_or_else(|| "unterminated string".to_owned())?;
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let escape =
                        *self.bytes.get(self.at).ok_or_else(|| "unterminated escape".to_owned())?;
                    self.at += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.at))?;
                            self.at += 4;
                            // Surrogate pairs are not reassembled; the
                            // exporter never emits them.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Re-read the full UTF-8 sequence from the byte
                    // stream (multi-byte chars arrive byte-at-a-time).
                    let start = self.at - 1;
                    let width = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let slice = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| "truncated UTF-8".to_owned())?;
                    let s = std::str::from_utf8(slice).map_err(|_| "invalid UTF-8".to_owned())?;
                    out.push_str(s);
                    self.at = start + width;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.at += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.at += 1,
                b']' => {
                    self.at += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected ',' or ']' got {:?}", other as char)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.at += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            fields.push((key, self.parse_value()?));
            match self.peek()? {
                b',' => self.at += 1,
                b'}' => {
                    self.at += 1;
                    return Ok(Json::Object(fields));
                }
                other => return Err(format!("expected ',' or '}}' got {:?}", other as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_and_parse_as_fixed_width_hex() {
        let trace = TraceId(0x4bf9_2f35_77b3_4da6_a3ce_929d_0e0e_4736);
        assert_eq!(trace.to_string(), "4bf92f3577b34da6a3ce929d0e0e4736");
        assert_eq!(TraceId::parse(&trace.to_string()), Some(trace));
        assert_eq!(TraceId::parse("00000000000000000000000000000000"), None, "zero is invalid");
        assert_eq!(TraceId::parse("4bf92f35"), None, "short");
        let span = SpanId(0x00f0_67aa_0ba9_02b7);
        assert_eq!(span.to_string(), "00f067aa0ba902b7");
        assert_eq!(SpanId::parse(&span.to_string()), Some(span));
        assert_eq!(SpanId::parse("0000000000000000"), None);
    }

    #[test]
    fn traceparent_roundtrips_and_rejects_malformed() {
        let ctx = SpanContext {
            trace: TraceId(0x4bf9_2f35_77b3_4da6_a3ce_929d_0e0e_4736),
            span: SpanId(0x00f0_67aa_0ba9_02b7),
        };
        let header = ctx.traceparent();
        assert_eq!(header, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01");
        assert_eq!(SpanContext::parse_traceparent(&header), Some(ctx));
        // Future versions parse (forward compat), ff does not.
        assert!(SpanContext::parse_traceparent(&header.replacen("00-", "cc-", 1)).is_some());
        assert!(SpanContext::parse_traceparent(&header.replacen("00-", "ff-", 1)).is_none());
        assert!(SpanContext::parse_traceparent("garbage").is_none());
        assert!(SpanContext::parse_traceparent(
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01"
        )
        .is_none());
        assert!(SpanContext::parse_traceparent(
            "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"
        )
        .is_none());
    }

    #[test]
    fn ids_are_unique_across_calls() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(next_span_id().0), "span ids must not repeat");
        }
    }

    #[test]
    fn spans_nest_under_parents_and_sort_by_start() {
        let tracer = Tracer::new();
        let mut root = tracer.start_root("http.request");
        root.set_attr("method", "POST");
        let root_ctx = root.context().unwrap();
        let mut child = tracer.start_child("job.run", root_ctx);
        child.set_job(7);
        let child_ctx = child.context().unwrap();
        assert_eq!(child_ctx.trace, root_ctx.trace, "children share the trace");
        child.end();
        root.end();
        let spans = tracer.spans_for(root_ctx.trace);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "http.request");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].attrs, vec![("method", "POST".to_owned())]);
        assert_eq!(spans[1].name, "job.run");
        assert_eq!(spans[1].parent, Some(root_ctx.span));
        assert_eq!(spans[1].job, Some(7));
        assert!(spans[1].start_ns >= spans[0].start_ns);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        let mut span = tracer.start_root("anything");
        span.set_attr("k", "v");
        assert_eq!(span.context(), None);
        span.end();
        assert!(tracer.recent(10).is_empty());
        assert_eq!(tracer.now_ns(), 0);
        assert_eq!(tracer.dropped(), 0);
    }

    /// Builds one single-span trace directly (no guard timing).
    fn manual_trace(tracer: &Tracer, start_ns: u64) -> TraceId {
        let trace = next_trace_id();
        tracer.record(SpanRecord {
            trace,
            span: tracer.span_id(),
            parent: None,
            name: "manual",
            job: None,
            start_ns,
            dur_ns: 10,
            attrs: Vec::new(),
        });
        trace
    }

    #[test]
    fn store_evicts_oldest_traces_whole() {
        // Capacity 16 spans over 16 shards = 1 span per shard: any two
        // traces landing in one shard evict down to the newest.
        let tracer = Tracer::with_capacity(16);
        let traces: Vec<TraceId> = (0..64).map(|i| manual_trace(&tracer, i)).collect();
        let mut survivors = 0;
        for trace in &traces {
            let spans = tracer.spans_for(*trace);
            assert!(spans.len() <= 1);
            survivors += spans.len();
        }
        assert!(survivors <= 16, "capacity must bound retention, kept {survivors}");
        assert!(survivors >= 1, "the newest trace always survives");
        // Whole-trace eviction: a surviving trace has its span intact,
        // an evicted one has nothing (never a partial tail).
        let recent = tracer.recent(1000);
        assert_eq!(recent.len(), survivors);
    }

    #[test]
    fn per_trace_cap_drops_extras_not_other_traces() {
        let tracer = Tracer::with_capacity(1 << 20);
        let trace = next_trace_id();
        for i in 0..(PER_TRACE_SPAN_CAP + 100) {
            tracer.record(SpanRecord {
                trace,
                span: tracer.span_id(),
                parent: None,
                name: "flood",
                job: Some(1),
                start_ns: i as u64,
                dur_ns: 1,
                attrs: Vec::new(),
            });
        }
        assert_eq!(tracer.spans_for(trace).len(), PER_TRACE_SPAN_CAP);
        assert_eq!(tracer.dropped(), 100);
    }

    #[test]
    fn recent_returns_newest_spans_in_start_order() {
        let tracer = Tracer::new();
        for i in 0..10 {
            manual_trace(&tracer, 1000 + i);
        }
        let recent = tracer.recent(4);
        assert_eq!(recent.len(), 4);
        let starts: Vec<u64> = recent.iter().map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![1006, 1007, 1008, 1009]);
    }

    #[test]
    fn chrome_export_roundtrips_through_the_parser() {
        let tracer = Tracer::new();
        let mut root = tracer.start_root("http.request");
        root.set_attr("path", "/jobs");
        root.set_attr("quote", "a \"b\"\n");
        let ctx = root.context().unwrap();
        let mut child = tracer.start_child("job.run", ctx);
        child.set_job(3);
        child.end();
        root.end();
        let spans = tracer.spans_for(ctx.trace);
        let json = render_chrome_trace(&spans);
        let events = parse_chrome_trace(&json).expect("export must parse");
        let complete: Vec<&ChromeEvent> = events.iter().filter(|e| e.ph == "X").collect();
        assert_eq!(complete.len(), 2);
        for event in &complete {
            assert!(event.ts >= 0.0 && event.dur >= 0.0);
            assert_eq!(event.arg("trace"), Some(ctx.trace.to_string().as_str()));
        }
        let request = complete.iter().find(|e| e.name == "http.request").unwrap();
        assert_eq!((request.pid, request.tid), (0, 0));
        assert_eq!(request.arg("path"), Some("/jobs"));
        assert_eq!(request.arg("quote"), Some("a \"b\"\n"), "escaping must round-trip");
        let run = complete.iter().find(|e| e.name == "job.run").unwrap();
        assert_eq!((run.pid, run.tid), (3, 1));
        assert_eq!(run.arg("parent"), Some(ctx.span.to_string().as_str()));
        // Metadata lanes: one process_name per pid.
        let meta: Vec<&ChromeEvent> = events.iter().filter(|e| e.ph == "M").collect();
        assert_eq!(meta.len(), 2);
        assert!(meta.iter().any(|m| m.pid == 3 && m.arg("name") == Some("job 3")));
    }

    #[test]
    fn chrome_parser_rejects_structural_damage() {
        let tracer = Tracer::new();
        let trace = manual_trace(&tracer, 5);
        let json = render_chrome_trace(&tracer.spans_for(trace));
        assert!(parse_chrome_trace(&json[..json.len() - 4]).is_err(), "truncation must fail");
        assert!(parse_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(parse_chrome_trace("[{\"name\":\"x\"}]").is_err(), "events need ph/pid/tid");
        assert!(parse_chrome_trace("[]").unwrap().is_empty(), "empty array is fine");
        assert!(parse_chrome_trace("{\"traceEvents\":[]} junk").is_err());
    }

    #[test]
    fn empty_export_is_still_wellformed() {
        let json = render_chrome_trace(&[]);
        assert!(parse_chrome_trace(&json).unwrap().is_empty());
    }
}
