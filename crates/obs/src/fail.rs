//! Deterministic, dependency-free fault injection.
//!
//! A *failpoint* is a named site in the code that asks, each time it is
//! reached, whether an injected fault should fire there. Production
//! code compiles the question down to one relaxed atomic load: with no
//! failpoints configured (the default), [`fired`] returns `None`
//! without taking any lock. Tests and the `digamma-netd --failpoints`
//! flag arm points with a spec string:
//!
//! ```text
//! SPEC  := POINT (';' POINT)*
//! POINT := NAME '=' ACTION (',' MOD)*
//! ACTION := panic | err | enospc | short | drop | delay:MS
//! MOD    := once | nth:N | every:N | times:N | p:F | seed:N
//! ```
//!
//! Examples:
//!
//! * `worker.eval=panic,nth:2` — panic on the second evaluation hit only
//! * `journal.append=short,once` — tear the first journal append
//! * `cache.spill=enospc,once` — one disk-full spill
//! * `sock.read=err,p:0.2,seed:7` — fail ~20% of socket reads, seeded
//!
//! Triggers are deterministic: `once` fires on the first hit, `nth:N`
//! on exactly the Nth hit, `every:N` on every Nth, and `p:F` draws from
//! a seeded xorshift stream so a given seed always fires on the same
//! hit sequence. `times:N` caps total firings of a point. The *action*
//! is advice to the call site — storage sites map [`FailAction::Short`]
//! to a torn write and [`FailAction::Enospc`] to a disk-full error,
//! socket sites map [`FailAction::Drop`] to closing the connection,
//! worker sites honor [`FailAction::Panic`] — so one framework serves
//! every failure domain without knowing any of them.
//!
//! Everything here is process-global by design (the daemon arms it once
//! at startup, separate test daemons each arm their own), but the logic
//! lives in [`FailSet`], which unit tests instantiate locally so
//! parallel tests never fight over shared state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What a fired failpoint asks its call site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic at the call site (the worker-eval domain).
    Panic,
    /// Fail with a generic injected I/O error.
    Err,
    /// Fail with `ENOSPC` (disk full).
    Enospc,
    /// Write only a prefix of the data (a torn/short write).
    Short,
    /// Drop the connection / stream mid-operation.
    Drop,
    /// Sleep this many milliseconds, then proceed normally.
    Delay(u64),
}

impl FailAction {
    /// The I/O error this action injects, for storage/socket sites:
    /// `Err` and `Enospc` map to errors tagged `injected fault`, every
    /// other action returns `None` (the site handles it differently).
    pub fn to_io_error(self, point: &str) -> Option<std::io::Error> {
        match self {
            FailAction::Err => {
                Some(std::io::Error::other(format!("injected fault at failpoint {point:?}")))
            }
            // Raw ENOSPC so callers that match on the OS error see the
            // real thing, message notwithstanding.
            FailAction::Enospc => Some(std::io::Error::from_raw_os_error(28)),
            _ => None,
        }
    }
}

/// When a point fires, relative to its hit count.
#[derive(Debug, Clone, Copy)]
enum Trigger {
    /// Every hit.
    Always,
    /// The first hit only.
    Once,
    /// Exactly the Nth hit (1-based).
    Nth(u64),
    /// Every Nth hit (1-based: N, 2N, ...).
    Every(u64),
    /// Each hit independently with probability `p`, from a seeded
    /// xorshift stream.
    Prob(f64),
}

/// One armed failpoint. Hit bookkeeping is atomic so evaluation never
/// blocks behind another thread's hit.
#[derive(Debug)]
struct FailPoint {
    action: FailAction,
    trigger: Trigger,
    /// Cap on total firings (`times:N`); `u64::MAX` when uncapped.
    max_fires: u64,
    hits: AtomicU64,
    fires: AtomicU64,
    /// xorshift64* state for `Prob`.
    rng: AtomicU64,
}

impl FailPoint {
    /// Evaluates one hit: advances the counters and reports the action
    /// if the trigger fires.
    fn hit(&self) -> Option<FailAction> {
        let n = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
        let fires = match self.trigger {
            Trigger::Always => true,
            Trigger::Once => n == 1,
            Trigger::Nth(k) => n == k,
            Trigger::Every(k) => k > 0 && n.is_multiple_of(k),
            Trigger::Prob(p) => {
                // Seeded xorshift64*: each hit consumes one draw, so a
                // given seed fires on the same hit indices every run.
                let mut x = self.rng.load(Ordering::Relaxed);
                loop {
                    let mut next = x;
                    next ^= next >> 12;
                    next ^= next << 25;
                    next ^= next >> 27;
                    match self.rng.compare_exchange_weak(
                        x,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let draw = next.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
                            break (draw as f64 / (1u64 << 53) as f64) < p;
                        }
                        Err(current) => x = current,
                    }
                }
            }
        };
        if !fires {
            return None;
        }
        // `times:N` cap: claim a firing slot atomically.
        let prior = self.fires.fetch_add(1, Ordering::Relaxed);
        if prior >= self.max_fires {
            return None;
        }
        Some(self.action)
    }
}

/// Hit/fire counts for one point, as [`FailSet::snapshot`] reports them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailStat {
    /// The point's name.
    pub name: String,
    /// Times the site was reached.
    pub hits: u64,
    /// Times the trigger fired.
    pub fires: u64,
}

/// A set of armed failpoints. The process-global instance behind
/// [`global`] is what production code consults; tests build their own.
#[derive(Debug, Default)]
pub struct FailSet {
    /// Fast path: `false` means no point is armed and [`FailSet::fired`]
    /// returns immediately.
    active: AtomicBool,
    points: Mutex<HashMap<String, Arc<FailPoint>>>,
}

impl FailSet {
    /// An empty (inactive) set.
    pub fn new() -> FailSet {
        FailSet::default()
    }

    /// Whether any point is armed.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Replaces the armed points with the ones described by `spec`
    /// (grammar in the module docs). An empty spec disarms everything.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed point.
    pub fn configure(&self, spec: &str) -> Result<(), String> {
        let parsed = parse_spec(spec)?;
        let mut points = self.points.lock().expect("failpoint table poisoned");
        points.clear();
        for (name, point) in parsed {
            points.insert(name, Arc::new(point));
        }
        self.active.store(!points.is_empty(), Ordering::Relaxed);
        Ok(())
    }

    /// Disarms every point and resets counters.
    pub fn clear(&self) {
        let mut points = self.points.lock().expect("failpoint table poisoned");
        points.clear();
        self.active.store(false, Ordering::Relaxed);
    }

    /// The hot-path question: did the named point fire on this hit?
    /// One relaxed load when nothing is armed.
    pub fn fired(&self, name: &str) -> Option<FailAction> {
        if !self.active.load(Ordering::Relaxed) {
            return None;
        }
        let point = {
            let points = self.points.lock().expect("failpoint table poisoned");
            points.get(name).cloned()
        };
        let action = point?.hit()?;
        if let FailAction::Delay(ms) = action {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        Some(action)
    }

    /// Hit/fire counts for every armed point, sorted by name.
    pub fn snapshot(&self) -> Vec<FailStat> {
        let points = self.points.lock().expect("failpoint table poisoned");
        let mut stats: Vec<FailStat> = points
            .iter()
            .map(|(name, p)| FailStat {
                name: name.clone(),
                hits: p.hits.load(Ordering::Relaxed),
                fires: p.fires.load(Ordering::Relaxed).min(p.max_fires),
            })
            .collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }
}

/// Checks a spec parses without arming anything — `--failpoints` calls
/// this to reject a bad spec before the daemon starts.
///
/// # Errors
///
/// Returns a description of the first malformed point.
pub fn validate_spec(spec: &str) -> Result<(), String> {
    parse_spec(spec).map(|_| ())
}

/// Parses a spec into named points (grammar in the module docs).
fn parse_spec(spec: &str) -> Result<Vec<(String, FailPoint)>, String> {
    let mut out = Vec::new();
    for raw in spec.split(';') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let (name, rest) = raw
            .split_once('=')
            .ok_or_else(|| format!("failpoint {raw:?} needs NAME=ACTION[,MOD...]"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("failpoint {raw:?} has an empty name"));
        }
        let mut tokens = rest.split(',').map(str::trim);
        let action_token = tokens.next().filter(|t| !t.is_empty()).ok_or_else(|| {
            format!("failpoint {name:?} needs an action (panic/err/enospc/short/drop/delay:MS)")
        })?;
        let action = match action_token.split_once(':') {
            None => match action_token {
                "panic" => FailAction::Panic,
                "err" => FailAction::Err,
                "enospc" => FailAction::Enospc,
                "short" => FailAction::Short,
                "drop" => FailAction::Drop,
                other => return Err(format!("failpoint {name:?}: unknown action {other:?}")),
            },
            Some(("delay", ms)) => FailAction::Delay(
                ms.parse().map_err(|_| format!("failpoint {name:?}: delay needs milliseconds"))?,
            ),
            Some((other, _)) => {
                return Err(format!("failpoint {name:?}: unknown action {other:?}"))
            }
        };
        let mut trigger = Trigger::Always;
        let mut max_fires = u64::MAX;
        let mut seed = None;
        for token in tokens {
            if token.is_empty() {
                return Err(format!("failpoint {name:?} has an empty modifier"));
            }
            match token.split_once(':') {
                None if token == "once" => trigger = Trigger::Once,
                Some(("nth", v)) => {
                    let n: u64 = v
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("failpoint {name:?}: nth needs N >= 1"))?;
                    trigger = Trigger::Nth(n);
                }
                Some(("every", v)) => {
                    let n: u64 = v
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("failpoint {name:?}: every needs N >= 1"))?;
                    trigger = Trigger::Every(n);
                }
                Some(("times", v)) => {
                    max_fires = v
                        .parse()
                        .map_err(|_| format!("failpoint {name:?}: times needs a count"))?;
                }
                Some(("p", v)) => {
                    let p: f64 = v
                        .parse()
                        .ok()
                        .filter(|p| (0.0..=1.0).contains(p))
                        .ok_or_else(|| format!("failpoint {name:?}: p needs 0.0..=1.0"))?;
                    trigger = Trigger::Prob(p);
                }
                Some(("seed", v)) => {
                    seed = Some(
                        v.parse::<u64>()
                            .map_err(|_| format!("failpoint {name:?}: seed needs an integer"))?,
                    );
                }
                _ => return Err(format!("failpoint {name:?}: unknown modifier {token:?}")),
            }
        }
        // Default probability seed: a stable hash of the point name, so
        // unseeded probabilistic points are still run-to-run stable.
        let seed = seed.unwrap_or_else(|| {
            name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
            })
        });
        out.push((
            name.to_owned(),
            FailPoint {
                action,
                trigger,
                max_fires,
                hits: AtomicU64::new(0),
                fires: AtomicU64::new(0),
                // xorshift state must be non-zero.
                rng: AtomicU64::new(seed | 1),
            },
        ));
    }
    Ok(out)
}

/// The process-global failpoint set (what [`fired`] consults).
pub fn global() -> &'static FailSet {
    static GLOBAL: OnceLock<FailSet> = OnceLock::new();
    GLOBAL.get_or_init(FailSet::new)
}

/// Did the named global failpoint fire on this hit? The production
/// fast path: one relaxed atomic load when nothing is armed.
#[inline]
pub fn fired(name: &str) -> Option<FailAction> {
    global().fired(name)
}

/// Whether any global failpoint is armed.
#[inline]
pub fn active() -> bool {
    global().is_active()
}

/// Arms the global set from a spec (see [`FailSet::configure`]).
///
/// # Errors
///
/// Returns a description of the first malformed point.
pub fn configure(spec: &str) -> Result<(), String> {
    global().configure(spec)
}

/// Panics if the named global failpoint fires with [`FailAction::Panic`]
/// (any other action is ignored here) — the one-liner for worker sites.
pub fn maybe_panic(name: &str) {
    if fired(name) == Some(FailAction::Panic) {
        panic!("injected panic at failpoint {name:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed(spec: &str) -> FailSet {
        let set = FailSet::new();
        set.configure(spec).expect("valid spec");
        set
    }

    #[test]
    fn inactive_set_never_fires() {
        let set = FailSet::new();
        assert!(!set.is_active());
        assert_eq!(set.fired("anything"), None);
        assert!(set.snapshot().is_empty());
    }

    #[test]
    fn once_fires_exactly_once() {
        let set = armed("j.append=short,once");
        assert_eq!(set.fired("j.append"), Some(FailAction::Short));
        for _ in 0..10 {
            assert_eq!(set.fired("j.append"), None);
        }
        let stats = set.snapshot();
        assert_eq!(stats.len(), 1);
        assert_eq!((stats[0].hits, stats[0].fires), (11, 1));
    }

    #[test]
    fn nth_fires_on_exactly_the_nth_hit() {
        let set = armed("w.eval=panic,nth:3");
        assert_eq!(set.fired("w.eval"), None);
        assert_eq!(set.fired("w.eval"), None);
        assert_eq!(set.fired("w.eval"), Some(FailAction::Panic));
        assert_eq!(set.fired("w.eval"), None);
    }

    #[test]
    fn every_fires_periodically_and_times_caps_firings() {
        let set = armed("s.read=err,every:2,times:2");
        let fires: Vec<bool> = (0..8).map(|_| set.fired("s.read").is_some()).collect();
        assert_eq!(fires, vec![false, true, false, true, false, false, false, false]);
    }

    #[test]
    fn probability_is_seeded_and_reproducible() {
        let a = armed("x=err,p:0.5,seed:42");
        let b = armed("x=err,p:0.5,seed:42");
        let run =
            |set: &FailSet| -> Vec<bool> { (0..64).map(|_| set.fired("x").is_some()).collect() };
        let fires = run(&a);
        assert_eq!(fires, run(&b), "same seed, same firing sequence");
        let count = fires.iter().filter(|&&f| f).count();
        assert!((16..=48).contains(&count), "p=0.5 over 64 draws fired {count} times");
    }

    #[test]
    fn unknown_points_do_not_fire_and_unnamed_points_are_rejected() {
        let set = armed("a=err");
        assert_eq!(set.fired("b"), None);
        assert!(parse_spec("=err").is_err());
        assert!(parse_spec("a").is_err());
        assert!(parse_spec("a=explode").is_err());
        assert!(parse_spec("a=err,p:1.5").is_err());
        assert!(parse_spec("a=err,nth:0").is_err());
        assert!(parse_spec("a=delay").is_err());
    }

    #[test]
    fn multi_point_specs_and_reconfigure() {
        let set = armed("a=panic,once; b=enospc,nth:2 ; c=delay:0");
        assert_eq!(set.fired("a"), Some(FailAction::Panic));
        assert_eq!(set.fired("b"), None);
        assert_eq!(set.fired("b"), Some(FailAction::Enospc));
        assert_eq!(set.fired("c"), Some(FailAction::Delay(0)));
        set.configure("").unwrap();
        assert!(!set.is_active());
        assert_eq!(set.fired("a"), None);
    }

    #[test]
    fn io_error_mapping() {
        assert_eq!(FailAction::Enospc.to_io_error("p").map(|e| e.raw_os_error()), Some(Some(28)));
        assert!(FailAction::Err.to_io_error("p").is_some());
        assert!(FailAction::Short.to_io_error("p").is_none());
        assert!(FailAction::Panic.to_io_error("p").is_none());
    }

    #[test]
    #[should_panic(expected = "injected panic at failpoint")]
    fn maybe_panic_panics_when_armed() {
        // The global set: use a name no other test arms.
        configure("test.maybe_panic=panic,once").unwrap();
        maybe_panic("test.maybe_panic");
    }
}
