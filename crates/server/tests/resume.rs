//! Checkpoint/resume determinism, end to end: a search killed mid-run
//! and resumed from its text snapshot finishes **bit-identically** to a
//! search that was never interrupted — same history (to the bit), same
//! best genome, same sample count.

use digamma::{CoOptProblem, DiGamma, DiGammaConfig, Objective, SearchResult};
use digamma_costmodel::Platform;
use digamma_server::{JobAlgorithm, JobSpec, SearchServer, ServerConfig, Snapshot};
use digamma_workload::zoo;

fn problem() -> CoOptProblem {
    CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency)
}

fn searcher(seed: u64) -> DiGamma {
    DiGamma::new(DiGammaConfig { population_size: 16, seed, threads: 1, ..Default::default() })
}

fn assert_bit_identical(a: &SearchResult, b: &SearchResult) {
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.history.len(), b.history.len());
    for (i, (x, y)) in a.history.iter().zip(&b.history).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "history diverges at sample {i}");
    }
    let (ba, bb) = (a.best.as_ref().unwrap(), b.best.as_ref().unwrap());
    assert_eq!(ba.genome, bb.genome);
    assert_eq!(ba.cost.to_bits(), bb.cost.to_bits());
    assert_eq!(ba.hw, bb.hw);
}

/// The issue's acceptance shape: run the full budget in one go, versus
/// run half, snapshot to *text*, parse it back, restore, run the rest.
#[test]
fn snapshot_restore_resumes_bit_identically() {
    let problem = problem();
    let ga = searcher(41);
    const BUDGET: usize = 640; // 40 generations of 16

    let uninterrupted = ga.search(&problem, BUDGET);

    // First half, then "kill" the process: all that survives is text.
    let mut state = ga.init(&problem, BUDGET);
    while state.samples() < BUDGET / 2 && ga.step(&problem, &mut state, BUDGET) {}
    let text = Snapshot::capture("job", &state).render();
    drop(state);

    // A fresh searcher (as a new process would build) restores and runs
    // the second half.
    let ga2 = searcher(41);
    let snapshot = Snapshot::parse(&text).expect("snapshot text parses");
    let mut resumed = snapshot.restore(&ga2, &problem, "job").expect("fingerprint matches");
    assert_eq!(resumed.samples(), BUDGET / 2);
    while ga2.step(&problem, &mut resumed, BUDGET) {}

    assert_bit_identical(&uninterrupted, &resumed.into_result());
}

/// Several kills in a row — each leg restores from the previous leg's
/// snapshot — still land on the uninterrupted trajectory.
#[test]
fn repeated_kills_compose() {
    let problem = problem();
    let ga = searcher(17);
    const BUDGET: usize = 480;
    let uninterrupted = ga.search(&problem, BUDGET);

    let mut text = {
        let state = ga.init(&problem, BUDGET);
        Snapshot::capture("j", &state).render()
    };
    let final_state = loop {
        let snap = Snapshot::parse(&text).unwrap();
        let mut state = snap.restore(&ga, &problem, "j").unwrap();
        // Run a couple of generations, then "crash" again.
        for _ in 0..2 {
            ga.step(&problem, &mut state, BUDGET);
        }
        if state.samples() >= BUDGET {
            break state;
        }
        text = Snapshot::capture("j", &state).render();
    };
    assert_bit_identical(&uninterrupted, &final_state.into_result());
}

/// The same guarantee through the server: a job whose checkpoint file
/// survives a kill resumes (the report says from which generation) and
/// produces the uninterrupted result; the checkpoint is cleaned up on
/// completion.
#[test]
fn server_resumes_from_surviving_checkpoint() {
    let dir = std::env::temp_dir().join(format!("digamma-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut job = JobSpec::new(
        "resnet-edge",
        zoo::ncf(),
        Platform::edge(),
        Objective::Latency,
        JobAlgorithm::DiGamma,
    );
    job.budget = 320;
    job.population_size = 16;
    job.seed = 9;

    // The uninterrupted reference, cache-less and checkpoint-less.
    let plain =
        SearchServer::new(ServerConfig { workers: 1, cache_capacity: 0, ..Default::default() });
    let reference = plain.run_job(&job);

    // Simulate the killed first run: drive the same job manually for 5
    // generations and leave its snapshot where the server will look.
    let ga = searcher(9);
    let prob = problem();
    let mut state = ga.init(&prob, job.budget);
    for _ in 0..5 {
        ga.step(&prob, &mut state, job.budget);
    }
    let server = SearchServer::new(ServerConfig {
        workers: 1,
        checkpoint_dir: Some(dir.clone()),
        ..Default::default()
    });
    let ckpt = server.checkpoint_path(&job).unwrap();
    std::fs::write(&ckpt, Snapshot::capture(job.fingerprint(), &state).render()).unwrap();

    let report = server.run_job(&job);
    assert_eq!(report.resumed_at, Some(5), "server must resume, not restart");
    assert!(!ckpt.exists(), "finished jobs clean up their checkpoint");

    let (a, b) = (reference.best.unwrap(), report.best.unwrap());
    assert_eq!(a.genome, b.genome);
    assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    assert_eq!(reference.samples, report.samples);

    std::fs::remove_dir_all(&dir).ok();
}

/// A checkpoint from a *different* job (other seed/budget) must be
/// ignored — the server restarts rather than resuming into corruption.
#[test]
fn server_ignores_foreign_checkpoints() {
    let dir = std::env::temp_dir().join(format!("digamma-foreign-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut job =
        JobSpec::new("j", zoo::ncf(), Platform::edge(), Objective::Latency, JobAlgorithm::DiGamma);
    job.budget = 160;
    job.population_size = 16;
    job.seed = 2;

    let server = SearchServer::new(ServerConfig {
        workers: 1,
        checkpoint_dir: Some(dir.clone()),
        ..Default::default()
    });

    // A snapshot whose fingerprint names a different seed.
    let ga = searcher(999);
    let prob = problem();
    let mut other = job.clone();
    other.seed = 999;
    let state = ga.init(&prob, other.budget);
    std::fs::write(
        server.checkpoint_path(&job).unwrap(),
        Snapshot::capture(other.fingerprint(), &state).render(),
    )
    .unwrap();

    let report = server.run_job(&job);
    assert_eq!(report.resumed_at, None, "foreign snapshot must not be resumed");
    assert_eq!(report.samples, 160);

    std::fs::remove_dir_all(&dir).ok();
}
