//! The storage corruption suite: journals and snapshots fed truncated,
//! bit-flipped, and duplicated input must never panic, never replay
//! damaged records as good ones, and must count the damage they skip.
//!
//! The journal under test carries the full record zoo — a keyed batch
//! (`[submitted]` × 2 + `[idempotency]`), a `[finished]` terminal
//! record, and a second batch — so every parser path faces the damage.

use digamma::{CoOptProblem, Objective};
use digamma_costmodel::Platform;
use digamma_encoding::Genome;
use digamma_server::{JobAlgorithm, JobSpec, JobStatus, Journal, Snapshot};
use digamma_workload::zoo;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn spec(name: &str, budget: usize) -> JobSpec {
    let mut s =
        JobSpec::new(name, zoo::ncf(), Platform::edge(), Objective::Latency, JobAlgorithm::DiGamma);
    s.budget = budget;
    s
}

/// Renders the reference journal into `path`: keyed batch (ids 1, 2),
/// job 1 finished, then an unkeyed id 3.
fn write_reference_journal(path: &std::path::Path) {
    let journal = Journal::new(path);
    let (alpha, beta) = (spec("alpha", 100), spec("beta", 200));
    journal.append_submitted_keyed(&[(1, &alpha), (2, &beta)], Some(("acme", "k-chaos"))).unwrap();
    journal.append_finished(1, JobStatus::Done).unwrap();
    journal.append_submitted(3, &spec("gamma", 300)).unwrap();
}

/// A reference snapshot with a real population, rendered to text.
fn reference_snapshot() -> String {
    let problem = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency);
    let mut rng = SmallRng::seed_from_u64(42);
    let population: Vec<Genome> = (0..4)
        .map(|_| Genome::random(&mut rng, problem.unique_layers(), problem.platform(), 2))
        .collect();
    let history: Vec<f64> = (0..32).map(|i| 1e6 / (i + 1) as f64).collect();
    Snapshot {
        fingerprint: "job 1 ncf edge latency".to_owned(),
        generation: 7,
        samples: history.len(),
        history,
        best: Some(population[0].clone()),
        population,
        ops: digamma_obs::OpCounters::new(),
        last_improved_gen: 7,
        cost_points: Vec::new(),
    }
    .render()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A journal truncated at an arbitrary byte replays without panic
    /// to a *prefix-consistent* state: records strictly before the cut
    /// survive intact, everything at or after it vanishes, and at most
    /// the one torn record is convicted as corrupt. In particular a
    /// torn keyed append may keep a prefix of its `[submitted]` records
    /// but always drops the trailing `[idempotency]` key with the tear.
    #[test]
    fn truncated_journals_replay_to_a_consistent_prefix(cut_seed in 0u64..4_096) {
        let dir = std::env::temp_dir()
            .join(format!("digamma-corrupt-trunc-{}-{cut_seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let full_path = dir.join("full.journal");
        write_reference_journal(&full_path);
        let bytes = std::fs::read(&full_path).unwrap();
        let cut = (cut_seed as usize) % (bytes.len() + 1);
        let torn_path = dir.join("torn.journal");
        std::fs::write(&torn_path, &bytes[..cut]).unwrap();

        let replay = Journal::new(&torn_path).replay().expect("truncation is never an I/O error");
        let has = |id| replay.pending.iter().any(|(i, _)| *i == id);
        let fin1 = replay.finished.iter().any(|&(i, s)| i == 1 && s == JobStatus::Done);
        let keyed = !replay.idempotency.is_empty();
        // The reachable states, in tail-growth order:
        // nothing → {1} → {1,2} → {1,2}+key → key+finished(1) → +{3}.
        let state = (has(1), has(2), has(3), fin1, keyed);
        let allowed = [
            (false, false, false, false, false),
            (true, false, false, false, false),
            (true, true, false, false, false),
            (true, true, false, false, true),
            (false, true, false, true, true),
            (false, true, true, true, true),
        ];
        prop_assert!(allowed.contains(&state), "cut {cut}: unreachable state {state:?}");
        prop_assert!(replay.corrupt <= 1, "cut {cut}: one tear, {} convictions", replay.corrupt);
        if keyed {
            prop_assert_eq!(
                replay.idempotency.clone(),
                vec![("acme".to_owned(), "k-chaos".to_owned(), vec![1, 2])]
            );
        }
        // Surviving records are the originals, not reinterpretations.
        for (id, spec) in &replay.pending {
            let wanted = match id {
                1 => ("alpha", 100),
                2 => ("beta", 200),
                3 => ("gamma", 300),
                other => panic!("invented job id {other}"),
            };
            prop_assert_eq!((spec.name.as_str(), spec.budget), wanted);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A single flipped byte anywhere in the journal never panics the
    /// replayer, never changes a surviving record (the per-record crc
    /// convicts any content flip), and any deviation from the pristine
    /// state is matched by a nonzero corrupt count.
    #[test]
    fn bit_flipped_journals_never_replay_damaged_records(flip_seed in 0u64..4_096) {
        let dir = std::env::temp_dir()
            .join(format!("digamma-corrupt-flip-{}-{flip_seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flipped.journal");
        write_reference_journal(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        let mut rng = SmallRng::seed_from_u64(flip_seed);
        let at = rng.gen_range(0..bytes.len());
        // Flip a low bit: the damage stays ASCII, so the failure mode
        // under test is record corruption, not UTF-8 decoding.
        bytes[at] ^= 1u8 << rng.gen_range(0..4);
        std::fs::write(&path, &bytes).unwrap();

        // Structural damage (a mangled section header) may surface as a
        // parse error; that is acceptable — a panic or a silently
        // altered record is not.
        let Ok(replay) = Journal::new(&path).replay() else {
            std::fs::remove_dir_all(&dir).ok();
            return;
        };
        for (id, spec) in &replay.pending {
            let wanted = match id {
                1 => ("alpha", 100),
                2 => ("beta", 200),
                3 => ("gamma", 300),
                other => panic!("invented job id {other}"),
            };
            prop_assert_eq!(
                (spec.name.as_str(), spec.budget),
                wanted,
                "flip at {} replayed an altered record",
                at
            );
        }
        let pristine = replay.pending.iter().map(|(i, _)| *i).collect::<Vec<_>>() == vec![2, 3]
            && replay.finished.iter().any(|&(i, s)| i == 1 && s == JobStatus::Done)
            && replay.idempotency.len() == 1;
        if !pristine {
            prop_assert!(
                replay.corrupt >= 1,
                "flip at {at} changed the replayed state without a corruption conviction"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Snapshot parsing under truncation: never a panic, and any
    /// successfully parsed document satisfies the internal-consistency
    /// invariants the resume path relies on.
    #[test]
    fn truncated_snapshots_parse_or_reject_but_never_panic(cut_seed in 0u64..4_096) {
        let text = reference_snapshot();
        let cut = (cut_seed as usize) % (text.len() + 1);
        // Cut on a char boundary (the text is ASCII, but stay honest).
        let mut cut = cut;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        if let Ok(snapshot) = Snapshot::parse(&text[..cut]) {
            prop_assert_eq!(snapshot.history.len(), snapshot.samples);
            // A truncated prefix that still parses must be the complete
            // document: the declared population and sample counts
            // convict every shorter prefix.
            prop_assert_eq!(snapshot.population.len(), 4);
        }
    }

    /// Snapshot parsing under single-byte flips: never a panic; parsed
    /// documents keep their declared-vs-carried invariants.
    #[test]
    fn bit_flipped_snapshots_parse_or_reject_but_never_panic(flip_seed in 0u64..4_096) {
        let text = reference_snapshot();
        let mut bytes = text.into_bytes();
        let mut rng = SmallRng::seed_from_u64(flip_seed);
        let at = rng.gen_range(0..bytes.len());
        bytes[at] ^= 1u8 << rng.gen_range(0..4);
        let Ok(text) = String::from_utf8(bytes) else { return };
        if let Ok(snapshot) = Snapshot::parse(&text) {
            prop_assert_eq!(snapshot.history.len(), snapshot.samples);
            prop_assert_eq!(snapshot.population.len(), 4);
        }
    }
}

/// Whole-record duplication (a double-applied append, the classic
/// retry-without-idempotency bug at the storage layer) must replay each
/// id once, keeping the journal's last-writer-wins semantics.
#[test]
fn duplicated_journal_records_replay_once_per_id() {
    let dir = std::env::temp_dir().join(format!("digamma-corrupt-dup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dup.journal");
    write_reference_journal(&path);
    // Re-append the whole journal body after its header: every record
    // now appears twice.
    let text = std::fs::read_to_string(&path).unwrap();
    let body = text.split_once("\n\n").map(|(_, rest)| rest.to_owned()).unwrap_or_default();
    std::fs::write(&path, format!("{text}{body}")).unwrap();

    let replay = Journal::new(&path).replay().expect("duplication is not an I/O error");
    let ids: Vec<u64> = replay.pending.iter().map(|(i, _)| *i).collect();
    assert_eq!(ids, vec![2, 3], "each id replays exactly once: {ids:?}");
    assert_eq!(replay.corrupt, 0, "duplicates are valid records, not corruption");
    assert_eq!(replay.next_id, 4);
    std::fs::remove_dir_all(&dir).ok();
}
