//! The fitness cache's correctness contract, attacked two ways:
//!
//! * property tests that cached and uncached evaluation agree exactly
//!   (bit-for-bit, both the per-layer `CostReport`s and the aggregated
//!   `DesignEvaluation`) over arbitrary repaired genomes — fresh random
//!   ones and damaged-then-repaired ones, the populations a real search
//!   produces, and
//! * a concurrency test where many workers hammer one small (therefore
//!   constantly evicting) shared cache and every returned evaluation is
//!   checked against the uncached truth — a torn or misfiled report
//!   would surface as a mismatch.

use digamma::{CoOptProblem, EvalCache, Objective};
use digamma_costmodel::Platform;
use digamma_encoding::{repair, Genome};
use digamma_server::ShardedFitnessCache;
use digamma_workload::{zoo, Dim, DimVec};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn problem() -> CoOptProblem {
    CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency)
}

/// Bit-exact equality for evaluations (plain `==` would treat two NaNs
/// as different and 0.0 == -0.0 as equal; the cache must preserve bits).
fn assert_identical(a: &digamma::DesignEvaluation, b: &digamma::DesignEvaluation) {
    assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    assert_eq!(a.feasible, b.feasible);
    assert_eq!(a.latency_cycles.to_bits(), b.latency_cycles.to_bits());
    assert_eq!(a.energy_pj.to_bits(), b.energy_pj.to_bits());
    assert_eq!(a.area_um2.to_bits(), b.area_um2.to_bits());
    assert_eq!(a.pe_area_um2.to_bits(), b.pe_area_um2.to_bits());
    assert_eq!(a.hw, b.hw);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Fresh random (always repaired) genomes: evaluating through a
    /// cache — twice, so the second pass replays memoized reports —
    /// must match uncached evaluation exactly.
    #[test]
    fn cached_evaluation_is_bit_identical(seed in 0u64..10_000) {
        let uncached = problem();
        let cached = problem().with_cache(Arc::new(ShardedFitnessCache::new(4096)));
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Genome::random(&mut rng, uncached.unique_layers(), uncached.platform(), 2);
        let truth = uncached.evaluate(&g);
        let miss_pass = cached.evaluate(&g);
        let hit_pass = cached.evaluate(&g);
        assert_identical(&truth, &miss_pass);
        assert_identical(&truth, &hit_pass);
    }

    /// Damaged-then-repaired genomes (the population a search actually
    /// produces): same contract, including the eviction path via a
    /// cache far too small for the working set.
    #[test]
    fn damaged_repaired_genomes_agree_even_under_eviction(
        seed in 0u64..10_000,
        fanout in 0u64..1_000_000,
        tile in 0u64..1_000_000,
    ) {
        let uncached = problem();
        let tiny_cache = Arc::new(ShardedFitnessCache::with_shards(2, 1));
        let cached = problem().with_cache(tiny_cache);
        let unique = uncached.unique_layers().to_vec();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = Genome::random(&mut rng, &unique, uncached.platform(), 2);
        // Arbitrary damage, as the genetic operators inflict.
        let fi = rng.gen_range(0..g.fanouts.len());
        g.fanouts[fi] = fanout;
        let li = rng.gen_range(0..g.layers.len());
        let lvl = rng.gen_range(0..g.layers[li].levels.len());
        g.layers[li].levels[lvl].tile = DimVec::splat(tile);
        g.layers[li].levels[lvl].order.swap(0, 5);
        g.layers[li].levels[lvl].spatial_dim = Dim::from_index(rng.gen_range(0..6));
        repair(&mut g, &unique, uncached.platform());

        let truth = uncached.evaluate(&g);
        assert_identical(&truth, &cached.evaluate(&g));
        assert_identical(&truth, &cached.evaluate(&g));
    }

    /// The genome memo's key contract: equal genome hashes must imply
    /// equal per-layer key *sets* (the genome key covers everything the
    /// evaluation reads, so two same-key genomes present identical work
    /// to the per-layer cache). Pairs are exact clones (the key-equal
    /// branch, exercised non-vacuously) or single-gene mutants — if the
    /// genome hash ever omitted a gene, the mutant pair would collide
    /// with different layer keys and fail here.
    #[test]
    fn genome_hash_equality_implies_layer_key_set_equality(
        seed in 0u64..10_000,
        mutate in 0usize..5,
    ) {
        let p = problem();
        let unique = p.unique_layers().to_vec();
        let mut rng = SmallRng::seed_from_u64(seed);
        let g1 = Genome::random(&mut rng, &unique, p.platform(), 2);
        let mut g2 = g1.clone();
        match mutate {
            0 => {} // exact clone: keys MUST be equal
            1 => {
                let fi = rng.gen_range(0..g2.fanouts.len());
                g2.fanouts[fi] = (g2.fanouts[fi] * 2).min(p.platform().max_pes);
            }
            2 => {
                let li = rng.gen_range(0..g2.layers.len());
                g2.layers[li].levels[0].order.swap(0, 5);
            }
            3 => {
                let li = rng.gen_range(0..g2.layers.len());
                g2.layers[li].levels[1].spatial_dim = Dim::from_index(rng.gen_range(0..6));
            }
            _ => {
                let li = rng.gen_range(0..g2.layers.len());
                let tile = &mut g2.layers[li].levels[0].tile;
                *tile = tile.map(|t| (t * 2).max(2));
                repair(&mut g2, &unique, p.platform());
            }
        }
        let key_set = |g: &Genome| {
            let mut keys: Vec<u64> = unique
                .iter()
                .zip(g.decode(&unique))
                .map(|(u, m)| p.evaluator().cache_key(&u.layer, &m))
                .collect();
            keys.sort_unstable();
            keys
        };
        if p.genome_key(&g1) == p.genome_key(&g2) {
            assert_eq!(key_set(&g1), key_set(&g2), "colliding genome keys with different work");
            assert_identical(&p.evaluate(&g1), &p.evaluate(&g2));
        }
        // Sanity: the clone branch really does take the key-equal path.
        if mutate == 0 {
            assert_eq!(p.genome_key(&g1), p.genome_key(&g2));
        }
    }

    /// Evaluations served by the genome memo — first pass stores, second
    /// pass replays — are bit-identical to memo-less evaluation.
    #[test]
    fn genome_memoized_evaluation_is_bit_identical(seed in 0u64..10_000) {
        let bare = problem();
        let memoized = problem()
            .with_genome_memo(Arc::new(digamma_server::ShardedGenomeMemo::new(1024)));
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Genome::random(&mut rng, bare.unique_layers(), bare.platform(), 2);
        let truth = bare.evaluate(&g);
        assert_identical(&truth, &memoized.evaluate(&g));
        assert_identical(&truth, &memoized.evaluate(&g));
        let batch = memoized.evaluate_batch(&[g.clone(), g], 1);
        assert_identical(&truth, &batch[0]);
        assert_identical(&truth, &batch[1]);
    }
}

/// Per-layer reports replayed from the cache are the stored bytes, not a
/// recomputation: check the `CostReport` level directly.
#[test]
fn stored_reports_replay_bit_identically() {
    let p = problem();
    let cache = ShardedFitnessCache::new(1024);
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..20 {
        let g = Genome::random(&mut rng, p.unique_layers(), p.platform(), 2);
        for (u, mapping) in p.unique_layers().iter().zip(g.decode(p.unique_layers())) {
            let truth = Arc::new(p.evaluator().evaluate(&u.layer, &mapping).unwrap());
            let key = p.evaluator().cache_key(&u.layer, &mapping);
            cache.store(key, &truth);
            let replayed = cache.lookup(key).expect("just stored");
            assert_eq!(replayed.latency_cycles.to_bits(), truth.latency_cycles.to_bits());
            assert_eq!(replayed.energy_pj.to_bits(), truth.energy_pj.to_bits());
            assert_eq!(replayed.area_um2.to_bits(), truth.area_um2.to_bits());
            assert_eq!(replayed.buffers, truth.buffers);
            assert_eq!(replayed.hw, truth.hw);
            assert_eq!(replayed.utilization.to_bits(), truth.utilization.to_bits());
            assert_eq!(replayed.macs, truth.macs);
        }
    }
}

/// N workers hammering one shared cache never observe a wrong or torn
/// result. The cache is deliberately tiny so insertions and evictions
/// race with lookups the whole time.
#[test]
fn concurrent_workers_never_see_torn_results() {
    let uncached = problem();
    let mut rng = SmallRng::seed_from_u64(7);
    let genomes: Vec<Genome> = (0..48)
        .map(|_| Genome::random(&mut rng, uncached.unique_layers(), uncached.platform(), 2))
        .collect();
    let truths: Vec<digamma::DesignEvaluation> =
        genomes.iter().map(|g| uncached.evaluate(g)).collect();

    let shared = Arc::new(ShardedFitnessCache::with_shards(8, 2));
    let cached = problem().with_cache(Arc::clone(&shared) as Arc<dyn EvalCache>);
    let workers = 8;
    digamma::scoped_workers(workers, |w| {
        // Each worker sweeps the genomes several times from a different
        // starting offset, so lookups, stores, and evictions interleave.
        for round in 0..4 {
            for i in 0..genomes.len() {
                let idx = (i + w * 7 + round * 13) % genomes.len();
                let eval = cached.evaluate(&genomes[idx]);
                let truth = &truths[idx];
                assert_eq!(eval.cost.to_bits(), truth.cost.to_bits(), "genome {idx}");
                assert_eq!(
                    eval.latency_cycles.to_bits(),
                    truth.latency_cycles.to_bits(),
                    "genome {idx}"
                );
                assert_eq!(eval.energy_pj.to_bits(), truth.energy_pj.to_bits(), "genome {idx}");
                assert_eq!(eval.hw, truth.hw, "genome {idx}");
            }
        }
    });
    let stats = shared.stats();
    assert!(stats.evictions > 0, "the test must exercise the eviction path: {stats:?}");
    assert!(stats.hits + stats.misses > 0);
}

/// Two whole searches — cache-less and cache-heavy — walk identical
/// trajectories: memoization is invisible to the optimizer.
#[test]
fn search_trajectory_is_cache_invariant() {
    use digamma::{DiGamma, DiGammaConfig};
    let config = DiGammaConfig { population_size: 12, seed: 21, threads: 1, ..Default::default() };
    let bare = DiGamma::new(config.clone()).search(&problem(), 240);
    let shared = Arc::new(ShardedFitnessCache::new(1 << 16));
    let cached_problem = problem().with_cache(Arc::clone(&shared) as Arc<dyn EvalCache>);
    let cached = DiGamma::new(config).search(&cached_problem, 240);
    assert_eq!(bare.history.len(), cached.history.len());
    for (a, b) in bare.history.iter().zip(&cached.history) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(bare.best.as_ref().map(|b| &b.genome), cached.best.as_ref().map(|b| &b.genome));
    assert!(shared.stats().hits > 0, "elite re-evaluation must hit");
}
