//! Versioned text snapshots of GA search state.
//!
//! A snapshot captures a [`SearchState`] at a generation boundary in a
//! hand-rolled, human-inspectable text format. Because the GA reseeds
//! its RNG per generation from `(seed, generation)`, the snapshot needs
//! no RNG internals — population genomes, the best-so-far genome, the
//! exact history (f64 bit patterns), and two counters are enough for a
//! killed search to continue **bit-identically**, which
//! `tests/resume.rs` proves end to end.
//!
//! Format (built on [`crate::textio`]):
//!
//! ```text
//! [snapshot]
//! version = 2
//! fingerprint = ncf/edge/latency/digamma/b600/s1/p16
//! generation = 12
//! samples = 208
//! history = 7ff0...x16,4111e1c0...x24,...  # RLE: 16-hex f64 bits x count
//! best = 8,16|K,KCYXRS,...            # absent while nothing feasible
//! [population]
//! genome = 8,16|K,KCYXRS,...          # repeated, in population order
//! ```
//!
//! Version 2 run-length-encodes the history: the best-so-far curve is a
//! monotone step function, so its exact size tracks *improvements*, not
//! samples — checkpoints stay flat-sized even on 100k-sample budgets
//! while still round-tripping bit-identically. Version 1 documents (one
//! 16-hex word per sample) still parse.
//!
//! Version 3 adds an `[analytics]` section: cumulative per-operator
//! attribution counters, the last-improvement generation, and the
//! cost-vs-evaluations curve (compressed to its improvement points), so
//! operator attribution survives SIGKILL and resumes counting where it
//! left off. Versions 1 and 2 still parse, restoring with zeroed
//! analytics. Note: the release that introduced version 3 also floors
//! the GA's immigrant count at one per generation (populations under 20
//! previously got none), so search trajectories differ from pre-v3
//! builds. A version-1/2 snapshot still restores cleanly — it resumes
//! from its boundary under the *new* trajectory, which bit-matches a
//! fresh run of this build from that boundary, not the old build's
//! finished curve.

use crate::textio::{self, Section, TextError};
use digamma::{CoOptProblem, DiGamma, SearchState};
use digamma_encoding::Genome;
use digamma_obs::{CostPoint, OpCounters, OpKind};

/// Current snapshot format version. Parsing accepts this and versions
/// 1–2 (pre-analytics; version 1 is additionally pre-RLE).
pub const SNAPSHOT_VERSION: u64 = 3;

/// A parsed (or about-to-be-rendered) checkpoint.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Job identity line; resume refuses a mismatched job.
    pub fingerprint: String,
    /// Completed generations at capture time.
    pub generation: u64,
    /// Samples evaluated at capture time.
    pub samples: usize,
    /// Best-so-far cost after each sample, bit-exact.
    pub history: Vec<f64>,
    /// Best feasible genome, if any.
    pub best: Option<Genome>,
    /// The population at the generation boundary.
    pub population: Vec<Genome>,
    /// Cumulative per-operator attribution (since version 3; zeros for
    /// older documents).
    pub ops: OpCounters,
    /// Generation in which the incumbent last improved (since version
    /// 3; defaults to `generation` for older documents).
    pub last_improved_gen: u64,
    /// Cost-vs-evaluations curve, compressed to the points where the
    /// best cost changed (plus the first point) so the rendered size
    /// tracks improvements, like the history RLE does.
    pub cost_points: Vec<CostPoint>,
}

/// Keeps the first point and every point whose best-cost bits differ
/// from the previous kept point's — the exact knee set a step-function
/// convergence plot needs.
pub(crate) fn compress_points(points: &[CostPoint]) -> Vec<CostPoint> {
    let mut out: Vec<CostPoint> = Vec::new();
    for p in points {
        if out.last().is_none_or(|prev| prev.best.to_bits() != p.best.to_bits()) {
            out.push(*p);
        }
    }
    out
}

impl Snapshot {
    /// Captures a search state (see [`DiGamma::step`]'s boundary
    /// contract) under a job identity line.
    pub fn capture(fingerprint: impl Into<String>, state: &SearchState) -> Snapshot {
        Snapshot {
            fingerprint: fingerprint.into(),
            generation: state.generation(),
            samples: state.samples(),
            history: state.history().to_vec(),
            best: state.best_genome().cloned(),
            population: state.population().to_vec(),
            ops: *state.op_counters(),
            last_improved_gen: state.last_improved_generation(),
            cost_points: compress_points(state.cost_points()),
        }
    }

    /// Rebuilds a live [`SearchState`] on `ga`/`problem`, re-evaluating
    /// the stored genomes (evaluation is pure, so this reproduces the
    /// captured state exactly).
    ///
    /// # Errors
    ///
    /// Returns [`TextError`] when `expected_fingerprint` differs from
    /// the snapshot's — resuming a different job from this checkpoint
    /// would silently corrupt both.
    pub fn restore(
        &self,
        ga: &DiGamma,
        problem: &CoOptProblem,
        expected_fingerprint: &str,
    ) -> Result<SearchState, TextError> {
        if self.fingerprint != expected_fingerprint {
            return Err(TextError::new(format!(
                "snapshot is for job {:?}, not {expected_fingerprint:?}",
                self.fingerprint
            )));
        }
        if self.population.is_empty() {
            return Err(TextError::new("snapshot has an empty population"));
        }
        if self.history.len() != self.samples {
            return Err(TextError::new(format!(
                "snapshot history has {} entries for {} samples",
                self.history.len(),
                self.samples
            )));
        }
        let mut state = ga.restore(
            problem,
            self.population.clone(),
            self.best.clone(),
            self.history.clone(),
            self.samples,
            self.generation,
        );
        state.restore_analytics(self.ops, self.cost_points.clone(), self.last_improved_gen);
        Ok(state)
    }

    /// Renders the versioned text form.
    pub fn render(&self) -> String {
        let mut head = Section::new("snapshot");
        head.push("version", SNAPSHOT_VERSION.to_string());
        head.push("fingerprint", &self.fingerprint);
        head.push("generation", self.generation.to_string());
        head.push("samples", self.samples.to_string());
        // The declared population size lets the parser reject a file
        // truncated inside the [population] section — a truncated prefix
        // of a valid snapshot could otherwise still parse.
        head.push("population", self.population.len().to_string());
        head.push("history", textio::f64s_to_rle_text(&self.history));
        if let Some(best) = &self.best {
            head.push("best", best.to_text());
        }
        // The [analytics] section sits *before* [population], so a file
        // truncated anywhere inside it also loses the population section
        // and is rejected outright instead of parsing with partial
        // counters.
        let mut analytics = Section::new("analytics");
        analytics.push("last_improved_gen", self.last_improved_gen.to_string());
        for (kind, c) in self.ops.iter() {
            analytics.push(
                "op",
                format!("{} {} {} {}", kind.name(), c.attempted, c.improved, c.incumbents),
            );
        }
        for p in &self.cost_points {
            analytics.push(
                "point",
                format!("{} {} {}", p.generation, p.evals, textio::f64_to_text(p.best)),
            );
        }
        let mut pop = Section::new("population");
        for g in &self.population {
            pop.push("genome", g.to_text());
        }
        textio::render_sections(&[head, analytics, pop])
    }

    /// Parses a document rendered by [`Snapshot::render`].
    ///
    /// # Errors
    ///
    /// Returns [`TextError`] on malformed input, a version mismatch, or
    /// internal inconsistency (declared population/sample counts not
    /// matching the document body — the signature of a file truncated
    /// mid-write).
    pub fn parse(text: &str) -> Result<Snapshot, TextError> {
        let sections = textio::parse_sections(text)?;
        let head = sections
            .iter()
            .find(|s| s.name == "snapshot")
            .ok_or_else(|| TextError::new("missing [snapshot] section"))?;
        let version: u64 = head.get_parsed_or("version", 0)?;
        if !(1..=SNAPSHOT_VERSION).contains(&version) {
            return Err(TextError::new(format!(
                "snapshot version {version} unsupported (this build reads 1..={SNAPSHOT_VERSION})"
            )));
        }
        let parse_genome =
            |s: &str| Genome::from_text(s).map_err(|e| TextError::new(format!("bad genome: {e}")));
        let best = head.get("best").map(parse_genome).transpose()?;
        let pop = sections
            .iter()
            .find(|s| s.name == "population")
            .ok_or_else(|| TextError::new("missing [population] section"))?;
        let population = pop
            .get_all("genome")
            .into_iter()
            .map(parse_genome)
            .collect::<Result<Vec<Genome>, _>>()?;
        let declared: usize = head
            .require("population")?
            .parse()
            .map_err(|_| TextError::new("bad population count"))?;
        if population.len() != declared {
            return Err(TextError::new(format!(
                "snapshot declares {declared} genomes but carries {} (truncated write?)",
                population.len()
            )));
        }
        let samples: usize = head.get_parsed_or("samples", 0)?;
        let raw_history = head.require("history")?;
        let history = if version >= 2 {
            // The declared sample count bounds materialization, so a
            // corrupt run length cannot balloon allocation.
            textio::f64s_from_rle_text(raw_history, samples)?
        } else {
            textio::f64s_from_text(raw_history)?
        };
        if history.len() != samples {
            return Err(TextError::new(format!(
                "snapshot declares {samples} samples but carries {} history entries",
                history.len()
            )));
        }
        let generation: u64 = head.get_parsed_or("generation", 0)?;
        // Version 3 carries analytics; older documents restore with
        // zeroed counters and an empty curve.
        let mut ops = OpCounters::new();
        let mut last_improved_gen = generation;
        let mut cost_points = Vec::new();
        if let Some(analytics) = sections.iter().find(|s| s.name == "analytics") {
            last_improved_gen = analytics.get_parsed_or("last_improved_gen", generation)?;
            for raw in analytics.get_all("op") {
                let mut parts = raw.split_whitespace();
                let kind = parts
                    .next()
                    .and_then(OpKind::from_name)
                    .ok_or_else(|| TextError::new(format!("bad op line: {raw:?}")))?;
                let mut next = || {
                    parts
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| TextError::new(format!("bad op line: {raw:?}")))
                };
                let counter = ops.get_mut(kind);
                counter.attempted = next()?;
                counter.improved = next()?;
                counter.incumbents = next()?;
            }
            for raw in analytics.get_all("point") {
                let mut parts = raw.split_whitespace();
                let mut next_u64 = || {
                    parts
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| TextError::new(format!("bad point line: {raw:?}")))
                };
                let generation = next_u64()?;
                let evals = next_u64()?;
                let best = textio::f64_from_text(
                    parts
                        .next()
                        .ok_or_else(|| TextError::new(format!("bad point line: {raw:?}")))?,
                )?;
                cost_points.push(CostPoint { generation, evals, best });
            }
        }
        Ok(Snapshot {
            fingerprint: head.require("fingerprint")?.to_owned(),
            generation,
            samples,
            history,
            best,
            population,
            ops,
            last_improved_gen,
            cost_points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma::{CoOptProblem, DiGammaConfig, Objective};
    use digamma_costmodel::Platform;
    use digamma_workload::zoo;

    fn setup() -> (CoOptProblem, DiGamma) {
        let problem = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency);
        let config =
            DiGammaConfig { population_size: 8, seed: 3, threads: 1, ..Default::default() };
        (problem, DiGamma::new(config))
    }

    #[test]
    fn snapshot_roundtrips_through_text() {
        let (problem, ga) = setup();
        let mut state = ga.init(&problem, 64);
        ga.step(&problem, &mut state, 64);
        ga.step(&problem, &mut state, 64);
        let snap = Snapshot::capture("job-a", &state);
        let parsed = Snapshot::parse(&snap.render()).unwrap();
        assert_eq!(parsed.fingerprint, "job-a");
        assert_eq!(parsed.generation, snap.generation);
        assert_eq!(parsed.samples, snap.samples);
        assert_eq!(parsed.population, snap.population);
        assert_eq!(parsed.best, snap.best);
        assert_eq!(parsed.history.len(), snap.history.len());
        for (a, b) in parsed.history.iter().zip(&snap.history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn restore_refuses_a_different_job() {
        let (problem, ga) = setup();
        let state = ga.init(&problem, 32);
        let snap = Snapshot::capture("job-a", &state);
        let err = snap.restore(&ga, &problem, "job-b").unwrap_err();
        assert!(err.to_string().contains("job-a"), "{err}");
        assert!(snap.restore(&ga, &problem, "job-a").is_ok());
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(Snapshot::parse("").is_err(), "empty");
        assert!(Snapshot::parse("[snapshot]\nversion = 99\n").is_err(), "future version");
        let (problem, ga) = setup();
        let snap = Snapshot::capture("j", &ga.init(&problem, 16));
        let good = snap.render();
        let no_pop = good.split("[population]").next().unwrap();
        assert!(Snapshot::parse(no_pop).is_err(), "missing population");
        let corrupt = good.replace("genome = ", "genome = !");
        assert!(Snapshot::parse(&corrupt).is_err(), "corrupt genome");
    }

    #[test]
    fn truncated_documents_are_rejected() {
        // A file cut off mid-write (the crash scenario checkpointing
        // exists for) must never parse as a smaller-but-valid snapshot.
        let (problem, ga) = setup();
        let mut state = ga.init(&problem, 64);
        ga.step(&problem, &mut state, 64);
        let good = Snapshot::capture("j", &state).render();
        // Cut at every line boundary: each prefix must either fail to
        // parse or (when only trailing blank lines are cut) roundtrip.
        let lines: Vec<&str> = good.lines().collect();
        for keep in 1..lines.len() {
            let prefix = lines[..keep].join("\n");
            if let Ok(parsed) = Snapshot::parse(&prefix) {
                assert_eq!(parsed.population.len(), state.population().len());
                assert_eq!(parsed.history.len(), state.history().len());
            }
        }
    }

    #[test]
    fn v1_documents_still_parse() {
        // A surviving checkpoint from a pre-RLE build (version 1, one
        // 16-hex word per sample) must restore after an upgrade.
        let (problem, ga) = setup();
        let mut state = ga.init(&problem, 64);
        ga.step(&problem, &mut state, 64);
        let snap = Snapshot::capture("j", &state);
        let v1: String = snap
            .render()
            .lines()
            .map(|line| {
                if line.starts_with("version = ") {
                    "version = 1".to_owned()
                } else if line.starts_with("history = ") {
                    format!("history = {}", crate::textio::f64s_to_text(&snap.history))
                } else {
                    line.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = Snapshot::parse(&v1).unwrap();
        assert_eq!(parsed.population, snap.population);
        for (a, b) in parsed.history.iter().zip(&snap.history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn v2_documents_still_parse_with_zeroed_analytics() {
        // A surviving checkpoint from a pre-analytics build (version 2,
        // no [analytics] section) must restore after an upgrade.
        let (problem, ga) = setup();
        let mut state = ga.init(&problem, 64);
        ga.step(&problem, &mut state, 64);
        let snap = Snapshot::capture("j", &state);
        let v2: String = snap
            .render()
            .lines()
            .filter(|line| {
                !line.starts_with("last_improved_gen = ")
                    && !line.starts_with("op = ")
                    && !line.starts_with("point = ")
                    && *line != "[analytics]"
            })
            .map(|line| {
                if line.starts_with("version = ") {
                    "version = 2".to_owned()
                } else {
                    line.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = Snapshot::parse(&v2).unwrap();
        assert_eq!(parsed.population, snap.population);
        assert_eq!(parsed.ops, digamma_obs::OpCounters::new());
        assert!(parsed.cost_points.is_empty());
        assert_eq!(parsed.last_improved_gen, parsed.generation, "defaults to the boundary");
        assert!(parsed.restore(&ga, &problem, "j").is_ok());
    }

    #[test]
    fn analytics_survive_the_text_roundtrip_and_restore() {
        let (problem, ga) = setup();
        let mut state = ga.init(&problem, 64);
        while ga.step(&problem, &mut state, 64) {}
        assert!(state.op_counters().total_attempted() > 0);
        let snap = Snapshot::capture("j", &state);
        let parsed = Snapshot::parse(&snap.render()).unwrap();
        assert_eq!(parsed.ops, *state.op_counters());
        assert_eq!(parsed.last_improved_gen, state.last_improved_generation());
        assert!(!parsed.cost_points.is_empty());
        // Compressed points keep the knees: first point and every
        // best-cost change, bit-exactly.
        for (a, b) in parsed.cost_points.iter().zip(&snap.cost_points) {
            assert_eq!((a.generation, a.evals), (b.generation, b.evals));
            assert_eq!(a.best.to_bits(), b.best.to_bits());
        }
        let restored = parsed.restore(&ga, &problem, "j").unwrap();
        assert_eq!(restored.op_counters(), state.op_counters());
        assert_eq!(restored.last_improved_generation(), state.last_improved_generation());
    }

    #[test]
    fn resumed_searches_keep_counting_attribution() {
        // Kill at the midpoint, restore, finish: the final counters must
        // cover every stepped child across both halves.
        let (problem, ga) = setup();
        let mut state = ga.init(&problem, 96);
        while state.samples() < 48 && ga.step(&problem, &mut state, 96) {}
        let snap = Snapshot::capture("j", &state);
        let parsed = Snapshot::parse(&snap.render()).unwrap();
        let mut resumed = parsed.restore(&ga, &problem, "j").unwrap();
        while ga.step(&problem, &mut resumed, 96) {}
        let mut uninterrupted = ga.init(&problem, 96);
        while ga.step(&problem, &mut uninterrupted, 96) {}
        assert_eq!(
            resumed.op_counters(),
            uninterrupted.op_counters(),
            "attribution across a kill must equal an uninterrupted run"
        );
        assert_eq!(resumed.last_improved_generation(), uninterrupted.last_improved_generation());
    }

    #[test]
    fn checkpoint_size_tracks_improvements_not_samples() {
        // 100k samples, ten improvements: the rendered document must stay
        // kilobytes (population + a handful of history segments), not the
        // 1.7 MB a per-sample history would cost.
        let (problem, ga) = setup();
        let mut snap = Snapshot::capture("j", &ga.init(&problem, 16));
        let mut history = Vec::with_capacity(100_000);
        let mut best = f64::INFINITY;
        for i in 0..100_000u64 {
            if i % 10_000 == 0 {
                best = 1e12 / (i + 1) as f64;
            }
            history.push(best);
        }
        snap.history = history;
        snap.samples = 100_000;
        let rendered = snap.render();
        assert!(rendered.len() < 8 * 1024, "snapshot is {} bytes", rendered.len());
        let parsed = Snapshot::parse(&rendered).unwrap();
        assert_eq!(parsed.history.len(), 100_000);
        for (a, b) in parsed.history.iter().zip(&snap.history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn infinity_history_survives_the_roundtrip() {
        // Before the first feasible design the history is +inf; the
        // format must carry that exactly.
        let (problem, ga) = setup();
        let mut snap = Snapshot::capture("j", &ga.init(&problem, 16));
        snap.history = vec![f64::INFINITY, 1.5];
        snap.samples = 2;
        let parsed = Snapshot::parse(&snap.render()).unwrap();
        assert!(parsed.history[0].is_infinite());
        assert_eq!(parsed.history[1], 1.5);
    }
}
