//! Tenants: who a job belongs to, and what that tenant may consume.
//!
//! The registry serves many users from one worker pool and one cache.
//! A [`TenantSpec`] names one of those users and carries their
//! scheduling weight, optional bearer token, and admission quotas; a
//! [`TenantSet`] is the service's whole roster, parsed from a
//! `--tenants` file of `[tenant]` sections:
//!
//! ```text
//! [tenant]
//! id = alpha                 # required; [A-Za-z0-9._-]
//! token = alpha-secret       # optional bearer token (auth is enforced
//!                            # once any tenant in the set has one)
//! weight = 3                 # weighted-round-robin share (default 1)
//! max_queued = 100           # cap on jobs waiting in the queue
//! max_running = 2            # cap on jobs running concurrently
//! max_evals = 1000000        # lifetime cap on submitted eval budget
//! ```
//!
//! An *empty* set is the permissive single-user mode every earlier
//! version ran in: unknown tenant ids are auto-registered with default
//! weight and no quotas, and nothing on the wire needs a token. A
//! non-empty set is strict: submitting under an unlisted tenant id is
//! rejected, and — when any tenant defines a token — every request must
//! authenticate.

use crate::textio::{self, Section, TextError};

/// The tenant jobs belong to when nobody says otherwise (including every
/// job replayed from a journal written before tenancy existed).
pub const DEFAULT_TENANT: &str = "default";

/// One tenant: identity, credential, scheduling weight, and quotas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// The tenant id jobs are tagged with (`[A-Za-z0-9._-]+`).
    pub id: String,
    /// Bearer token for the wire front-end; `None` means this tenant
    /// cannot authenticate (usable only when the service runs authless).
    pub token: Option<String>,
    /// Weighted-round-robin share relative to other tenants (≥ 1).
    pub weight: u64,
    /// Cap on jobs waiting in this tenant's queue, when set.
    pub max_queued: Option<usize>,
    /// Cap on this tenant's concurrently running jobs, when set.
    pub max_running: Option<usize>,
    /// Lifetime cap on total submitted eval budget, when set.
    pub max_evals: Option<u64>,
}

impl TenantSpec {
    /// A tenant with default weight and no token or quotas.
    pub fn named(id: impl Into<String>) -> TenantSpec {
        TenantSpec {
            id: id.into(),
            token: None,
            weight: 1,
            max_queued: None,
            max_running: None,
            max_evals: None,
        }
    }

    fn validate(&self) -> Result<(), TextError> {
        if !valid_tenant_id(&self.id) {
            return Err(TextError::new(format!(
                "bad tenant id {:?} (use letters, digits, '.', '_', '-')",
                self.id
            )));
        }
        if self.weight == 0 {
            return Err(TextError::new(format!("tenant {:?}: weight must be at least 1", self.id)));
        }
        Ok(())
    }
}

impl Default for TenantSpec {
    fn default() -> TenantSpec {
        TenantSpec::named(DEFAULT_TENANT)
    }
}

/// Whether `id` is usable as a tenant id: non-empty ASCII letters,
/// digits, `.`, `_`, `-` (it travels through section names, journal
/// lines, and URLs, so no whitespace or brackets).
pub fn valid_tenant_id(id: &str) -> bool {
    !id.is_empty()
        && id.chars().all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-')
}

/// The service's tenant roster. See the module docs for the two modes
/// (empty = permissive, non-empty = strict).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantSet {
    tenants: Vec<TenantSpec>,
}

impl TenantSet {
    /// Builds a set, validating ids, weights, and uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`TextError`] on a bad id, zero weight, duplicate id, or
    /// duplicate token (tokens identify tenants, so sharing one would
    /// make authentication ambiguous).
    pub fn new(tenants: Vec<TenantSpec>) -> Result<TenantSet, TextError> {
        let mut ids = std::collections::HashSet::new();
        let mut tokens = std::collections::HashSet::new();
        for tenant in &tenants {
            tenant.validate()?;
            if !ids.insert(tenant.id.clone()) {
                return Err(TextError::new(format!("duplicate tenant id {:?}", tenant.id)));
            }
            if let Some(token) = &tenant.token {
                if token.is_empty() {
                    return Err(TextError::new(format!("tenant {:?}: empty token", tenant.id)));
                }
                if !tokens.insert(token.clone()) {
                    return Err(TextError::new(format!(
                        "tenant {:?}: token already belongs to another tenant",
                        tenant.id
                    )));
                }
            }
        }
        Ok(TenantSet { tenants })
    }

    /// Parses a roster document: one `[tenant]` section per tenant with
    /// the keys shown in the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`TextError`] on syntax errors, unknown sections or keys,
    /// or any [`TenantSet::new`] violation.
    pub fn parse(text: &str) -> Result<TenantSet, TextError> {
        let mut tenants = Vec::new();
        for section in &textio::parse_sections(text)? {
            if section.name != "tenant" {
                return Err(TextError::new(format!(
                    "unknown section [{}] (tenant files contain [tenant] sections)",
                    section.name
                )));
            }
            tenants.push(parse_tenant_section(section)?);
        }
        TenantSet::new(tenants)
    }

    /// True when no tenants are configured (permissive mode).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// How many tenants are configured.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the wire front-end must demand bearer tokens: yes as soon
    /// as any tenant defines one (a token-less set still configures
    /// weights and quotas for trusted local use).
    pub fn requires_auth(&self) -> bool {
        self.tenants.iter().any(|t| t.token.is_some())
    }

    /// The tenant with this id, if configured.
    pub fn get(&self, id: &str) -> Option<&TenantSpec> {
        self.tenants.iter().find(|t| t.id == id)
    }

    /// The tenant this bearer token authenticates, if any.
    pub fn by_token(&self, token: &str) -> Option<&TenantSpec> {
        self.tenants.iter().find(|t| t.token.as_deref() == Some(token))
    }

    /// Iterates the configured tenants in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &TenantSpec> {
        self.tenants.iter()
    }
}

fn parse_tenant_section(section: &Section) -> Result<TenantSpec, TextError> {
    let mut tenant = TenantSpec::named(section.require("id")?);
    for (key, value) in &section.entries {
        match key.as_str() {
            "id" => {}
            "token" => tenant.token = Some(value.clone()),
            "weight" => tenant.weight = section.get_parsed_or("weight", 1)?,
            "max_queued" => tenant.max_queued = Some(section.get_parsed_or("max_queued", 0)?),
            "max_running" => tenant.max_running = Some(section.get_parsed_or("max_running", 0)?),
            "max_evals" => tenant.max_evals = Some(section.get_parsed_or("max_evals", 0)?),
            other => {
                return Err(TextError::new(format!(
                    "[tenant {}] has unknown key `{other}`",
                    tenant.id
                )));
            }
        }
    }
    Ok(tenant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_parses_with_defaults_and_quotas() {
        let text = "\
# staging roster
[tenant]
id = alpha
token = alpha-secret
weight = 3
max_queued = 10
max_running = 2
max_evals = 5000

[tenant]
id = beta
";
        let set = TenantSet::parse(text).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.requires_auth(), "one token is enough to demand auth");
        let alpha = set.get("alpha").unwrap();
        assert_eq!(alpha.weight, 3);
        assert_eq!(alpha.max_queued, Some(10));
        assert_eq!(alpha.max_running, Some(2));
        assert_eq!(alpha.max_evals, Some(5000));
        let beta = set.get("beta").unwrap();
        assert_eq!(beta.weight, 1, "weight defaults to 1");
        assert_eq!((beta.max_queued, beta.max_running, beta.max_evals), (None, None, None));
        assert_eq!(set.by_token("alpha-secret").unwrap().id, "alpha");
        assert!(set.by_token("wrong").is_none());
    }

    #[test]
    fn tokenless_roster_configures_weights_without_auth() {
        let set = TenantSet::parse("[tenant]\nid = a\nweight = 3\n[tenant]\nid = b\n").unwrap();
        assert!(!set.requires_auth());
        assert!(!set.is_empty());
    }

    #[test]
    fn bad_rosters_are_named_errors() {
        for (text, needle) in [
            ("[tenant]\nweight = 2\n", "missing `id`"),
            ("[tenant]\nid = sp ace\n", "bad tenant id"),
            ("[tenant]\nid = a\nweight = 0\n", "weight"),
            ("[tenant]\nid = a\nweight = nope\n", "bad `weight`"),
            ("[tenant]\nid = a\n[tenant]\nid = a\n", "duplicate tenant id"),
            ("[tenant]\nid = a\ntoken = t\n[tenant]\nid = b\ntoken = t\n", "token"),
            ("[tenant]\nid = a\ntoken =\n", "empty token"),
            ("[tenant]\nid = a\nquota = 4\n", "unknown key"),
            ("[user]\nid = a\n", "unknown section"),
        ] {
            let err = TenantSet::parse(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?} → {err}");
        }
    }

    #[test]
    fn empty_set_is_permissive_default() {
        let set = TenantSet::default();
        assert!(set.is_empty());
        assert!(!set.requires_auth());
        assert!(set.get(DEFAULT_TENANT).is_none());
        assert!(valid_tenant_id(DEFAULT_TENANT));
    }
}
