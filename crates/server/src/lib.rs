//! `digamma-server`: a concurrent search service over the DiGamma
//! co-optimization library.
//!
//! The library crates answer one question at a time ("best design for
//! this model on this platform"); this crate is the layer between those
//! calls and a service that answers *many* users' questions fast:
//!
//! * [`SearchServer`] / [`JobSpec`] — a job queue that schedules
//!   co-optimization requests (model × platform × objective ×
//!   algorithm) across a scoped-thread worker pool,
//! * [`ShardedFitnessCache`] — a capacity-bounded memo of per-layer
//!   cost-model results keyed by a stable hash of (layer shape, decoded
//!   mapping, hardware/model constants); hits skip the cost model
//!   entirely, and per-job [`JobCacheView`]s report each job's reuse,
//! * [`Snapshot`] — versioned text checkpoints of GA state, so a killed
//!   search resumes **bit-identically** instead of starting over, and
//! * [`parse_manifest`] — the text manifest format the `digamma-serve`
//!   binary reads.
//!
//! # Quickstart
//!
//! ```
//! use digamma_server::{JobAlgorithm, JobSpec, SearchServer, ServerConfig};
//! use digamma::Objective;
//! use digamma_costmodel::Platform;
//! use digamma_workload::zoo;
//!
//! let server = SearchServer::new(ServerConfig { workers: 2, ..Default::default() });
//! let mut job = JobSpec::new(
//!     "ncf-edge",
//!     zoo::ncf(),
//!     Platform::edge(),
//!     Objective::Latency,
//!     JobAlgorithm::DiGamma,
//! );
//! job.budget = 120;
//! job.population_size = 12;
//! let reports = server.run(&[job]);
//! assert!(reports[0].best.is_some());
//! assert!(reports[0].cache_hits > 0, "elite re-evaluations hit the memo");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
pub mod cachefile;
mod job;
mod journal;
mod manifest;
mod metrics;
mod queue;
mod registry;
mod snapshot;
pub mod textio;

mod tenant;

pub use journal::{Journal, JOURNAL_VERSION};

pub use cache::{
    CacheStats, EvictionPolicy, JobCacheView, JobGenomeMemoView, ShardedFitnessCache,
    ShardedGenomeMemo,
};
pub use job::{JobAlgorithm, JobReport, JobSpec};
pub use manifest::{parse_manifest, parse_manifest_full, render_job, Manifest, ServerOverrides};
pub use queue::{AnalyticsUpdate, JobControl, JobProgress, SearchServer, ServerConfig};
pub use registry::{
    JobId, JobRegistry, JobStatus, JobView, RegistryStats, SubmitError, TenantStats,
};
pub use snapshot::{Snapshot, SNAPSHOT_VERSION};
pub use tenant::{valid_tenant_id, TenantSet, TenantSpec, DEFAULT_TENANT};
