//! On-disk persistence for the fitness memo: spill shards at checkpoint
//! cadence, warm-start at boot.
//!
//! The per-layer memo's keys are already stable across processes
//! ([`digamma_costmodel::cachekey`], versioned via `KEY_VERSION`), so a
//! restarted `digamma-netd` can keep its accumulated *cost-model* work —
//! not just its jobs — by writing `(key, CostReport)` pairs to a text
//! file and reloading them at startup. Format (built on
//! [`crate::textio`]):
//!
//! ```text
//! [fitness-memo]
//! version = 1            # this file format
//! key_version = 1        # digamma_costmodel::cachekey::KEY_VERSION
//! count = 2
//!
//! [entry]
//! key = 16-hex stable cache key
//! latency_cycles = 16-hex f64 bits        # every f64 is bit-exact
//! ...                                      # see render_entry
//! ```
//!
//! Robustness contract:
//!
//! * **bit-exact round-trip** — every `f64` travels as its IEEE-754 bit
//!   pattern, every `u128` as decimal; a reloaded report compares equal
//!   to the bit (property-tested in `tests/cachefile.rs`),
//! * **versioned** — a `version` or `key_version` mismatch discards the
//!   whole file (stale keys must never alias a new cost model),
//! * **corrupt-tolerant** — a malformed `[entry]` section is skipped
//!   (counted, not fatal), so a partially damaged file still warms the
//!   cache with its intact entries; an unreadable or unparsable file
//!   degrades to a cold start, never a crash.

use crate::textio::{
    f64_from_text, f64_to_text, f64s_from_text, f64s_to_text, parse_sections, render_sections,
    Section, TextError,
};
use digamma_costmodel::latency::{Bottleneck, LatencyBreakdown};
use digamma_costmodel::{
    analysis::LinkTraffic, cachekey::KEY_VERSION, BufferRequirement, CostReport, HwConfig,
};
use digamma_obs::{FailAction, FailSet};
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Current spill-file format version.
pub const CACHE_FILE_VERSION: u64 = 1;

/// What a load reports back (for logs and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLoad {
    /// Entries parsed and usable.
    pub loaded: usize,
    /// Malformed `[entry]` sections skipped.
    pub skipped: usize,
}

fn u64s_to_text(values: &[u64]) -> String {
    let rendered: Vec<String> = values.iter().map(u64::to_string).collect();
    rendered.join(",")
}

fn u64s_from_text(s: &str) -> Result<Vec<u64>, TextError> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|v| v.trim().parse().map_err(|_| TextError::new(format!("bad u64 list: {s:?}"))))
        .collect()
}

fn u128s_to_text(values: &[u128]) -> String {
    let rendered: Vec<String> = values.iter().map(u128::to_string).collect();
    rendered.join(",")
}

fn u128s_from_text(s: &str) -> Result<Vec<u128>, TextError> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|v| v.trim().parse().map_err(|_| TextError::new(format!("bad u128 list: {s:?}"))))
        .collect()
}

fn render_entry(key: u64, report: &CostReport) -> Section {
    let mut s = Section::new("entry");
    s.push("key", format!("{key:016x}"));
    s.push("latency_cycles", f64_to_text(report.latency_cycles));
    s.push("compute_cycles", f64_to_text(report.latency.compute_cycles));
    s.push("dram_cycles", f64_to_text(report.latency.dram_cycles));
    s.push("noc_cycles", f64s_to_text(&report.latency.noc_cycles));
    s.push("fill_cycles", f64_to_text(report.latency.fill_cycles));
    s.push("total_cycles", f64_to_text(report.latency.total_cycles));
    let bottleneck = match report.latency.bottleneck {
        Bottleneck::Compute => "compute".to_owned(),
        Bottleneck::Dram => "dram".to_owned(),
        Bottleneck::Noc(i) => format!("noc:{i}"),
    };
    s.push("bottleneck", bottleneck);
    s.push("energy_pj", f64_to_text(report.energy_pj));
    s.push("area_um2", f64_to_text(report.area_um2));
    s.push("pe_area_um2", f64_to_text(report.pe_area_um2));
    s.push("hw_fanouts", u64s_to_text(&report.hw.fanouts));
    s.push("hw_l2_words", report.hw.l2_words.to_string());
    s.push("hw_mid_words", u64s_to_text(&report.hw.mid_words_per_unit));
    s.push("hw_l1_words", report.hw.l1_words_per_pe.to_string());
    s.push("buf_l2_words", report.buffers.l2_words.to_string());
    s.push("buf_mid_words", u64s_to_text(&report.buffers.mid_words_per_unit));
    s.push("buf_l1_words", report.buffers.l1_words_per_pe.to_string());
    // Four u128 counters per level, flattened in level order.
    let traffic: Vec<u128> = report
        .traffic
        .iter()
        .flat_map(|t| [t.weight, t.input, t.output_write, t.output_read])
        .collect();
    s.push("traffic", u128s_to_text(&traffic));
    s.push("utilization", f64_to_text(report.utilization));
    s.push("macs", report.macs.to_string());
    s
}

/// A required scalar: unlike `get_parsed_or`, a missing or unparsable
/// field is an error — within an `[entry]` every field is always
/// rendered, so absence means corruption and the entry must be skipped,
/// never filled with a default that would silently poison evaluations.
fn require_parsed<T: std::str::FromStr>(s: &Section, key: &str) -> Result<T, TextError> {
    s.require(key)?.parse().map_err(|_| TextError::new(format!("bad `{key}` in [entry]")))
}

fn parse_entry(s: &Section) -> Result<(u64, CostReport), TextError> {
    let key = u64::from_str_radix(s.require("key")?, 16)
        .map_err(|_| TextError::new("bad entry key (need 16 hex digits)"))?;
    let bottleneck = match s.require("bottleneck")? {
        "compute" => Bottleneck::Compute,
        "dram" => Bottleneck::Dram,
        other => match other.strip_prefix("noc:").and_then(|i| i.parse().ok()) {
            Some(i) => Bottleneck::Noc(i),
            None => return Err(TextError::new(format!("bad bottleneck {other:?}"))),
        },
    };
    let latency = LatencyBreakdown {
        compute_cycles: f64_from_text(s.require("compute_cycles")?)?,
        dram_cycles: f64_from_text(s.require("dram_cycles")?)?,
        noc_cycles: f64s_from_text(s.require("noc_cycles")?)?,
        fill_cycles: f64_from_text(s.require("fill_cycles")?)?,
        total_cycles: f64_from_text(s.require("total_cycles")?)?,
        bottleneck,
    };
    let flat = u128s_from_text(s.require("traffic")?)?;
    if !flat.len().is_multiple_of(4) {
        return Err(TextError::new("traffic list must hold 4 counters per level"));
    }
    let traffic: Vec<LinkTraffic> = flat
        .chunks_exact(4)
        .map(|c| LinkTraffic { weight: c[0], input: c[1], output_write: c[2], output_read: c[3] })
        .collect();
    let report = CostReport {
        latency_cycles: f64_from_text(s.require("latency_cycles")?)?,
        latency,
        energy_pj: f64_from_text(s.require("energy_pj")?)?,
        area_um2: f64_from_text(s.require("area_um2")?)?,
        pe_area_um2: f64_from_text(s.require("pe_area_um2")?)?,
        hw: HwConfig {
            fanouts: u64s_from_text(s.require("hw_fanouts")?)?,
            l2_words: require_parsed(s, "hw_l2_words")?,
            mid_words_per_unit: u64s_from_text(s.require("hw_mid_words")?)?,
            l1_words_per_pe: require_parsed(s, "hw_l1_words")?,
        },
        buffers: BufferRequirement {
            l2_words: require_parsed(s, "buf_l2_words")?,
            mid_words_per_unit: u64s_from_text(s.require("buf_mid_words")?)?,
            l1_words_per_pe: require_parsed(s, "buf_l1_words")?,
        },
        traffic,
        utilization: f64_from_text(s.require("utilization")?)?,
        macs: require_parsed(s, "macs")?,
    };
    Ok((key, report))
}

/// Renders a full spill document for the given memo entries.
pub fn render_cache_file(entries: &[(u64, Arc<CostReport>)]) -> String {
    let mut head = Section::new("fitness-memo");
    head.push("version", CACHE_FILE_VERSION.to_string());
    head.push("key_version", KEY_VERSION.to_string());
    head.push("count", entries.len().to_string());
    let mut sections = vec![head];
    sections.extend(entries.iter().map(|(key, report)| render_entry(*key, report)));
    render_sections(&sections)
}

/// Parses a spill document. A header mismatch (wrong format or key
/// version) yields zero entries; malformed `[entry]` sections are
/// skipped and counted.
///
/// # Errors
///
/// Returns [`TextError`] only when the document is not even
/// section-structured text; every finer-grained problem degrades to
/// skipped entries.
pub fn parse_cache_file(text: &str) -> Result<(Vec<(u64, CostReport)>, CacheLoad), TextError> {
    let sections = parse_sections(text)?;
    let Some(head) = sections.first().filter(|s| s.name == "fitness-memo") else {
        return Err(TextError::new("not a fitness-memo file"));
    };
    let version = head.get_parsed_or("version", 0u64)?;
    let key_version = head.get_parsed_or("key_version", 0u64)?;
    if version != CACHE_FILE_VERSION || key_version != KEY_VERSION {
        // A stale file must never alias into a newer cost model: treat
        // it as empty rather than failing the boot.
        return Ok((Vec::new(), CacheLoad::default()));
    }
    let mut entries = Vec::new();
    let mut load = CacheLoad::default();
    for section in sections.iter().filter(|s| s.name == "entry") {
        match parse_entry(section) {
            Ok(pair) => {
                entries.push(pair);
                load.loaded += 1;
            }
            Err(_) => load.skipped += 1,
        }
    }
    Ok((entries, load))
}

/// Writes `bytes` to `tmp`, fsyncs, then atomically renames onto
/// `path` — the durability discipline every spill and snapshot shares.
/// The rename only ever promotes fully durable bytes, so a kill or
/// power cut at any instant leaves either the old file or the new one,
/// never a truncated hybrid. The named failpoint injects storage
/// faults: `short` tears the tmp write (the old file survives untouched
/// since the rename never runs), `err`/`enospc` fail it outright.
///
/// # Errors
///
/// Returns [`std::io::Error`] from the write, sync, or rename; on any
/// error the previous `path` contents are intact.
pub(crate) fn persist_atomic(
    tmp: &Path,
    path: &Path,
    bytes: &[u8],
    faults: &FailSet,
    point: &str,
) -> std::io::Result<()> {
    let mut file = std::fs::File::create(tmp)?;
    match faults.fired(point) {
        Some(FailAction::Short) => {
            file.write_all(&bytes[..bytes.len() / 2])?;
            let _ = file.sync_all();
            return Err(std::io::Error::other(format!(
                "injected torn write at failpoint {point:?}"
            )));
        }
        Some(action) => {
            if let Some(e) = action.to_io_error(point) {
                return Err(e);
            }
        }
        None => {}
    }
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(tmp, path)
}

/// Atomically writes the spill file (write + fsync + rename via
/// [`persist_atomic`]; the `cache.spill` failpoint injects faults).
///
/// # Errors
///
/// Returns [`std::io::Error`] when the directory is unwritable; the
/// previous spill file, if any, survives every failure.
pub fn write_cache_file(
    path: &Path,
    entries: &[(u64, Arc<CostReport>)],
    faults: &FailSet,
) -> std::io::Result<()> {
    let tmp = path.with_extension("cache.tmp");
    persist_atomic(&tmp, path, render_cache_file(entries).as_bytes(), faults, "cache.spill")
}

/// Best-effort load: a missing, unreadable, or corrupt file is a cold
/// start (empty result), never an error.
pub fn read_cache_file(path: &Path) -> (Vec<(u64, CostReport)>, CacheLoad) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return (Vec::new(), CacheLoad::default());
    };
    parse_cache_file(&text).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma_costmodel::{Evaluator, Mapping, Platform};
    use digamma_workload::{zoo, Layer};

    fn sample_entries() -> Vec<(u64, Arc<CostReport>)> {
        let eval = Evaluator::new(Platform::edge());
        let mut entries = Vec::new();
        for model in [zoo::ncf(), zoo::dlrm()] {
            for u in model.unique_layers().iter().take(3) {
                let m = Mapping::row_major_example(&u.layer, 4, 8);
                let key = eval.cache_key(&u.layer, &m);
                entries.push((key, Arc::new(eval.evaluate(&u.layer, &m).unwrap())));
            }
        }
        // A three-level mapping exercises mid buffers and NoC vectors.
        let layer = Layer::conv("deep", 16, 8, 8, 8, 3, 3, 1);
        let m = Mapping::new(vec![
            digamma_costmodel::LevelSpec {
                fanout: 2,
                spatial_dim: digamma_workload::Dim::K,
                order: digamma_workload::Dim::ALL,
                tile: digamma_workload::DimVec([8, 8, 8, 8, 3, 3]),
            },
            digamma_costmodel::LevelSpec {
                fanout: 2,
                spatial_dim: digamma_workload::Dim::Y,
                order: digamma_workload::Dim::ALL,
                tile: digamma_workload::DimVec([4, 8, 4, 8, 3, 3]),
            },
            digamma_costmodel::LevelSpec {
                fanout: 2,
                spatial_dim: digamma_workload::Dim::X,
                order: digamma_workload::Dim::ALL,
                tile: digamma_workload::DimVec([2, 4, 2, 2, 3, 1]),
            },
        ]);
        entries.push((eval.cache_key(&layer, &m), Arc::new(eval.evaluate(&layer, &m).unwrap())));
        entries
    }

    fn assert_report_bits(a: &CostReport, b: &CostReport) {
        assert_eq!(a.latency_cycles.to_bits(), b.latency_cycles.to_bits());
        assert_eq!(a.latency.compute_cycles.to_bits(), b.latency.compute_cycles.to_bits());
        assert_eq!(a.latency.dram_cycles.to_bits(), b.latency.dram_cycles.to_bits());
        assert_eq!(a.latency.noc_cycles.len(), b.latency.noc_cycles.len());
        for (x, y) in a.latency.noc_cycles.iter().zip(&b.latency.noc_cycles) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.latency.fill_cycles.to_bits(), b.latency.fill_cycles.to_bits());
        assert_eq!(a.latency.total_cycles.to_bits(), b.latency.total_cycles.to_bits());
        assert_eq!(a.latency.bottleneck, b.latency.bottleneck);
        assert_eq!(a.energy_pj.to_bits(), b.energy_pj.to_bits());
        assert_eq!(a.area_um2.to_bits(), b.area_um2.to_bits());
        assert_eq!(a.pe_area_um2.to_bits(), b.pe_area_um2.to_bits());
        assert_eq!(a.hw, b.hw);
        assert_eq!(a.buffers, b.buffers);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
        assert_eq!(a.macs, b.macs);
    }

    #[test]
    fn spill_round_trips_bit_exactly() {
        let entries = sample_entries();
        let text = render_cache_file(&entries);
        let (back, load) = parse_cache_file(&text).unwrap();
        assert_eq!(load.loaded, entries.len());
        assert_eq!(load.skipped, 0);
        assert_eq!(back.len(), entries.len());
        for ((ka, ra), (kb, rb)) in entries.iter().zip(&back) {
            assert_eq!(ka, kb);
            assert_report_bits(ra, rb);
        }
    }

    #[test]
    fn stale_versions_yield_a_cold_start() {
        let entries = sample_entries();
        let text = render_cache_file(&entries);
        let wrong_key = text.replacen(
            &format!("key_version = {KEY_VERSION}"),
            &format!("key_version = {}", KEY_VERSION + 1),
            1,
        );
        let (back, load) = parse_cache_file(&wrong_key).unwrap();
        assert!(back.is_empty(), "stale key version must discard everything");
        assert_eq!(load, CacheLoad::default());
        let wrong_fmt = text.replacen(
            &format!("version = {CACHE_FILE_VERSION}"),
            &format!("version = {}", CACHE_FILE_VERSION + 1),
            1,
        );
        assert!(parse_cache_file(&wrong_fmt).unwrap().0.is_empty());
    }

    #[test]
    fn corrupt_entries_are_skipped_not_fatal() {
        let entries = sample_entries();
        let mut text = render_cache_file(&entries);
        // Damage one entry's latency field beyond recognition.
        text = text.replacen("latency_cycles = ", "latency_cycles = zz", 1);
        let (back, load) = parse_cache_file(&text).unwrap();
        assert_eq!(load.skipped, 1, "the damaged entry is skipped");
        assert_eq!(back.len(), entries.len() - 1, "intact entries survive");
    }

    #[test]
    fn missing_fields_skip_the_entry_never_default() {
        // A lost line must skip the whole entry — defaulting (e.g. a
        // buffer size to 0 or MAX) would warm-start the cache with a
        // report that silently poisons every search touching that key.
        let entries = sample_entries();
        let rendered = render_cache_file(&entries);
        for victim in ["buf_l2_words", "macs", "hw_fanouts", "traffic", "noc_cycles"] {
            // Drop only the FIRST occurrence of the victim line.
            let mut dropped = false;
            let damaged: String = rendered
                .lines()
                .filter(|line| {
                    if !dropped && line.starts_with(&format!("{victim} = ")) {
                        dropped = true;
                        false
                    } else {
                        true
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            let (back, load) = parse_cache_file(&damaged).unwrap();
            assert_eq!(load.skipped, 1, "missing {victim} must skip its entry");
            assert_eq!(back.len(), entries.len() - 1, "missing {victim}");
        }
    }

    #[test]
    fn unreadable_files_degrade_to_cold_start() {
        let dir = std::env::temp_dir().join(format!("digamma-cachefile-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fitness-memo.cache");
        // Missing file.
        assert_eq!(read_cache_file(&path).0.len(), 0);
        // Garbage file.
        std::fs::write(&path, "not a cache at all = [[[").unwrap();
        assert_eq!(read_cache_file(&path).0.len(), 0);
        // Real file round-trips through disk.
        let entries = sample_entries();
        write_cache_file(&path, &entries, &FailSet::new()).unwrap();
        let (back, load) = read_cache_file(&path);
        assert_eq!(load.loaded, entries.len());
        assert_eq!(back.len(), entries.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_storage_faults_never_clobber_the_previous_spill() {
        let dir =
            std::env::temp_dir().join(format!("digamma-cachefile-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fitness-memo.cache");
        let entries = sample_entries();
        write_cache_file(&path, &entries, &FailSet::new()).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();

        let faults = FailSet::new();
        faults.configure("cache.spill=enospc,once").unwrap();
        let err = write_cache_file(&path, &entries, &faults).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "ENOSPC must surface as the real errno");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), good, "old spill intact");

        faults.configure("cache.spill=short,once").unwrap();
        assert!(write_cache_file(&path, &entries, &faults).is_err(), "torn write reports");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), good, "torn tmp never promoted");

        // Disarmed again, the write goes through.
        faults.clear();
        write_cache_file(&path, &entries, &faults).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
