//! Job manifests: the text form in which work arrives at `digamma-serve`.
//!
//! A manifest is a [`crate::textio`] document with one `[job]` section
//! per search request:
//!
//! ```text
//! # Co-design batch for the edge SoC tape-out.
//! [job]
//! name = ncf-edge                # default: job-<index>
//! model = ncf                    # required; any zoo name
//! platform = edge                # edge | cloud (default edge)
//! objective = latency            # latency | energy | edp (default latency)
//! algorithm = digamma            # digamma | gamma[:buffer|:medium|:compute]
//!                                # | random | stdga | pso | tbpsa
//!                                # | (1+1)-es | de | portfolio | cma
//! budget = 600                   # design evaluations (default 600)
//! seed = 1                       # RNG seed (default 0)
//! population = 20                # GA population (default 20)
//! threads = 1                    # per-job eval threads (default 1)
//! checkpoint_every = 8           # generations between snapshots
//! ```

use crate::job::{JobAlgorithm, JobSpec};
use crate::textio::{self, TextError};
use digamma::Objective;
use digamma_costmodel::Platform;
use std::collections::HashSet;

/// Parses a whole manifest into job specs, in document order.
///
/// # Errors
///
/// Returns [`TextError`] on syntax errors, unknown names, duplicate job
/// names, or an empty manifest.
pub fn parse_manifest(text: &str) -> Result<Vec<JobSpec>, TextError> {
    let sections = textio::parse_sections(text)?;
    let mut jobs = Vec::new();
    let mut names = HashSet::new();
    for section in &sections {
        if section.name != "job" {
            return Err(TextError::new(format!(
                "unknown section [{}] (manifests contain only [job])",
                section.name
            )));
        }
        let index = jobs.len();
        let name = section.get("name").map_or_else(|| format!("job-{index}"), str::to_owned);
        if !names.insert(name.clone()) {
            return Err(TextError::new(format!("duplicate job name {name:?}")));
        }
        let model = JobSpec::model_by_name(section.require("model")?)?;
        let platform = match section.get("platform") {
            Some(p) => JobSpec::platform_by_name(p)?,
            None => Platform::edge(),
        };
        let objective = match section.get("objective") {
            Some(o) => JobSpec::objective_by_name(o)?,
            None => Objective::Latency,
        };
        let algorithm = match section.get("algorithm") {
            Some(a) => JobAlgorithm::parse(a)?,
            None => JobAlgorithm::DiGamma,
        };
        let mut spec = JobSpec::new(name, model, platform, objective, algorithm);
        spec.budget = section.get_parsed_or("budget", spec.budget)?;
        spec.seed = section.get_parsed_or("seed", spec.seed)?;
        spec.population_size = section.get_parsed_or("population", spec.population_size)?;
        spec.threads = section.get_parsed_or("threads", spec.threads)?;
        spec.checkpoint_every =
            section.get("checkpoint_every").map(str::parse).transpose().map_err(|_| {
                TextError::new(format!("[job {}] has bad `checkpoint_every`", index))
            })?;
        if spec.population_size < 4 {
            return Err(TextError::new(format!(
                "job {:?}: population must be at least 4",
                spec.name
            )));
        }
        if spec.budget == 0 {
            return Err(TextError::new(format!("job {:?}: budget must be positive", spec.name)));
        }
        jobs.push(spec);
    }
    if jobs.is_empty() {
        return Err(TextError::new("manifest has no [job] sections"));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma::schemes::HwPreset;
    use digamma_opt::Algorithm;

    #[test]
    fn full_manifest_parses() {
        let text = "\
# batch
[job]
name = ncf-edge
model = ncf
platform = edge
objective = latency
algorithm = digamma
budget = 500
seed = 7
population = 16
threads = 2
checkpoint_every = 4

[job]
model = dlrm
platform = cloud
objective = edp
algorithm = gamma:compute

[job]
model = ncf
algorithm = cma
";
        let jobs = parse_manifest(text).unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].name, "ncf-edge");
        assert_eq!(jobs[0].budget, 500);
        assert_eq!(jobs[0].seed, 7);
        assert_eq!(jobs[0].population_size, 16);
        assert_eq!(jobs[0].threads, 2);
        assert_eq!(jobs[0].checkpoint_every, Some(4));
        assert_eq!(jobs[1].name, "job-1");
        assert_eq!(jobs[1].platform.name, "cloud");
        assert_eq!(jobs[1].objective, Objective::Edp);
        assert_eq!(jobs[1].algorithm, JobAlgorithm::Gamma(HwPreset::ComputeFocused));
        assert_eq!(jobs[2].algorithm, JobAlgorithm::Baseline(Algorithm::Cma));
        assert_eq!(jobs[2].budget, 600, "defaults apply");
    }

    #[test]
    fn errors_name_the_problem() {
        for (text, needle) in [
            ("", "no [job]"),
            ("[job]\n", "missing `model`"),
            ("[job]\nmodel = gpt5\n", "unknown model"),
            ("[job]\nmodel = ncf\nplatform = tpu\n", "unknown platform"),
            ("[job]\nmodel = ncf\nalgorithm = annealing\n", "unknown algorithm"),
            ("[job]\nmodel = ncf\nbudget = 0\n", "budget"),
            ("[job]\nmodel = ncf\npopulation = 2\n", "population"),
            ("[job]\nname = a\nmodel = ncf\n[job]\nname = a\nmodel = ncf\n", "duplicate"),
            ("[batch]\n", "unknown section"),
        ] {
            let err = parse_manifest(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?} → {err}");
        }
    }
}
