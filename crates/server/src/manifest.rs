//! Job manifests: the text form in which work arrives at `digamma-serve`
//! and at `digamma-netd`'s `POST /jobs` endpoint.
//!
//! A manifest is a [`crate::textio`] document with one `[job]` section
//! per search request, plus an optional leading `[server]` section
//! overriding service knobs:
//!
//! ```text
//! # Co-design batch for the edge SoC tape-out.
//! [server]
//! workers = 4                    # worker threads (optional)
//! cache_capacity = 262144        # fitness memo entries, 0 = off
//! genome_cache_capacity = 65536  # whole-genome memo entries, 0 = off
//! event_log_capacity = 1024      # per-job event ring, newest N lines
//! eviction = lru                 # fifo | lru (default fifo)
//! checkpoint_every = 8           # default snapshot cadence
//!
//! [job]
//! name = ncf-edge                # default: job-<index>
//! model = ncf                    # required; any zoo name
//! platform = edge                # edge | cloud (default edge)
//! objective = latency            # latency | energy | edp (default latency)
//! algorithm = digamma            # digamma | gamma[:buffer|:medium|:compute]
//!                                # | random | stdga | pso | tbpsa
//!                                # | (1+1)-es | de | portfolio | cma
//! budget = 600                   # design evaluations (default 600)
//! seed = 1                       # RNG seed (default 0)
//! population = 20                # GA population (default 20)
//! threads = 1                    # per-job eval threads (>= 1; the
//!                                # registry clamps to its worker count)
//! checkpoint_every = 8           # generations between snapshots
//! tenant = alpha                 # owning tenant id (default "default";
//!                                # ignored when the wire front-end
//!                                # authenticates — the token decides)
//! ```
//!
//! Multi-tenant deployments additionally configure a tenant roster —
//! `digamma-netd --tenants FILE` — of `[tenant]` sections (parsed by
//! [`crate::tenant::TenantSet`], a separate document from the job
//! manifest):
//!
//! ```text
//! [tenant]
//! id = alpha                     # required; [A-Za-z0-9._-]
//! token = alpha-secret           # bearer token (optional; any token in
//!                                # the roster turns authentication on)
//! weight = 3                     # weighted-round-robin share (default 1)
//! max_queued = 100               # cap on waiting jobs (optional)
//! max_running = 2                # cap on concurrently running jobs
//! max_evals = 1000000            # lifetime submitted-eval-budget cap
//! ```

use crate::cache::EvictionPolicy;
use crate::job::{JobAlgorithm, JobSpec};
use crate::queue::ServerConfig;
use crate::textio::{self, Section, TextError};
use digamma::Objective;
use digamma_costmodel::Platform;
use std::collections::HashSet;

/// Service knobs a manifest's optional `[server]` section overrides.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerOverrides {
    /// Worker threads, when given.
    pub workers: Option<usize>,
    /// Fitness-cache capacity (`0` disables), when given.
    pub cache_capacity: Option<usize>,
    /// Whole-genome memo capacity (`0` disables), when given.
    pub genome_cache_capacity: Option<usize>,
    /// Cache eviction policy, when given.
    pub eviction: Option<EvictionPolicy>,
    /// Default snapshot cadence, when given.
    pub checkpoint_every: Option<u64>,
    /// Per-job event-log ring capacity, when given.
    pub event_log_capacity: Option<usize>,
}

impl ServerOverrides {
    /// Applies the overrides on top of a base configuration.
    pub fn apply(&self, config: &mut ServerConfig) {
        if let Some(workers) = self.workers {
            config.workers = workers;
        }
        if let Some(capacity) = self.cache_capacity {
            config.cache_capacity = capacity;
        }
        if let Some(capacity) = self.genome_cache_capacity {
            config.genome_cache_capacity = capacity;
        }
        if let Some(eviction) = self.eviction {
            config.eviction = eviction;
        }
        if let Some(every) = self.checkpoint_every {
            config.checkpoint_every = every;
        }
        if let Some(capacity) = self.event_log_capacity {
            config.event_log_capacity = capacity;
        }
    }
}

/// A fully parsed manifest: optional server overrides plus jobs in
/// document order.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Overrides from the optional `[server]` section.
    pub server: ServerOverrides,
    /// The requested jobs, in document order.
    pub jobs: Vec<JobSpec>,
}

/// Parses one `[job]` section into a spec. `index` positions the job in
/// its document (for the default name and error messages); `name`
/// collision checks are the caller's concern.
///
/// # Errors
///
/// Returns [`TextError`] on unknown names or out-of-range knobs.
pub fn parse_job_section(section: &Section, index: usize) -> Result<JobSpec, TextError> {
    let name = section.get("name").map_or_else(|| format!("job-{index}"), str::to_owned);
    let model = JobSpec::model_by_name(section.require("model")?)?;
    let platform = match section.get("platform") {
        Some(p) => JobSpec::platform_by_name(p)?,
        None => Platform::edge(),
    };
    let objective = match section.get("objective") {
        Some(o) => JobSpec::objective_by_name(o)?,
        None => Objective::Latency,
    };
    let algorithm = match section.get("algorithm") {
        Some(a) => JobAlgorithm::parse(a)?,
        None => JobAlgorithm::DiGamma,
    };
    let mut spec = JobSpec::new(name, model, platform, objective, algorithm);
    if let Some(tenant) = section.get("tenant") {
        if !crate::tenant::valid_tenant_id(tenant) {
            return Err(TextError::new(format!(
                "job {:?}: bad tenant id {tenant:?} (use letters, digits, '.', '_', '-')",
                spec.name
            )));
        }
        spec.tenant = tenant.to_owned();
    }
    spec.budget = section.get_parsed_or("budget", spec.budget)?;
    spec.seed = section.get_parsed_or("seed", spec.seed)?;
    spec.population_size = section.get_parsed_or("population", spec.population_size)?;
    spec.threads = section.get_parsed_or("threads", spec.threads)?;
    spec.checkpoint_every = section
        .get("checkpoint_every")
        .map(str::parse)
        .transpose()
        .map_err(|_| TextError::new(format!("[job {}] has bad `checkpoint_every`", index)))?;
    if spec.population_size < 4 {
        return Err(TextError::new(format!("job {:?}: population must be at least 4", spec.name)));
    }
    if spec.budget == 0 {
        return Err(TextError::new(format!("job {:?}: budget must be positive", spec.name)));
    }
    if spec.threads == 0 {
        return Err(TextError::new(format!("job {:?}: threads must be at least 1", spec.name)));
    }
    Ok(spec)
}

/// Renders a spec back to its `[job]` section — the inverse of
/// [`parse_job_section`] (the job journal persists specs this way).
///
/// The model must be a zoo model (manifest-submitted jobs always are);
/// composite or hand-built models have no manifest name to round-trip.
pub fn render_job(spec: &JobSpec) -> Section {
    let mut section = Section::new("job");
    section.push("name", &spec.name);
    section.push("tenant", &spec.tenant);
    section.push("model", spec.model.name());
    section.push("platform", &spec.platform.name);
    section.push("objective", spec.objective.to_string());
    section.push("algorithm", spec.algorithm.to_string());
    section.push("budget", spec.budget.to_string());
    section.push("seed", spec.seed.to_string());
    section.push("population", spec.population_size.to_string());
    section.push("threads", spec.threads.to_string());
    if let Some(every) = spec.checkpoint_every {
        section.push("checkpoint_every", every.to_string());
    }
    section
}

fn parse_server_section(section: &Section) -> Result<ServerOverrides, TextError> {
    let mut overrides = ServerOverrides::default();
    for (key, value) in &section.entries {
        match key.as_str() {
            "workers" => overrides.workers = Some(section.get_parsed_or("workers", 0)?),
            "cache_capacity" => {
                overrides.cache_capacity = Some(section.get_parsed_or("cache_capacity", 0)?);
            }
            "genome_cache_capacity" => {
                overrides.genome_cache_capacity =
                    Some(section.get_parsed_or("genome_cache_capacity", 0)?);
            }
            "event_log_capacity" => {
                overrides.event_log_capacity =
                    Some(section.get_parsed_or("event_log_capacity", 0)?);
            }
            "eviction" => {
                overrides.eviction = Some(EvictionPolicy::parse(value).ok_or_else(|| {
                    TextError::new(format!("[server] has bad `eviction`: {value:?} (fifo | lru)"))
                })?);
            }
            "checkpoint_every" => {
                overrides.checkpoint_every = Some(section.get_parsed_or("checkpoint_every", 0)?);
            }
            other => {
                return Err(TextError::new(format!("[server] has unknown key `{other}`")));
            }
        }
    }
    if overrides.workers == Some(0) {
        return Err(TextError::new("[server] workers must be at least 1"));
    }
    Ok(overrides)
}

/// Parses a whole manifest: an optional leading `[server]` section plus
/// job specs in document order.
///
/// # Errors
///
/// Returns [`TextError`] on syntax errors, unknown names or sections,
/// duplicate job names, or an empty manifest.
pub fn parse_manifest_full(text: &str) -> Result<Manifest, TextError> {
    let sections = textio::parse_sections(text)?;
    let mut server = ServerOverrides::default();
    let mut jobs = Vec::new();
    let mut names = HashSet::new();
    for section in &sections {
        match section.name.as_str() {
            "server" => {
                if !jobs.is_empty() {
                    return Err(TextError::new("[server] must precede the [job] sections"));
                }
                server = parse_server_section(section)?;
            }
            "job" => {
                let spec = parse_job_section(section, jobs.len())?;
                if !names.insert(spec.name.clone()) {
                    return Err(TextError::new(format!("duplicate job name {:?}", spec.name)));
                }
                jobs.push(spec);
            }
            other => {
                return Err(TextError::new(format!(
                    "unknown section [{other}] (manifests contain [server] and [job])"
                )));
            }
        }
    }
    if jobs.is_empty() {
        return Err(TextError::new("manifest has no [job] sections"));
    }
    Ok(Manifest { server, jobs })
}

/// Parses a manifest's job specs, in document order (the historical
/// entry point; server overrides, if any, are validated and dropped).
///
/// # Errors
///
/// See [`parse_manifest_full`].
pub fn parse_manifest(text: &str) -> Result<Vec<JobSpec>, TextError> {
    Ok(parse_manifest_full(text)?.jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma::schemes::HwPreset;
    use digamma_opt::Algorithm;

    #[test]
    fn full_manifest_parses() {
        let text = "\
# batch
[job]
name = ncf-edge
model = ncf
platform = edge
objective = latency
algorithm = digamma
budget = 500
seed = 7
population = 16
threads = 2
checkpoint_every = 4

[job]
model = dlrm
platform = cloud
objective = edp
algorithm = gamma:compute

[job]
model = ncf
algorithm = cma
";
        let jobs = parse_manifest(text).unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].name, "ncf-edge");
        assert_eq!(jobs[0].budget, 500);
        assert_eq!(jobs[0].seed, 7);
        assert_eq!(jobs[0].population_size, 16);
        assert_eq!(jobs[0].threads, 2);
        assert_eq!(jobs[0].checkpoint_every, Some(4));
        assert_eq!(jobs[1].name, "job-1");
        assert_eq!(jobs[1].platform.name, "cloud");
        assert_eq!(jobs[1].objective, Objective::Edp);
        assert_eq!(jobs[1].algorithm, JobAlgorithm::Gamma(HwPreset::ComputeFocused));
        assert_eq!(jobs[2].algorithm, JobAlgorithm::Baseline(Algorithm::Cma));
        assert_eq!(jobs[2].budget, 600, "defaults apply");
    }

    #[test]
    fn server_section_overrides_apply() {
        let text = "\
[server]
workers = 3
cache_capacity = 1024
genome_cache_capacity = 512
event_log_capacity = 64
eviction = lru

[job]
model = ncf
";
        let manifest = parse_manifest_full(text).unwrap();
        let mut config = ServerConfig::default();
        manifest.server.apply(&mut config);
        assert_eq!(config.workers, 3);
        assert_eq!(config.cache_capacity, 1024);
        assert_eq!(config.genome_cache_capacity, 512);
        assert_eq!(config.event_log_capacity, 64);
        assert_eq!(config.eviction, EvictionPolicy::Lru);
        // Absent keys leave the base config alone.
        assert_eq!(config.checkpoint_every, ServerConfig::default().checkpoint_every);
        // Bad values and misplaced sections are named errors.
        for (text, needle) in [
            ("[server]\neviction = 2q\n[job]\nmodel = ncf\n", "eviction"),
            ("[server]\nworkers = 0\n[job]\nmodel = ncf\n", "workers"),
            ("[server]\nquota = 9\n[job]\nmodel = ncf\n", "unknown key"),
            ("[job]\nmodel = ncf\n[server]\nworkers = 2\n", "precede"),
        ] {
            let err = parse_manifest_full(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?} → {err}");
        }
    }

    #[test]
    fn job_sections_roundtrip_through_render() {
        let text = "\
[job]
name = vgg-cloud
model = vgg16
platform = cloud
objective = edp
algorithm = gamma:medium
budget = 4000
seed = 13
population = 24
threads = 2
checkpoint_every = 5
";
        let spec = &parse_manifest(text).unwrap()[0];
        let rendered = render_job(spec).render();
        let sections = textio::parse_sections(&rendered).unwrap();
        let back = parse_job_section(&sections[0], 0).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.fingerprint(), spec.fingerprint());
        assert_eq!(back.threads, spec.threads);
        assert_eq!(back.checkpoint_every, spec.checkpoint_every);
        assert_eq!(back.tenant, "default", "absent tenant key defaults");
    }

    #[test]
    fn tenant_key_roundtrips_and_defaults() {
        let jobs =
            parse_manifest("[job]\nmodel = ncf\ntenant = alpha\n[job]\nmodel = dlrm\n").unwrap();
        assert_eq!(jobs[0].tenant, "alpha");
        assert_eq!(jobs[1].tenant, "default");
        let rendered = render_job(&jobs[0]).render();
        let back = parse_job_section(&textio::parse_sections(&rendered).unwrap()[0], 0).unwrap();
        assert_eq!(back.tenant, "alpha");
    }

    #[test]
    fn errors_name_the_problem() {
        for (text, needle) in [
            ("", "no [job]"),
            ("[job]\n", "missing `model`"),
            ("[job]\nmodel = gpt5\n", "unknown model"),
            ("[job]\nmodel = ncf\nplatform = tpu\n", "unknown platform"),
            ("[job]\nmodel = ncf\nalgorithm = annealing\n", "unknown algorithm"),
            ("[job]\nmodel = ncf\nbudget = 0\n", "budget"),
            ("[job]\nmodel = ncf\npopulation = 2\n", "population"),
            ("[job]\nmodel = ncf\nthreads = 0\n", "threads"),
            ("[job]\nmodel = ncf\ntenant = no spaces\n", "bad tenant id"),
            ("[job]\nname = a\nmodel = ncf\n[job]\nname = a\nmodel = ncf\n", "duplicate"),
            ("[batch]\n", "unknown section"),
        ] {
            let err = parse_manifest(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?} → {err}");
        }
    }
}
