//! The job queue and worker pool: many searches, one machine.
//!
//! [`SearchServer::run`] drains a batch of [`JobSpec`]s across a pool of
//! scoped worker threads (built on [`digamma::scoped_workers`], the same
//! `std::thread::scope` infrastructure that parallelizes fitness
//! evaluation). All jobs share one [`ShardedFitnessCache`], so a request
//! for a model another job already explored — or a re-submitted search —
//! skips straight to memoized cost-model results; per-job
//! [`JobCacheView`]s keep each report's hit/miss counters honest.
//!
//! GA jobs additionally checkpoint: with a checkpoint directory
//! configured, the server snapshots every few generations, and a
//! re-submitted job whose snapshot survives resumes bit-identically
//! instead of starting over.

use crate::cache::{
    CacheStats, EvictionPolicy, JobCacheView, JobGenomeMemoView, ShardedFitnessCache,
    ShardedGenomeMemo,
};
use crate::cachefile;
use crate::job::{JobAlgorithm, JobReport, JobSpec};
use crate::metrics::{MeteredEvalCache, MeteredGenomeMemo};
use crate::snapshot::Snapshot;
use digamma::{
    run_algorithm, scoped_workers, CoOptProblem, DiGamma, DiGammaConfig, EvalMetrics, EvalTrace,
    Gamma, GammaConfig, SearchResult, SearchState, StepAction, StepObserver,
};
use digamma_obs::{
    FailSet, GenStats, Histogram, LogLevel, MetricsRegistry, OpCounters, SpanContext, SpanRecord,
    Tracer, DEFAULT_LATENCY_BUCKETS,
};
use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server-wide knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent worker threads draining the job queue.
    pub workers: usize,
    /// Total fitness-cache capacity in memoized per-layer reports;
    /// `0` runs the server cache-less.
    pub cache_capacity: usize,
    /// Whole-genome memo capacity in memoized design evaluations; `0`
    /// disables the genome layer (the per-layer cache still applies).
    pub genome_cache_capacity: usize,
    /// How the fitness cache evicts past capacity.
    pub eviction: EvictionPolicy,
    /// Where GA jobs write checkpoints; `None` disables checkpointing
    /// (and with it the fitness-memo disk spill).
    pub checkpoint_dir: Option<PathBuf>,
    /// Default snapshot cadence in generations (jobs may override).
    pub checkpoint_every: u64,
    /// Per-job event-log ring capacity: the newest this many event
    /// lines are retained for late subscribers; older lines are dropped
    /// (the stream reports the first retained sequence number).
    pub event_log_capacity: usize,
    /// Whether the server's [`MetricsRegistry`] records anything. Off,
    /// the registry hands out detached cells: instrumentation still
    /// compiles and runs, but costs only a few dead atomic ops and
    /// `/metrics` renders empty.
    pub metrics_enabled: bool,
    /// Whether the server's [`Tracer`] records spans. Off, the tracer
    /// is [`Tracer::disabled`]: span guards are inert, nothing is
    /// retained, and `/trace` endpoints report tracing as unavailable.
    pub trace_enabled: bool,
    /// Load-shed watermark: total jobs the tenant queues may hold
    /// before new submissions are rejected as retryable back-pressure
    /// (the wire layer answers 503 + `Retry-After`). `0` disables
    /// shedding.
    pub shed_queue_depth: usize,
    /// How long a graceful drain waits for queued and running jobs to
    /// finish before cancelling the stragglers cooperatively (each
    /// checkpoints and resumes on the next start).
    pub drain_deadline: Duration,
    /// The failpoint set every failure domain under this server
    /// consults: journal appends, snapshot/spill writes, worker evals
    /// (the wire layer shares it for socket faults). Defaults to a
    /// fresh inactive set — one relaxed load per site — and is armed by
    /// `digamma-netd --failpoints` or a test.
    pub faults: Arc<FailSet>,
    /// Per-job analytics window: the newest this many per-generation
    /// [`GenStats`] records are retained for `GET /jobs/{id}/analytics`
    /// and the `netc top` dashboard; older records are dropped (the
    /// cumulative operator counters are never windowed).
    pub analytics_capacity: usize,
    /// After this many stagnant generations (no incumbent improvement)
    /// the job's event log gains a `stalled` line — once per stall
    /// episode, re-armed by the next improvement. `0` disables the
    /// stall detector.
    pub stall_after: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: digamma::default_threads(),
            cache_capacity: 256 * 1024,
            genome_cache_capacity: 64 * 1024,
            eviction: EvictionPolicy::Fifo,
            checkpoint_dir: None,
            checkpoint_every: 8,
            event_log_capacity: 1024,
            metrics_enabled: true,
            trace_enabled: true,
            shed_queue_depth: 0,
            drain_deadline: Duration::from_secs(10),
            faults: Arc::new(FailSet::new()),
            analytics_capacity: 512,
            stall_after: 25,
        }
    }
}

/// A per-generation progress observation from a running GA job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobProgress {
    /// Completed generations.
    pub generation: u64,
    /// Design points evaluated so far.
    pub samples: usize,
    /// The job's total sample budget.
    pub budget: usize,
    /// Best feasible cost found so far, if any.
    pub best_cost: Option<f64>,
}

impl JobProgress {
    /// The one-line wire/log form streamed to clients:
    /// `gen=<g> samples=<s>/<budget> best=<cost|none>`.
    pub fn line(&self) -> String {
        let best = match self.best_cost {
            Some(c) => format!("{c:.6e}"),
            None => "none".to_owned(),
        };
        format!("gen={} samples={}/{} best={}", self.generation, self.samples, self.budget, best)
    }
}

/// One generation boundary's search telemetry, forwarded from the GA to
/// whoever attached an analytics sink (the registry pushes it into the
/// job's [`GenStats`] ring and keeps the attribution counters current).
/// `ops` is the job's *cumulative absolute* attribution — after a
/// resume it already includes the pre-kill half restored from the
/// snapshot, so consumers tracking deltas must diff against their last
/// seen absolutes rather than assume a fresh zero.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticsUpdate {
    /// The boundary's per-generation statistics.
    pub stats: GenStats,
    /// Cumulative per-operator attribution counters, absolute.
    pub ops: OpCounters,
    /// On the *first* boundary of a run only: the full
    /// cost-vs-evaluations history so far — the generation-0 point for
    /// a fresh search, or the restored pre-kill curve after a resume.
    /// `None` on every later boundary (the receiver extends its curve
    /// from `stats` alone).
    pub seed_points: Option<Vec<digamma_obs::CostPoint>>,
}

/// External handles into a running job: a cooperative cancellation flag
/// (checked at generation boundaries) and an optional per-generation
/// progress sink.
#[derive(Default)]
pub struct JobControl {
    cancel: AtomicBool,
    progress: Option<Box<dyn Fn(JobProgress) + Send + Sync>>,
    analytics: Option<Box<dyn Fn(AnalyticsUpdate) + Send + Sync>>,
    /// The job's identity inside the span store: its id plus the claim
    /// span its run should nest under. Stamped by the registry's worker
    /// at claim time, read by [`SearchServer::run_job_controlled`].
    trace: Mutex<Option<(u64, SpanContext)>>,
}

impl JobControl {
    /// A control that never cancels and reports nowhere.
    pub fn new() -> JobControl {
        JobControl::default()
    }

    /// Attaches a per-generation progress callback.
    pub fn with_progress(
        mut self,
        progress: impl Fn(JobProgress) + Send + Sync + 'static,
    ) -> JobControl {
        self.progress = Some(Box::new(progress));
        self
    }

    /// Attaches a per-generation analytics callback (see
    /// [`AnalyticsUpdate`]); called once per stepped generation with the
    /// boundary's [`GenStats`] and the cumulative operator counters.
    pub fn with_analytics(
        mut self,
        analytics: impl Fn(AnalyticsUpdate) + Send + Sync + 'static,
    ) -> JobControl {
        self.analytics = Some(Box::new(analytics));
        self
    }

    /// Requests cooperative cancellation: the job stops at its next
    /// generation boundary, snapshotting first when checkpointing is on.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Stamps the job id and parent span context the run should trace
    /// under (normally the claim span recorded by the registry worker).
    pub fn set_trace(&self, job: u64, parent: SpanContext) {
        *self.trace.lock().expect("trace slot poisoned") = Some((job, parent));
    }

    /// The stamped job id and parent span context, if any.
    pub fn trace(&self) -> Option<(u64, SpanContext)> {
        *self.trace.lock().expect("trace slot poisoned")
    }

    fn report(&self, progress: JobProgress) {
        if let Some(sink) = &self.progress {
            sink(progress);
        }
    }

    fn report_analytics(&self, update: AnalyticsUpdate) {
        if let Some(sink) = &self.analytics {
            sink(update);
        }
    }
}

impl fmt::Debug for JobControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobControl")
            .field("cancel", &self.is_cancelled())
            .field("progress", &self.progress.as_ref().map(|_| "fn"))
            .field("analytics", &self.analytics.as_ref().map(|_| "fn"))
            .finish()
    }
}

/// The long-running search service: a shared fitness memo (per-layer
/// and whole-genome layers) plus a worker pool that schedules submitted
/// jobs.
#[derive(Debug)]
pub struct SearchServer {
    config: ServerConfig,
    cache: Option<Arc<ShardedFitnessCache>>,
    genome_memo: Option<Arc<ShardedGenomeMemo>>,
    /// The fitness-memo spill file (`<checkpoint_dir>/fitness-memo.cache`)
    /// when both checkpointing and caching are on.
    cache_file: Option<PathBuf>,
    /// `insertions` counter value at the last spill; a spill is skipped
    /// while nothing new was memoized.
    spilled_insertions: AtomicU64,
    /// Serializes spills: concurrent finishing jobs must not interleave
    /// writes to the shared tmp file.
    spill_lock: Mutex<()>,
    /// The server's metric store ([`MetricsRegistry::disabled`] when
    /// `config.metrics_enabled` is off). Everything downstream — the
    /// net front-end, the job registry, per-job eval metrics — records
    /// into this one registry, so one render covers the whole stack.
    metrics: Arc<MetricsRegistry>,
    /// The server's span store ([`Tracer::disabled`] when
    /// `config.trace_enabled` is off). Request spans, job-lifecycle
    /// spans, and sampled eval spans all record here, so one trace id
    /// walks a request end to end.
    tracer: Tracer,
}

impl SearchServer {
    /// Builds a server (allocating its shared caches up front). With a
    /// checkpoint directory configured, the fitness memo **warm-starts**
    /// from the previous life's spill file — a corrupt or version-stale
    /// file degrades to a cold start.
    pub fn new(config: ServerConfig) -> SearchServer {
        let cache = (config.cache_capacity > 0).then(|| {
            Arc::new(ShardedFitnessCache::with_policy(config.cache_capacity, config.eviction))
        });
        let genome_memo = (config.genome_cache_capacity > 0).then(|| {
            Arc::new(ShardedGenomeMemo::with_policy(config.genome_cache_capacity, config.eviction))
        });
        let cache_file = match (&config.checkpoint_dir, &cache) {
            (Some(dir), Some(_)) => Some(dir.join("fitness-memo.cache")),
            _ => None,
        };
        let metrics = Arc::new(if config.metrics_enabled {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        });
        let tracer = if config.trace_enabled { Tracer::new() } else { Tracer::disabled() };
        let server = SearchServer {
            config,
            cache,
            genome_memo,
            cache_file,
            spilled_insertions: AtomicU64::new(0),
            spill_lock: Mutex::new(()),
            metrics,
            tracer,
        };
        server.warm_start();
        server
    }

    /// The server's metric registry (shared with the registry and the
    /// network front-end, so one `/metrics` render covers the stack).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The server's span store (disabled when `trace_enabled` is off).
    /// Shared with the registry and the network front-end, so request
    /// and job spans land in one store.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The failpoint set this server's failure domains consult (shared
    /// with the registry's journal and the network front-end).
    pub fn faults(&self) -> &Arc<FailSet> {
        &self.config.faults
    }

    /// Loads the spill file (if any) into the fresh cache.
    fn warm_start(&self) {
        let (Some(path), Some(cache)) = (&self.cache_file, &self.cache) else { return };
        let (entries, _load) = cachefile::read_cache_file(path);
        for (key, report) in entries {
            digamma::EvalCache::store(cache.as_ref(), key, &Arc::new(report));
        }
        // The warm-start insertions are already on disk; don't let them
        // alone trigger a rewrite.
        self.spilled_insertions.store(cache.stats().insertions, Ordering::Relaxed);
    }

    /// New insertions a *cadence* spill waits for before rewriting the
    /// file. A spill serializes the whole resident cache (potentially
    /// hundreds of thousands of entries) on the searching thread, so
    /// mid-search spills must amortize: a long job spills only per this
    /// many new memoizations, while job completion and shutdown spill
    /// on any dirt at all.
    const SPILL_CADENCE_MIN_INSERTIONS: u64 = 4096;

    /// Spills the fitness memo to its file when new entries were
    /// memoized since the last spill. Called at job completion and
    /// registry shutdown; cheap when clean (one atomic read). Errors
    /// are swallowed — a spill is an optimization, never worth failing
    /// a search over.
    pub fn spill_cache_if_dirty(&self) {
        self.spill_cache(1);
    }

    /// The checkpoint-cadence variant: only rewrites once at least
    /// [`SearchServer::SPILL_CADENCE_MIN_INSERTIONS`] new entries
    /// accumulated, bounding how often a long search pays the
    /// serialize-everything cost mid-run.
    fn spill_cache_at_cadence(&self) -> bool {
        self.spill_cache(SearchServer::SPILL_CADENCE_MIN_INSERTIONS)
    }

    /// Returns whether a spill actually happened (so callers can trace
    /// only real writes, not clean-exit no-ops).
    fn spill_cache(&self, min_new_insertions: u64) -> bool {
        let (Some(path), Some(cache)) = (&self.cache_file, &self.cache) else { return false };
        let _guard = self.spill_lock.lock().expect("spill lock poisoned");
        let insertions = cache.stats().insertions;
        let since_last = insertions.saturating_sub(self.spilled_insertions.load(Ordering::Relaxed));
        if since_last < min_new_insertions.max(1) {
            return false;
        }
        self.spilled_insertions.store(insertions, Ordering::Relaxed);
        let spill_started = Instant::now();
        if let Err(e) = cachefile::write_cache_file(path, &cache.entries(), &self.config.faults) {
            // A failed spill (disk full, torn write) loses nothing but
            // warmth: the atomic-rename discipline keeps the previous
            // good file, and the next spill retries from scratch.
            self.spilled_insertions.store(insertions.saturating_sub(since_last), Ordering::Relaxed);
            digamma_obs::log::global().log(
                LogLevel::Warn,
                "server",
                None,
                "cache spill failed; previous spill file retained",
                &[("path", path.display().to_string()), ("err", e.to_string())],
            );
        }
        if self.metrics.enabled() {
            self.metrics
                .histogram(
                    "digamma_cache_spill_seconds",
                    "Wall time of fitness-memo disk spills (serialize + write).",
                    &[],
                    DEFAULT_LATENCY_BUCKETS,
                )
                .observe_duration(spill_started.elapsed());
        }
        true
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Counters of the shared cache (`None` when running cache-less).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Counters of the whole-genome memo (`None` when disabled).
    pub fn genome_memo_stats(&self) -> Option<CacheStats> {
        self.genome_memo.as_ref().map(|c| c.stats())
    }

    /// Runs every job to completion and returns reports in submission
    /// order. Jobs are independent; a panicking job propagates after the
    /// remaining workers finish (scoped threads join on exit).
    pub fn run(&self, jobs: &[JobSpec]) -> Vec<JobReport> {
        let queue: Mutex<VecDeque<(usize, &JobSpec)>> =
            Mutex::new(jobs.iter().enumerate().collect());
        let results: Mutex<Vec<Option<JobReport>>> = Mutex::new(vec![None; jobs.len()]);
        let workers = self.config.workers.min(jobs.len()).max(1);
        scoped_workers(workers, |_| loop {
            let Some((index, spec)) = queue.lock().expect("job queue poisoned").pop_front() else {
                break;
            };
            let report = self.run_job(spec);
            results.lock().expect("job results poisoned")[index] = Some(report);
        });
        results
            .into_inner()
            .expect("job results poisoned")
            .into_iter()
            .map(|r| r.expect("every queued job reports"))
            .collect()
    }

    /// Runs one job inline on the calling thread (the worker body).
    pub fn run_job(&self, spec: &JobSpec) -> JobReport {
        self.run_job_controlled(spec, &JobControl::new())
    }

    /// Runs one job under external control: `control`'s progress sink is
    /// invoked at every generation boundary, and its cancellation flag
    /// stops the job cooperatively at the next boundary (snapshotting
    /// first when checkpointing is on, so the partial search is
    /// resumable and its best-so-far design survives in the report).
    pub fn run_job_controlled(&self, spec: &JobSpec, control: &JobControl) -> JobReport {
        let started = Instant::now();
        let view = self.cache.as_ref().map(|c| Arc::new(JobCacheView::new(Arc::clone(c))));
        let genome_view =
            self.genome_memo.as_ref().map(|m| Arc::new(JobGenomeMemoView::new(Arc::clone(m))));
        let mut problem =
            CoOptProblem::new(spec.model.clone(), spec.platform.clone(), spec.objective);
        // With metrics on, the cache views are wrapped in metering
        // shims (tenant-labelled probe counters, sampled probe latency)
        // and the eval hot path gets its handles; with metrics off the
        // plain views attach directly and the hot path stays bare.
        if self.metrics.enabled() {
            if let Some(view) = &view {
                problem = problem.with_cache(Arc::new(MeteredEvalCache::new(
                    &self.metrics,
                    Arc::clone(view) as _,
                    &spec.tenant,
                )) as _);
            }
            if let Some(genome_view) = &genome_view {
                problem = problem.with_genome_memo(Arc::new(MeteredGenomeMemo::new(
                    &self.metrics,
                    Arc::clone(genome_view) as _,
                )) as _);
            }
            problem = problem
                .with_eval_metrics(Arc::new(EvalMetrics::for_tenant(&self.metrics, &spec.tenant)));
        } else {
            if let Some(view) = &view {
                problem = problem.with_cache(Arc::clone(view) as _);
            }
            if let Some(genome_view) = &genome_view {
                problem = problem.with_genome_memo(Arc::clone(genome_view) as _);
            }
        }
        // The `worker.eval` failpoint rides the batch path; disarmed
        // (the default) it costs one relaxed load per generation batch.
        problem = problem.with_eval_faults(Arc::clone(&self.config.faults));

        // With tracing on and a claim span stamped on the control, the
        // whole run nests under it: one `job.run` span covering the
        // search, `job.generation`/`job.checkpoint`/`cache.spill`
        // children from the observer, and sampled eval spans from the
        // problem's `EvalTrace` — all tagged with the job id so they
        // share a Perfetto lane.
        let mut run_span = control.trace().map(|(job, parent)| {
            let mut span = self.tracer.start_child("job.run", parent);
            span.set_job(job);
            span.set_attr("name", spec.name.clone());
            span.set_attr("algorithm", spec.algorithm.to_string());
            span
        });
        let run_trace = match (run_span.as_ref().and_then(|s| s.context()), control.trace()) {
            (Some(ctx), Some((job, _))) => Some((job, ctx)),
            _ => None,
        };
        if let Some((job, ctx)) = run_trace {
            problem =
                problem.with_eval_trace(Arc::new(EvalTrace::new(self.tracer.clone(), ctx, job)));
        }

        let outcome = match spec.algorithm {
            JobAlgorithm::DiGamma => {
                let ga = DiGamma::new(DiGammaConfig {
                    population_size: spec.population_size,
                    seed: spec.seed,
                    threads: spec.threads,
                    ..Default::default()
                });
                self.drive_ga(spec, &ga, &problem, control, run_trace)
            }
            JobAlgorithm::Gamma(preset) => {
                let hw = preset.build(&spec.platform, problem.evaluator().area_model());
                let gamma = Gamma::new(GammaConfig {
                    population_size: spec.population_size,
                    seed: spec.seed,
                    threads: spec.threads,
                    ..Default::default()
                });
                // The constrained clone shares `problem`'s dedupe
                // counter, so the report below reads it transparently.
                let (constrained, ga) = gamma.searcher(&problem, &hw);
                self.drive_ga(spec, &ga, &constrained, control, run_trace)
            }
            JobAlgorithm::Baseline(alg) => {
                // Ask/tell baselines run to completion; cancellation is
                // only honoured before they start.
                if control.is_cancelled() {
                    GaOutcome::finished(
                        SearchResult { best: None, history: Vec::new(), samples: 0 },
                        true,
                    )
                } else {
                    GaOutcome::finished(run_algorithm(alg, &problem, spec.budget, spec.seed), false)
                }
            }
        };

        // The job just memoized its work; persist it so a restart keeps
        // it (cheap no-op when nothing new was inserted).
        self.spill_cache_if_dirty();

        if let Some(span) = &mut run_span {
            span.set_attr("generations", outcome.generations.to_string());
            span.set_attr("samples", outcome.result.samples.to_string());
            if outcome.cancelled {
                span.set_attr("cancelled", "true");
            }
        }
        drop(run_span);

        JobReport {
            name: spec.name.clone(),
            algorithm: spec.algorithm.to_string(),
            best: outcome.result.best,
            samples: outcome.result.samples,
            generations: outcome.generations,
            resumed_at: outcome.resumed_at,
            cancelled: outcome.cancelled,
            cache_hits: view.as_ref().map_or(0, |v| v.hits()),
            cache_misses: view.as_ref().map_or(0, |v| v.misses()),
            cache_insertions: view.as_ref().map_or(0, |v| v.insertions()),
            genome_hits: genome_view.as_ref().map_or(0, |v| v.hits()),
            genome_misses: genome_view.as_ref().map_or(0, |v| v.misses()),
            genome_insertions: genome_view.as_ref().map_or(0, |v| v.insertions()),
            dedup_skipped: problem.batch_dedup_skipped(),
            wall: started.elapsed(),
            queue_wait: Duration::ZERO,
            eval_wall: problem.eval_wall(),
            checkpoint_wall: outcome.checkpoint_wall,
        }
    }

    /// Steps a GA job to completion, checkpointing at the configured
    /// cadence and resuming from a surviving snapshot of the *same* job
    /// (identity checked by fingerprint; a stale or foreign snapshot is
    /// ignored and the search starts over). The checkpoint is removed
    /// when the job completes — but kept when the job is cancelled, so a
    /// cancelled search can resume later.
    fn drive_ga(
        &self,
        spec: &JobSpec,
        ga: &DiGamma,
        problem: &CoOptProblem,
        control: &JobControl,
        run_trace: Option<(u64, SpanContext)>,
    ) -> GaOutcome {
        let path = self.checkpoint_path(spec);
        let fingerprint = spec.fingerprint();
        let mut resumed_at = None;
        let restored = path
            .as_ref()
            .and_then(|p| std::fs::read_to_string(p).ok())
            .and_then(|text| Snapshot::parse(&text).ok())
            .and_then(|snap| snap.restore(ga, problem, &fingerprint).ok());
        let mut state = match restored {
            Some(state) => {
                resumed_at = Some(state.generation());
                state
            }
            None => ga.init(problem, spec.budget),
        };
        let every = spec.checkpoint_every.unwrap_or(self.config.checkpoint_every).max(1);
        let enabled = self.metrics.enabled();
        let mut observer = DriveObserver {
            server: self,
            path: path.as_deref(),
            fingerprint: &fingerprint,
            every,
            control,
            cancelled: false,
            checkpoint_wall: Duration::ZERO,
            checkpoint_seconds: enabled.then(|| {
                self.metrics.histogram(
                    "digamma_checkpoint_write_seconds",
                    "Wall time of snapshot writes (capture + render + write-then-rename).",
                    &[],
                    DEFAULT_LATENCY_BUCKETS,
                )
            }),
            generation_seconds: enabled.then(|| {
                self.metrics.histogram(
                    "digamma_generation_seconds",
                    "Wall time between GA generation boundaries.",
                    &[("tenant", &spec.tenant)],
                    DEFAULT_LATENCY_BUCKETS,
                )
            }),
            last_boundary: Instant::now(),
            run_trace,
            last_boundary_ns: self.tracer.now_ns(),
            analytics_seeded: false,
        };
        ga.run_observed(problem, &mut state, spec.budget, &mut observer);
        let cancelled = observer.cancelled;
        let checkpoint_wall = observer.checkpoint_wall;
        if !cancelled {
            if let Some(p) = &path {
                let _ = std::fs::remove_file(p);
            }
        }
        let generations = state.generation();
        GaOutcome {
            result: state.into_result(),
            generations,
            resumed_at,
            cancelled,
            checkpoint_wall,
        }
    }

    /// The snapshot file for a job, when checkpointing is on and the
    /// algorithm supports it. The filename is a readable sanitized
    /// prefix plus a stable hash of the *raw* name, so distinct job
    /// names that sanitize alike (`"exp 1"` / `"exp.1"`) can never
    /// share — and clobber — one checkpoint file.
    pub fn checkpoint_path(&self, spec: &JobSpec) -> Option<PathBuf> {
        if !spec.algorithm.supports_checkpointing() {
            return None;
        }
        let dir = self.config.checkpoint_dir.as_ref()?;
        let safe: String = spec
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
            .collect();
        let mut hasher = digamma_costmodel::StableHasher::new();
        hasher.write_bytes(spec.name.as_bytes());
        Some(dir.join(format!("{safe}-{:08x}.snapshot", hasher.finish() as u32)))
    }
}

/// What [`SearchServer::drive_ga`] (or a baseline run) produced, plus
/// the timing the report breaks out.
struct GaOutcome {
    result: SearchResult,
    generations: u64,
    resumed_at: Option<u64>,
    cancelled: bool,
    checkpoint_wall: Duration,
}

impl GaOutcome {
    /// A non-GA outcome: no generations, no resume, no checkpoints.
    fn finished(result: SearchResult, cancelled: bool) -> GaOutcome {
        GaOutcome {
            result,
            generations: 0,
            resumed_at: None,
            cancelled,
            checkpoint_wall: Duration::ZERO,
        }
    }
}

/// The server's per-generation observer: streams progress, writes
/// checkpoints at the configured cadence (spilling the fitness memo on
/// the same beat), and honours cooperative cancellation (snapshotting
/// before stopping so the partial search survives). It also keeps the
/// job's checkpoint wall-clock total (for the report's timing
/// breakdown) and, with metrics on, feeds the generation-boundary and
/// checkpoint-write histograms.
struct DriveObserver<'a> {
    server: &'a SearchServer,
    path: Option<&'a std::path::Path>,
    fingerprint: &'a str,
    every: u64,
    control: &'a JobControl,
    cancelled: bool,
    checkpoint_wall: Duration,
    checkpoint_seconds: Option<Histogram>,
    generation_seconds: Option<Histogram>,
    last_boundary: Instant,
    /// The job id and run span the lifecycle spans nest under, when
    /// tracing is on for this job.
    run_trace: Option<(u64, SpanContext)>,
    /// Tracer-clock reading at the last generation boundary — the start
    /// of the next `job.generation` span.
    last_boundary_ns: u64,
    /// Whether the first analytics update (which carries the seed
    /// cost-point history) has been sent yet.
    analytics_seeded: bool,
}

impl DriveObserver<'_> {
    /// Records one completed lifecycle span under the run span,
    /// back-dated by its measured duration.
    fn record_span(
        &self,
        name: &'static str,
        elapsed: Duration,
        attrs: Vec<(&'static str, String)>,
    ) {
        let Some((job, parent)) = self.run_trace else { return };
        let tracer = self.server.tracer();
        let dur_ns = elapsed.as_nanos() as u64;
        tracer.record(SpanRecord {
            trace: parent.trace,
            span: tracer.span_id(),
            parent: Some(parent.span),
            name,
            job: Some(job),
            start_ns: tracer.now_ns().saturating_sub(dur_ns),
            dur_ns,
            attrs,
        });
    }

    /// Spills the fitness memo, tracing the write when one happens.
    fn spill(&self, at_cadence: bool) {
        let spill_started = Instant::now();
        let spilled = if at_cadence {
            self.server.spill_cache_at_cadence()
        } else {
            self.server.spill_cache(1)
        };
        if spilled {
            self.record_span("cache.spill", spill_started.elapsed(), Vec::new());
        }
    }

    fn snapshot(&mut self, state: &SearchState) {
        let Some(p) = self.path else { return };
        let write_started = Instant::now();
        let rendered = Snapshot::capture(self.fingerprint, state).render();
        // Write, fsync, then rename: a kill or power cut mid-write must
        // never destroy the previous good snapshot or promote a
        // half-written new one. Failures (including the injected
        // `snapshot.write` faults) keep the old snapshot and warn.
        let tmp = p.with_extension("snapshot.tmp");
        if let Err(e) = cachefile::persist_atomic(
            &tmp,
            p,
            rendered.as_bytes(),
            &self.server.config.faults,
            "snapshot.write",
        ) {
            digamma_obs::log::global().log(
                LogLevel::Warn,
                "server",
                None,
                "checkpoint write failed; previous snapshot retained",
                &[("path", p.display().to_string()), ("err", e.to_string())],
            );
        }
        let elapsed = write_started.elapsed();
        self.checkpoint_wall += elapsed;
        if let Some(h) = &self.checkpoint_seconds {
            h.observe_duration(elapsed);
        }
        self.record_span("job.checkpoint", elapsed, vec![("gen", state.generation().to_string())]);
    }
}

impl StepObserver for DriveObserver<'_> {
    fn on_generation(&mut self, state: &SearchState, budget: usize) -> StepAction {
        if let Some(h) = &self.generation_seconds {
            h.observe_duration(self.last_boundary.elapsed());
        }
        if let Some((job, parent)) = self.run_trace {
            let tracer = self.server.tracer();
            let now_ns = tracer.now_ns();
            tracer.record(SpanRecord {
                trace: parent.trace,
                span: tracer.span_id(),
                parent: Some(parent.span),
                name: "job.generation",
                job: Some(job),
                start_ns: self.last_boundary_ns,
                dur_ns: now_ns.saturating_sub(self.last_boundary_ns),
                attrs: vec![
                    ("gen", state.generation().to_string()),
                    ("samples", state.samples().to_string()),
                ],
            });
        }
        self.control.report(JobProgress {
            generation: state.generation(),
            samples: state.samples(),
            budget,
            best_cost: state.best_cost(),
        });
        if let Some(stats) = state.last_gen_stats() {
            let seed_points = (!self.analytics_seeded).then(|| state.cost_points().to_vec());
            self.analytics_seeded = true;
            self.control.report_analytics(AnalyticsUpdate {
                stats,
                ops: *state.op_counters(),
                seed_points,
            });
        }
        if self.control.is_cancelled() {
            self.snapshot(state);
            self.spill(false);
            self.cancelled = true;
            return StepAction::Stop;
        }
        if state.generation().is_multiple_of(self.every) {
            self.snapshot(state);
            self.spill(true);
        }
        self.last_boundary = Instant::now();
        self.last_boundary_ns = self.server.tracer().now_ns();
        StepAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma::Objective;
    use digamma_costmodel::Platform;
    use digamma_opt::Algorithm;
    use digamma_workload::zoo;

    fn spec(name: &str, algorithm: JobAlgorithm) -> JobSpec {
        let mut s = JobSpec::new(name, zoo::ncf(), Platform::edge(), Objective::Latency, algorithm);
        s.budget = 120;
        s.population_size = 12;
        s.seed = 5;
        s
    }

    #[test]
    fn batch_reports_come_back_in_submission_order() {
        let server = SearchServer::new(ServerConfig { workers: 3, ..Default::default() });
        let jobs = vec![
            spec("a", JobAlgorithm::DiGamma),
            spec("b", JobAlgorithm::Baseline(Algorithm::Random)),
            spec("c", JobAlgorithm::Gamma(digamma::schemes::HwPreset::MediumBufCom)),
        ];
        let reports = server.run(&jobs);
        assert_eq!(
            reports.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        for r in &reports {
            assert_eq!(r.samples, 120, "{}", r.name);
        }
        assert!(reports[0].generations > 0);
        assert_eq!(reports[1].generations, 0, "baselines do not step generations");
    }

    #[test]
    fn concurrent_execution_matches_serial_execution() {
        let jobs = vec![spec("x", JobAlgorithm::DiGamma), spec("y", JobAlgorithm::DiGamma)];
        let serial =
            SearchServer::new(ServerConfig { workers: 1, cache_capacity: 0, ..Default::default() })
                .run(&jobs);
        let parallel = SearchServer::new(ServerConfig {
            workers: 4,
            cache_capacity: 1 << 16,
            ..Default::default()
        })
        .run(&jobs);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                s.best.as_ref().map(|b| b.cost.to_bits()),
                p.best.as_ref().map(|b| b.cost.to_bits()),
                "caching/concurrency must not change results"
            );
        }
    }

    #[test]
    fn shared_cache_reports_per_job_hits() {
        // Genome memo off: the per-layer cache is the first memo layer,
        // so elite re-evaluations hit it directly (the original
        // behaviour, still reachable by configuration).
        let server = SearchServer::new(ServerConfig {
            workers: 1,
            genome_cache_capacity: 0,
            ..Default::default()
        });
        // The same search twice: the second run should hit constantly.
        let jobs = vec![spec("first", JobAlgorithm::DiGamma), spec("again", JobAlgorithm::DiGamma)];
        let reports = server.run(&jobs);
        assert!(reports[0].cache_hits > 0, "elite re-evaluation hits within one search");
        assert!(
            reports[1].cache_hit_rate() > reports[0].cache_hit_rate(),
            "a repeated search reuses the first one's entries: {} vs {}",
            reports[1].cache_hit_rate(),
            reports[0].cache_hit_rate()
        );
        assert_eq!(reports[0].genome_hits + reports[1].genome_hits, 0, "memo disabled");
        let stats = server.cache_stats().expect("cache enabled");
        assert_eq!(stats.hits, reports[0].cache_hits + reports[1].cache_hits);
    }

    #[test]
    fn genome_memo_absorbs_recurring_genomes_above_the_layer_cache() {
        let server = SearchServer::new(ServerConfig { workers: 1, ..Default::default() });
        let jobs = vec![spec("first", JobAlgorithm::DiGamma), spec("again", JobAlgorithm::DiGamma)];
        let reports = server.run(&jobs);
        // Within one search, elites recur every generation: the genome
        // layer catches them before any per-layer work happens.
        assert!(reports[0].genome_hits > 0, "elites must hit the genome memo");
        // The second job is byte-identical (same model/seed/budget), so
        // its deterministic trajectory revisits only genomes the first
        // job memoized: every single lookup hits.
        assert_eq!(reports[1].genome_misses, 0, "identical rerun must be all genome hits");
        assert!(reports[1].genome_hits >= reports[1].samples as u64);
        assert!((reports[1].genome_hit_rate() - 1.0).abs() < 1e-12);
        // And identical results, of course.
        assert_eq!(
            reports[0].best.as_ref().map(|b| b.cost.to_bits()),
            reports[1].best.as_ref().map(|b| b.cost.to_bits()),
        );
        let stats = server.genome_memo_stats().expect("genome memo enabled");
        assert_eq!(stats.hits, reports[0].genome_hits + reports[1].genome_hits);
    }

    #[test]
    fn fitness_memo_spills_and_warm_starts_across_server_lives() {
        let dir = std::env::temp_dir().join(format!("digamma-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = ServerConfig {
            workers: 1,
            checkpoint_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };

        let first_life = SearchServer::new(config.clone());
        let r1 = first_life.run_job(&spec("life1", JobAlgorithm::DiGamma));
        assert!(r1.cache_misses > 0, "a cold cache must miss");
        let resident = first_life.cache_stats().unwrap().entries;
        drop(first_life);
        let spill = dir.join("fitness-memo.cache");
        assert!(spill.exists(), "job completion must spill the memo");

        // Second life: the memo warm-starts from disk, so the identical
        // search (fresh genome memo, deterministic trajectory) re-probes
        // exactly the keys the first life stored — zero misses.
        let second_life = SearchServer::new(config);
        let loaded = second_life.cache_stats().unwrap().entries;
        assert_eq!(loaded, resident, "every spilled entry must reload");
        let r2 = second_life.run_job(&spec("life2", JobAlgorithm::DiGamma));
        assert!(r2.cache_hits > 0, "warm cache must serve the rerun");
        assert_eq!(r2.cache_misses, 0, "identical rerun on a warm cache misses nothing");
        assert_eq!(
            r1.best.as_ref().map(|b| b.cost.to_bits()),
            r2.best.as_ref().map(|b| b.cost.to_bits()),
            "replayed reports must not change results"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cacheless_server_still_searches() {
        let server =
            SearchServer::new(ServerConfig { workers: 1, cache_capacity: 0, ..Default::default() });
        let report = server.run_job(&spec("raw", JobAlgorithm::DiGamma));
        assert!(report.best.is_some());
        assert_eq!(report.cache_hits + report.cache_misses, 0);
        assert!(server.cache_stats().is_none());
    }

    #[test]
    fn checkpoint_paths_sanitize_names() {
        let server = SearchServer::new(ServerConfig {
            checkpoint_dir: Some(PathBuf::from("/tmp/ckpt")),
            ..Default::default()
        });
        let s = spec("a job/with weird:name", JobAlgorithm::DiGamma);
        let path = server.checkpoint_path(&s).unwrap();
        let file = path.file_name().unwrap().to_str().unwrap();
        assert!(file.starts_with("a-job-with-weird-name-"), "{file}");
        assert!(file.ends_with(".snapshot"), "{file}");
        let baseline = spec("b", JobAlgorithm::Baseline(Algorithm::Cma));
        assert!(server.checkpoint_path(&baseline).is_none());
    }

    #[test]
    fn distinct_names_never_share_a_checkpoint_file() {
        // "exp 1" and "exp.1" sanitize to the same prefix; the raw-name
        // hash keeps their snapshot files apart.
        let server = SearchServer::new(ServerConfig {
            checkpoint_dir: Some(PathBuf::from("/tmp/ckpt")),
            ..Default::default()
        });
        let a = server.checkpoint_path(&spec("exp 1", JobAlgorithm::DiGamma)).unwrap();
        let b = server.checkpoint_path(&spec("exp.1", JobAlgorithm::DiGamma)).unwrap();
        assert_ne!(a, b);
        // Same name → same path across server instances (resume relies
        // on it).
        let again = server.checkpoint_path(&spec("exp 1", JobAlgorithm::DiGamma)).unwrap();
        assert_eq!(a, again);
    }
}
