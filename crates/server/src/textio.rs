//! Minimal to-string / from-string support for the server's text formats.
//!
//! The workspace's serde is a no-op derive shim (the build container has
//! no crates.io access), so the snapshot and manifest formats are built
//! on this hand-rolled module instead: a line-oriented
//! `[section]` / `key = value` syntax plus exact `f64` round-tripping
//! via IEEE-754 bit patterns. Repeated keys are allowed (that is how a
//! population of genomes serializes) and `#` starts a comment.

use std::fmt;

/// A parse or format violation in a server text document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    message: String,
}

impl TextError {
    /// Creates an error with the given description.
    pub fn new(message: impl Into<String>) -> TextError {
        TextError { message: message.into() }
    }
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TextError {}

/// One `[name]` block of `key = value` entries, in document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// The name between the brackets.
    pub name: String,
    /// Entries in document order; keys may repeat.
    pub entries: Vec<(String, String)>,
}

impl Section {
    /// Creates an empty section.
    pub fn new(name: impl Into<String>) -> Section {
        Section { name: name.into(), entries: Vec::new() }
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics if `value` contains a newline — values are single-line by
    /// construction in every server format.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let (key, value) = (key.into(), value.into());
        assert!(!value.contains('\n'), "values are single-line");
        self.entries.push((key, value));
    }

    /// The first value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Every value for `key`, in document order.
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.entries.iter().filter(|(k, _)| k == key).map(|(_, v)| v.as_str()).collect()
    }

    /// The first value for `key`, or an error naming the section.
    ///
    /// # Errors
    ///
    /// Returns [`TextError`] when the key is absent.
    pub fn require(&self, key: &str) -> Result<&str, TextError> {
        self.get(key).ok_or_else(|| TextError::new(format!("[{}] is missing `{key}`", self.name)))
    }

    /// Parses the first value for `key` as `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`TextError`] when the value is present but unparsable.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, TextError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| TextError::new(format!("[{}] has bad `{key}`: {raw:?}", self.name))),
        }
    }

    /// Renders the section back to text.
    pub fn render(&self) -> String {
        let mut out = format!("[{}]\n", self.name);
        for (k, v) in &self.entries {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

/// Renders sections into one document.
pub fn render_sections(sections: &[Section]) -> String {
    let mut out = String::new();
    for (i, s) in sections.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&s.render());
    }
    out
}

/// Parses a document of `[section]` / `key = value` lines.
///
/// Blank lines and `#` comments are skipped; a `key = value` line before
/// the first section header is an error.
///
/// # Errors
///
/// Returns [`TextError`] with the offending line number on malformed
/// input.
pub fn parse_sections(text: &str) -> Result<Vec<Section>, TextError> {
    let mut sections: Vec<Section> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            sections.push(Section::new(name.trim()));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(TextError::new(format!("line {}: expected `key = value`", lineno + 1)));
        };
        let Some(section) = sections.last_mut() else {
            return Err(TextError::new(format!("line {}: entry before any [section]", lineno + 1)));
        };
        section.entries.push((key.trim().to_owned(), value.trim().to_owned()));
    }
    Ok(sections)
}

/// Renders an `f64` exactly, as its 16-hex-digit IEEE-754 bit pattern.
pub fn f64_to_text(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Parses an `f64` rendered by [`f64_to_text`] — bit-exact, including
/// infinities and NaN payloads.
///
/// # Errors
///
/// Returns [`TextError`] when the input is not 16 hex digits.
pub fn f64_from_text(s: &str) -> Result<f64, TextError> {
    if s.len() != 16 {
        return Err(TextError::new(format!("bad f64 bits (need 16 hex digits): {s:?}")));
    }
    let bits =
        u64::from_str_radix(s, 16).map_err(|_| TextError::new(format!("bad f64 bits: {s:?}")))?;
    Ok(f64::from_bits(bits))
}

/// Renders a slice of `f64`s as one comma-joined exact line.
pub fn f64s_to_text(values: &[f64]) -> String {
    let rendered: Vec<String> = values.iter().map(|&v| f64_to_text(v)).collect();
    rendered.join(",")
}

/// Parses a line rendered by [`f64s_to_text`]; empty input is an empty
/// slice.
///
/// # Errors
///
/// Returns [`TextError`] if any element fails to parse.
pub fn f64s_from_text(s: &str) -> Result<Vec<f64>, TextError> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(f64_from_text).collect()
}

/// Renders a slice of `f64`s as bit-exact run-length-encoded text:
/// comma-joined `<16 hex digits>x<count>` segments (count omitted when
/// 1). Monotone step functions — the best-so-far history checkpoints
/// carry — compress to one segment per distinct value, so the rendered
/// size tracks *improvements*, not samples: a 100k-sample history with a
/// dozen improvements renders in a few hundred bytes instead of 1.6 MB.
pub fn f64s_to_rle_text(values: &[f64]) -> String {
    let mut segments: Vec<String> = Vec::new();
    let mut run: Option<(u64, u64)> = None; // (bits, count)
    for &v in values {
        let bits = v.to_bits();
        match &mut run {
            Some((b, count)) if *b == bits => *count += 1,
            _ => {
                if let Some((b, count)) = run.take() {
                    segments.push(render_run(b, count));
                }
                run = Some((bits, 1));
            }
        }
    }
    if let Some((b, count)) = run {
        segments.push(render_run(b, count));
    }
    segments.join(",")
}

fn render_run(bits: u64, count: u64) -> String {
    if count == 1 {
        format!("{bits:016x}")
    } else {
        format!("{bits:016x}x{count}")
    }
}

/// Parses a line rendered by [`f64s_to_rle_text`] — bit-exact, empty
/// input is an empty slice. `max_values` bounds the materialized
/// length: run lengths come from untrusted files (a corrupt snapshot
/// could otherwise declare a 10^18-element run and drive allocation
/// into a panic), so callers pass the count the surrounding document
/// declares.
///
/// # Errors
///
/// Returns [`TextError`] on malformed segments, a zero run length, or
/// a total exceeding `max_values`.
pub fn f64s_from_rle_text(s: &str, max_values: usize) -> Result<Vec<f64>, TextError> {
    let s = s.trim();
    let mut out = Vec::new();
    if s.is_empty() {
        return Ok(out);
    }
    for segment in s.split(',') {
        let (bits, count) = match segment.split_once('x') {
            Some((bits, count)) => {
                let count: u64 = count
                    .parse()
                    .map_err(|_| TextError::new(format!("bad run length: {segment:?}")))?;
                if count == 0 {
                    return Err(TextError::new(format!("zero run length: {segment:?}")));
                }
                (bits, count)
            }
            None => (segment, 1),
        };
        if (count as u128) + out.len() as u128 > max_values as u128 {
            return Err(TextError::new(format!(
                "run-length history exceeds the declared {max_values} values"
            )));
        }
        let value = f64_from_text(bits)?;
        out.extend(std::iter::repeat_n(value, count as usize));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_roundtrip() {
        let mut a = Section::new("job");
        a.push("model", "ncf");
        a.push("genome", "8,16");
        a.push("genome", "4,4");
        let mut b = Section::new("other");
        b.push("k", "v");
        let doc = render_sections(&[a.clone(), b.clone()]);
        let parsed = parse_sections(&doc).unwrap();
        assert_eq!(parsed, vec![a, b]);
    }

    #[test]
    fn repeated_keys_are_preserved_in_order() {
        let doc = "[s]\ng = first\ng = second\n";
        let sections = parse_sections(doc).unwrap();
        assert_eq!(sections[0].get("g"), Some("first"));
        assert_eq!(sections[0].get_all("g"), vec!["first", "second"]);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let doc = "# header\n\n[s]\n# note\nk = v\n\n";
        let sections = parse_sections(doc).unwrap();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].get("k"), Some("v"));
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = parse_sections("[s]\nnot a kv line\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_sections("k = v\n").unwrap_err();
        assert!(err.to_string().contains("before any"), "{err}");
    }

    #[test]
    fn require_and_parsed_accessors() {
        let sections = parse_sections("[s]\nn = 42\n").unwrap();
        let s = &sections[0];
        assert_eq!(s.require("n").unwrap(), "42");
        assert!(s.require("missing").is_err());
        assert_eq!(s.get_parsed_or("n", 0u64).unwrap(), 42);
        assert_eq!(s.get_parsed_or("missing", 7u64).unwrap(), 7);
        let sections = parse_sections("[s]\nn = nope\n").unwrap();
        assert!(sections[0].get_parsed_or("n", 0u64).is_err());
    }

    #[test]
    fn f64_bits_roundtrip_exactly() {
        let pi = std::f64::consts::PI;
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, 1e300, pi, f64::MIN] {
            let text = f64_to_text(v);
            assert_eq!(f64_from_text(&text).unwrap().to_bits(), v.to_bits());
        }
        // NaN keeps its payload.
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        assert_eq!(f64_from_text(&f64_to_text(nan)).unwrap().to_bits(), nan.to_bits());
    }

    #[test]
    fn rle_roundtrips_bit_exactly_and_stays_flat() {
        // A 100k-sample best-so-far curve with 12 improvements: the
        // rendered form must stay a few hundred bytes and round-trip to
        // the bit.
        let mut history = Vec::with_capacity(100_000);
        let mut best = f64::INFINITY;
        for i in 0..100_000u64 {
            if i % 8_333 == 1 {
                best = 1e9 / (i + 1) as f64;
            }
            history.push(best);
        }
        let text = f64s_to_rle_text(&history);
        assert!(text.len() < 600, "rendered {} bytes", text.len());
        let back = f64s_from_rle_text(&text, history.len()).unwrap();
        assert_eq!(back.len(), history.len());
        for (a, b) in history.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rle_handles_singletons_and_rejects_junk() {
        let values = vec![1.0, 2.0, 2.0, f64::INFINITY];
        let text = f64s_to_rle_text(&values);
        let back = f64s_from_rle_text(&text, values.len()).unwrap();
        assert_eq!(values, back);
        assert!(f64s_from_rle_text("", 10).unwrap().is_empty());
        assert!(f64s_from_rle_text("zz", 10).is_err());
        assert!(f64s_from_rle_text("3ff0000000000000x0", 10).is_err(), "zero run");
        assert!(f64s_from_rle_text("3ff0000000000000xq", 10).is_err(), "bad count");
        // A corrupt run length cannot drive allocation past the bound —
        // it errors out before materializing anything.
        let bomb = "3ff0000000000000x9000000000000000000";
        assert!(f64s_from_rle_text(bomb, 1024).is_err(), "oversized run");
        assert!(f64s_from_rle_text("3ff0000000000000x5", 4).is_err(), "over declared count");
    }

    #[test]
    fn f64_slices_roundtrip() {
        let values = vec![f64::INFINITY, 1.0, 0.1 + 0.2];
        let text = f64s_to_text(&values);
        let back = f64s_from_text(&text).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(f64s_from_text("").unwrap().is_empty());
        assert!(f64s_from_text("zz").is_err());
    }
}
