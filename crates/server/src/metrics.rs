//! Metering shims between the job's problem and the shared caches.
//!
//! [`MeteredEvalCache`] and [`MeteredGenomeMemo`] wrap the per-job
//! cache views, feeding tenant-labelled probe counters and a sampled
//! probe-latency histogram into the server's
//! [`MetricsRegistry`](digamma_obs::MetricsRegistry) while delegating
//! every lookup/store unchanged. Wrapping happens only when metrics
//! are enabled, so a metrics-off server attaches the plain views and
//! pays nothing.
//!
//! Probe *counts* are exact; probe *latency* is sampled 1-in-16 (like
//! the per-eval latency histogram in `digamma`'s `EvalMetrics`): a
//! sharded-map probe is tens of nanoseconds, so timing every one would
//! cost more than the probe.

use digamma::{DesignEvaluation, EvalCache, GenomeMemo};
use digamma_costmodel::CostReport;
use digamma_obs::{Counter, Histogram, MetricsRegistry, SampleTick, DEFAULT_LATENCY_BUCKETS};
use std::sync::Arc;
use std::time::Instant;

const PROBE_LATENCY_SAMPLE_EVERY: u64 = 16;

fn probe_seconds(registry: &MetricsRegistry, cache: &str) -> Histogram {
    registry.histogram(
        "digamma_cache_probe_seconds",
        "Cache probe latency by cache layer, sampled 1 in 16 probes.",
        &[("cache", cache)],
        DEFAULT_LATENCY_BUCKETS,
    )
}

/// A metering wrapper over a job's fitness-cache view.
#[derive(Debug)]
pub(crate) struct MeteredEvalCache {
    inner: Arc<dyn EvalCache>,
    hits: Counter,
    misses: Counter,
    probe_seconds: Histogram,
    sample: SampleTick,
}

impl MeteredEvalCache {
    /// Wraps `inner`, registering
    /// `digamma_cache_probes_total{cache="fitness",result,tenant}` and
    /// `digamma_cache_probe_seconds{cache="fitness"}`.
    pub(crate) fn new(
        registry: &MetricsRegistry,
        inner: Arc<dyn EvalCache>,
        tenant: &str,
    ) -> MeteredEvalCache {
        let probes = |result| {
            registry.counter(
                "digamma_cache_probes_total",
                "Cache probes by cache layer, result, and tenant.",
                &[("cache", "fitness"), ("result", result), ("tenant", tenant)],
            )
        };
        MeteredEvalCache {
            inner,
            hits: probes("hit"),
            misses: probes("miss"),
            probe_seconds: probe_seconds(registry, "fitness"),
            sample: SampleTick::new(PROBE_LATENCY_SAMPLE_EVERY),
        }
    }
}

impl EvalCache for MeteredEvalCache {
    fn lookup(&self, key: u64) -> Option<Arc<CostReport>> {
        let found = if self.sample.due() {
            let started = Instant::now();
            let found = self.inner.lookup(key);
            self.probe_seconds.observe_duration(started.elapsed());
            found
        } else {
            self.inner.lookup(key)
        };
        match found {
            Some(report) => {
                self.hits.inc();
                Some(report)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    fn store(&self, key: u64, report: &Arc<CostReport>) {
        self.inner.store(key, report);
    }
}

/// A metering wrapper over a job's genome-memo view. Probe *counts*
/// for this layer come from `digamma`'s `EvalMetrics`
/// (`digamma_genome_memo_probes_total`); this shim adds only the
/// sampled probe latency so the two layers share one histogram family.
#[derive(Debug)]
pub(crate) struct MeteredGenomeMemo {
    inner: Arc<dyn GenomeMemo>,
    probe_seconds: Histogram,
    sample: SampleTick,
}

impl MeteredGenomeMemo {
    /// Wraps `inner`, registering
    /// `digamma_cache_probe_seconds{cache="genome"}`.
    pub(crate) fn new(registry: &MetricsRegistry, inner: Arc<dyn GenomeMemo>) -> MeteredGenomeMemo {
        MeteredGenomeMemo {
            inner,
            probe_seconds: probe_seconds(registry, "genome"),
            sample: SampleTick::new(PROBE_LATENCY_SAMPLE_EVERY),
        }
    }
}

impl GenomeMemo for MeteredGenomeMemo {
    fn lookup(&self, key: u64) -> Option<Arc<DesignEvaluation>> {
        if self.sample.due() {
            let started = Instant::now();
            let found = self.inner.lookup(key);
            self.probe_seconds.observe_duration(started.elapsed());
            found
        } else {
            self.inner.lookup(key)
        }
    }

    fn store(&self, key: u64, evaluation: &Arc<DesignEvaluation>) {
        self.inner.store(key, evaluation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digamma::{CoOptProblem, Objective};
    use digamma_costmodel::Platform;
    use digamma_encoding::Genome;
    use digamma_workload::zoo;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;
    use std::sync::Mutex;

    #[derive(Debug, Default)]
    struct MapCache(Mutex<HashMap<u64, Arc<CostReport>>>);

    impl EvalCache for MapCache {
        fn lookup(&self, key: u64) -> Option<Arc<CostReport>> {
            self.0.lock().unwrap().get(&key).cloned()
        }
        fn store(&self, key: u64, report: &Arc<CostReport>) {
            self.0.lock().unwrap().insert(key, Arc::clone(report));
        }
    }

    #[test]
    fn metered_cache_counts_hits_and_misses_and_delegates() {
        let problem = CoOptProblem::new(zoo::ncf(), Platform::edge(), Objective::Latency);
        let mut rng = SmallRng::seed_from_u64(3);
        let genome = Genome::random(&mut rng, problem.unique_layers(), problem.platform(), 2);
        let mappings = genome.decode(problem.unique_layers());
        let report = Arc::new(
            problem
                .evaluator()
                .evaluate(&problem.unique_layers()[0].layer, &mappings[0])
                .expect("random repaired genome evaluates"),
        );

        let registry = MetricsRegistry::new();
        let inner = Arc::new(MapCache::default());
        let metered = MeteredEvalCache::new(&registry, Arc::clone(&inner) as _, "t");
        assert!(metered.lookup(7).is_none());
        metered.store(7, &report);
        assert!(metered.lookup(7).is_some(), "store must delegate to the inner cache");
        assert!(inner.lookup(7).is_some());
        let text = registry.render();
        assert!(
            text.contains(
                "digamma_cache_probes_total{cache=\"fitness\",result=\"hit\",tenant=\"t\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "digamma_cache_probes_total{cache=\"fitness\",result=\"miss\",tenant=\"t\"} 1"
            ),
            "{text}"
        );
    }
}
