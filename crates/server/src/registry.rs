//! The runtime job registry: accept work while searches run.
//!
//! [`SearchServer::run`] drains a batch fixed up front; a network
//! service cannot work that way — clients submit jobs at any time, watch
//! their progress, and cancel mid-search. `JobRegistry` is the layer
//! that turns the batch server into that service:
//!
//! * **Submit at runtime** — [`JobRegistry::submit`] enqueues a job onto
//!   a condvar-signalled queue drained by long-lived worker threads
//!   (plain `std::thread::spawn`, since jobs outlive any caller scope).
//! * **Observe** — every job keeps an event log (one line per GA
//!   generation, fed by the [`JobControl`] progress seam) that
//!   subscribers can poll or block on; [`JobView`] snapshots a job's
//!   status, live progress, and best-so-far/final report.
//! * **Cancel** — [`JobRegistry::cancel`] flips the job's cooperative
//!   flag; the search stops at its next generation boundary, snapshots,
//!   and reports its partial best.
//! * **Survive kills** — with a [`Journal`] attached, accepted jobs are
//!   logged before they run and marked when they finish; a restarted
//!   registry replays the journal and resubmits every unfinished job,
//!   each of which resumes from its surviving checkpoint.

use crate::job::{JobReport, JobSpec};
use crate::journal::Journal;
use crate::queue::{JobControl, JobProgress, SearchServer, ServerConfig};
use crate::textio::TextError;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Identifies a job for the lifetime of the service (journal-stable
/// across restarts).
pub type JobId = u64;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is searching.
    Running,
    /// Finished its budget; the report is final.
    Done,
    /// Stopped early by [`JobRegistry::cancel`]; the report carries the
    /// partial best and the checkpoint (if any) survives for resumption.
    Cancelled,
}

impl std::fmt::Display for JobStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobStatus::Queued => f.write_str("queued"),
            JobStatus::Running => f.write_str("running"),
            JobStatus::Done => f.write_str("done"),
            JobStatus::Cancelled => f.write_str("cancelled"),
        }
    }
}

/// A point-in-time snapshot of one job, safe to hand to other threads
/// (and to render onto the wire).
#[derive(Debug, Clone)]
pub struct JobView {
    /// The job's id.
    pub id: JobId,
    /// The job's (unique-at-submission) name.
    pub name: String,
    /// Lifecycle state at snapshot time.
    pub status: JobStatus,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Latest per-generation progress, once the search has stepped.
    pub progress: Option<JobProgress>,
    /// The final report, once the job is done or cancelled.
    pub report: Option<JobReport>,
}

/// Aggregate service counters for the `/stats` endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Worker threads serving the registry.
    pub workers: usize,
    /// Workers currently running a job.
    pub busy_workers: usize,
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs currently searching.
    pub running: usize,
    /// Jobs finished to budget.
    pub done: usize,
    /// Jobs cancelled.
    pub cancelled: usize,
}

struct JobEntry {
    spec: JobSpec,
    status: JobStatus,
    control: Arc<JobControl>,
    /// Set by [`JobRegistry::cancel`]; distinguishes a user's cancel
    /// (terminal — journaled as finished) from a shutdown's cooperative
    /// stop (not journaled, so the job resumes on the next start).
    user_cancelled: bool,
    progress: Option<JobProgress>,
    /// A bounded ring of the newest event lines (one per generation,
    /// plus a terminal line). Event streams address lines by *sequence
    /// number*; `events_base` is the sequence of `events[0]`, so dropped
    /// history is visible as a gap instead of shifting indices.
    events: VecDeque<String>,
    /// Sequence number of the first retained event line.
    events_base: usize,
    events_done: bool,
    report: Option<JobReport>,
}

#[derive(Default)]
struct RegState {
    next_id: JobId,
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, JobEntry>,
    busy_workers: usize,
    shutdown: bool,
}

struct Inner {
    server: SearchServer,
    workers: usize,
    journal: Option<Journal>,
    state: Mutex<RegState>,
    cond: Condvar,
}

/// The runtime job service. See the module docs.
pub struct JobRegistry {
    inner: Arc<Inner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for JobRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRegistry").field("stats", &self.stats()).finish()
    }
}

impl JobRegistry {
    /// Starts a registry: spins up `config.workers` worker threads and —
    /// when `journal_path` is given — replays the journal, resubmitting
    /// every job that never finished (each resumes from its snapshot
    /// through the normal checkpoint path).
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the journal exists but cannot be
    /// read.
    pub fn start(
        config: ServerConfig,
        journal_path: Option<PathBuf>,
    ) -> std::io::Result<JobRegistry> {
        let workers = config.workers.max(1);
        let journal = journal_path.map(Journal::new);
        let mut replayed = Vec::new();
        let mut next_id: JobId = 1;
        if let Some(journal) = &journal {
            let replay = journal.replay()?;
            next_id = replay.next_id;
            replayed = replay.pending;
        }
        let inner = Arc::new(Inner {
            server: SearchServer::new(config),
            workers,
            journal,
            state: Mutex::new(RegState { next_id, ..RegState::default() }),
            cond: Condvar::new(),
        });
        {
            // Controls carry a progress closure capturing `inner`, so
            // replayed jobs enqueue only after `inner` exists.
            let mut state = inner.state.lock().expect("registry poisoned");
            for (id, spec) in replayed {
                state.queue.push_back(id);
                let entry = JobEntry::new(spec, make_control(&inner, id));
                state.jobs.insert(id, entry);
            }
        }
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(JobRegistry { inner, handles: Mutex::new(handles) })
    }

    /// The underlying batch server (its config and cache stats).
    pub fn server(&self) -> &SearchServer {
        &self.inner.server
    }

    /// Submits one job; returns its id once it is queued (and journaled,
    /// when a journal is attached).
    ///
    /// # Errors
    ///
    /// Returns [`TextError`] when another *live* (queued or running) job
    /// already uses the name — names key checkpoint files, so two live
    /// jobs sharing one would corrupt each other's snapshots — or when
    /// the registry is shutting down.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, TextError> {
        Ok(self.submit_all(vec![spec])?[0])
    }

    /// Submits a batch of jobs **atomically**: every spec is validated
    /// against live names (and against the rest of the batch) before
    /// anything is journaled or enqueued, so a rejected batch leaves no
    /// orphan jobs running behind a client that saw an error.
    ///
    /// # Errors
    ///
    /// See [`JobRegistry::submit`]; on error, nothing was accepted.
    pub fn submit_all(&self, specs: Vec<JobSpec>) -> Result<Vec<JobId>, TextError> {
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        let mut state = self.inner.state.lock().expect("registry poisoned");
        if state.shutdown {
            return Err(TextError::new("registry is shutting down"));
        }
        // Validate the whole batch first: live-name collisions and
        // intra-batch duplicates.
        let mut batch_names = std::collections::HashSet::new();
        for spec in &specs {
            let live_collision = state.jobs.values().any(|entry| {
                entry.spec.name == spec.name
                    && matches!(entry.status, JobStatus::Queued | JobStatus::Running)
            });
            if live_collision {
                return Err(TextError::new(format!(
                    "a live job is already named {:?} (names key checkpoint files)",
                    spec.name
                )));
            }
            if !batch_names.insert(spec.name.clone()) {
                return Err(TextError::new(format!("duplicate job name {:?}", spec.name)));
            }
        }
        let ids: Vec<JobId> = (0..specs.len() as JobId).map(|i| state.next_id + i).collect();
        // Journal the whole batch in one append before anything
        // enqueues: an error accepts nothing.
        if let Some(journal) = &self.inner.journal {
            let batch: Vec<(JobId, &JobSpec)> = ids.iter().copied().zip(&specs).collect();
            journal
                .append_submitted_all(&batch)
                .map_err(|e| TextError::new(format!("journal append failed: {e}")))?;
        }
        state.next_id += specs.len() as JobId;
        for (&id, spec) in ids.iter().zip(specs) {
            state.queue.push_back(id);
            let entry = JobEntry::new(spec, make_control(&self.inner, id));
            state.jobs.insert(id, entry);
        }
        drop(state);
        self.inner.cond.notify_all();
        Ok(ids)
    }

    /// Parses a manifest and submits every job in it, atomically: a
    /// parse error or any collision accepts nothing.
    ///
    /// # Errors
    ///
    /// Returns [`TextError`] from parsing, from a `[server]` section
    /// (service knobs cannot be changed through the runtime submit
    /// path), or from [`JobRegistry::submit_all`].
    pub fn submit_manifest(&self, text: &str) -> Result<Vec<JobId>, TextError> {
        let manifest = crate::manifest::parse_manifest_full(text)?;
        if manifest.server != crate::manifest::ServerOverrides::default() {
            return Err(TextError::new(
                "[server] overrides are not accepted at runtime (a live service's \
                 workers/cache are fixed at startup; configure them via CLI flags)",
            ));
        }
        self.submit_all(manifest.jobs)
    }

    /// Snapshots one job.
    pub fn job(&self, id: JobId) -> Option<JobView> {
        let state = self.inner.state.lock().expect("registry poisoned");
        state.jobs.get(&id).map(|entry| entry.view(id))
    }

    /// Snapshots every job, in id order.
    pub fn jobs(&self) -> Vec<JobView> {
        let state = self.inner.state.lock().expect("registry poisoned");
        let mut views: Vec<JobView> = state.jobs.iter().map(|(&id, e)| e.view(id)).collect();
        views.sort_by_key(|v| v.id);
        views
    }

    /// Requests cancellation. A queued job cancels immediately; a
    /// running one stops cooperatively at its next generation boundary
    /// (snapshotting first). Returns the job's status after the request,
    /// or `None` for an unknown id.
    pub fn cancel(&self, id: JobId) -> Option<JobStatus> {
        let mut state = self.inner.state.lock().expect("registry poisoned");
        let journal = self.inner.journal.clone();
        let entry = state.jobs.get_mut(&id)?;
        match entry.status {
            JobStatus::Queued => {
                entry.status = JobStatus::Cancelled;
                entry.user_cancelled = true;
                let capacity = self.inner.server.config().event_log_capacity;
                entry.push_event("end status=cancelled".to_owned(), capacity);
                entry.events_done = true;
                if let Some(journal) = &journal {
                    let _ = journal.append_finished(id, JobStatus::Cancelled);
                }
                // Leave the id in `queue`; workers skip non-queued
                // entries when they pop.
            }
            JobStatus::Running => {
                entry.user_cancelled = true;
                entry.control.cancel();
            }
            JobStatus::Done | JobStatus::Cancelled => {}
        }
        let status = entry.status;
        drop(state);
        self.inner.cond.notify_all();
        Some(status)
    }

    /// Returns the job's event lines starting at sequence `from`, as
    /// `(first_seq, lines, done)`. Event logs are bounded rings
    /// ([`ServerConfig::event_log_capacity`]): when `from` points at
    /// history the ring already dropped, `first_seq > from` and the
    /// lines resume from the oldest retained sequence — late
    /// subscribers resume from an offset instead of replaying unbounded
    /// history. Blocks up to `timeout` for news when there is none yet;
    /// an unknown id returns `None`.
    pub fn events(
        &self,
        id: JobId,
        from: usize,
        timeout: Duration,
    ) -> Option<(usize, Vec<String>, bool)> {
        let mut state = self.inner.state.lock().expect("registry poisoned");
        loop {
            let entry = state.jobs.get(&id)?;
            if entry.events_end() > from || entry.events_done {
                let (first_seq, lines) = entry.events_from(from);
                return Some((first_seq, lines, entry.events_done));
            }
            let (next, wait) =
                self.inner.cond.wait_timeout(state, timeout).expect("registry poisoned");
            state = next;
            if wait.timed_out() {
                let entry = state.jobs.get(&id)?;
                let (first_seq, lines) = entry.events_from(from);
                return Some((first_seq, lines, entry.events_done));
            }
        }
    }

    /// Aggregate queue/worker counters.
    pub fn stats(&self) -> RegistryStats {
        let state = self.inner.state.lock().expect("registry poisoned");
        let mut stats = RegistryStats {
            workers: self.inner.workers,
            busy_workers: state.busy_workers,
            ..RegistryStats::default()
        };
        for entry in state.jobs.values() {
            match entry.status {
                JobStatus::Queued => stats.queued += 1,
                JobStatus::Running => stats.running += 1,
                JobStatus::Done => stats.done += 1,
                JobStatus::Cancelled => stats.cancelled += 1,
            }
        }
        stats
    }

    /// Stops accepting work and shuts the workers down. Running jobs are
    /// cancelled cooperatively (they snapshot and will resume on the
    /// next start when a journal is attached); queued jobs stay queued
    /// in the journal. Blocks until every worker has exited.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().expect("registry poisoned");
            state.shutdown = true;
            for entry in state.jobs.values() {
                if entry.status == JobStatus::Running {
                    entry.control.cancel();
                }
            }
        }
        self.inner.cond.notify_all();
        let handles: Vec<_> = std::mem::take(&mut *self.handles.lock().expect("registry poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        // Final spill: the next life warm-starts from everything this
        // one memoized.
        self.inner.server.spill_cache_if_dirty();
    }
}

/// Builds a job's control: its cancel flag is what [`JobRegistry::cancel`]
/// flips, and its progress sink appends event lines and refreshes the
/// live view under the registry lock (taken fresh per generation — the
/// worker holds no lock while searching). The closure captures only a
/// [`std::sync::Weak`] — `Inner` owns every control through its jobs
/// map, so a strong capture would be a reference cycle keeping the
/// whole registry (cache included) alive forever.
fn make_control(inner: &Arc<Inner>, id: JobId) -> Arc<JobControl> {
    let inner = Arc::downgrade(inner);
    Arc::new(JobControl::new().with_progress(move |progress: JobProgress| {
        let Some(inner) = inner.upgrade() else { return };
        let capacity = inner.server.config().event_log_capacity;
        let mut state = inner.state.lock().expect("registry poisoned");
        if let Some(entry) = state.jobs.get_mut(&id) {
            entry.progress = Some(progress);
            entry.push_event(progress.line(), capacity);
        }
        drop(state);
        inner.cond.notify_all();
    }))
}

impl JobEntry {
    fn new(spec: JobSpec, control: Arc<JobControl>) -> JobEntry {
        JobEntry {
            spec,
            status: JobStatus::Queued,
            control,
            user_cancelled: false,
            progress: None,
            events: VecDeque::new(),
            events_base: 0,
            events_done: false,
            report: None,
        }
    }

    /// Appends an event line, dropping the oldest retained line once
    /// the ring is full (`capacity` ≥ 1 always retains the newest line).
    fn push_event(&mut self, line: String, capacity: usize) {
        while self.events.len() >= capacity.max(1) {
            self.events.pop_front();
            self.events_base += 1;
        }
        self.events.push_back(line);
    }

    /// Sequence number one past the newest retained line.
    fn events_end(&self) -> usize {
        self.events_base + self.events.len()
    }

    /// Lines from sequence `from` on: `(first_seq, lines)` where
    /// `first_seq = max(from, events_base)` — a `first_seq` beyond
    /// `from` tells the subscriber the ring dropped that many lines.
    fn events_from(&self, from: usize) -> (usize, Vec<String>) {
        let start = from.max(self.events_base);
        let lines =
            self.events.iter().skip(start - self.events_base).cloned().collect::<Vec<String>>();
        (start, lines)
    }

    fn view(&self, id: JobId) -> JobView {
        JobView {
            id,
            name: self.spec.name.clone(),
            status: self.status,
            spec: self.spec.clone(),
            progress: self.progress,
            report: self.report.clone(),
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        // Claim the next queued job (skipping ids cancelled while
        // queued), or exit on shutdown.
        let (id, spec) = {
            let mut state = inner.state.lock().expect("registry poisoned");
            let claimed = loop {
                if state.shutdown {
                    return;
                }
                let mut claimed = None;
                while let Some(id) = state.queue.pop_front() {
                    if let Some(entry) = state.jobs.get_mut(&id) {
                        if entry.status == JobStatus::Queued {
                            entry.status = JobStatus::Running;
                            claimed = Some((id, entry.spec.clone()));
                            break;
                        }
                    }
                }
                if claimed.is_some() {
                    break claimed;
                }
                state = inner.cond.wait(state).expect("registry poisoned");
            };
            let Some(claimed) = claimed else { return };
            state.busy_workers += 1;
            claimed
        };
        inner.cond.notify_all();

        let control = {
            let state = inner.state.lock().expect("registry poisoned");
            Arc::clone(&state.jobs[&id].control)
        };
        let report = inner.server.run_job_controlled(&spec, &control);

        let mut state = inner.state.lock().expect("registry poisoned");
        let status = if report.cancelled { JobStatus::Cancelled } else { JobStatus::Done };
        // A shutdown's cooperative stop is not terminal: the job stays
        // pending in the journal (its snapshot survives) and resumes on
        // the next start. A user's cancel is terminal and journaled.
        let terminal =
            status == JobStatus::Done || state.jobs.get(&id).is_some_and(|e| e.user_cancelled);
        let capacity = inner.server.config().event_log_capacity;
        if let Some(entry) = state.jobs.get_mut(&id) {
            entry.status = status;
            entry.push_event(format!("end status={status}"), capacity);
            entry.events_done = true;
            entry.report = Some(report);
        }
        state.busy_workers -= 1;
        if terminal {
            if let Some(journal) = &inner.journal {
                let _ = journal.append_finished(id, status);
            }
        }
        drop(state);
        inner.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobAlgorithm;
    use digamma::Objective;
    use digamma_costmodel::Platform;
    use digamma_workload::zoo;

    fn spec(name: &str, budget: usize) -> JobSpec {
        let mut s = JobSpec::new(
            name,
            zoo::ncf(),
            Platform::edge(),
            Objective::Latency,
            JobAlgorithm::DiGamma,
        );
        s.budget = budget;
        s.population_size = 8;
        s.seed = 3;
        s
    }

    fn wait_done(registry: &JobRegistry, id: JobId) -> JobView {
        for _ in 0..600 {
            let view = registry.job(id).expect("known job");
            if matches!(view.status, JobStatus::Done | JobStatus::Cancelled) {
                return view;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("job {id} never finished");
    }

    #[test]
    fn submitted_jobs_run_and_report() {
        let registry =
            JobRegistry::start(ServerConfig { workers: 2, ..ServerConfig::default() }, None)
                .unwrap();
        let a = registry.submit(spec("a", 96)).unwrap();
        let b = registry.submit(spec("b", 96)).unwrap();
        assert_ne!(a, b);
        let va = wait_done(&registry, a);
        let vb = wait_done(&registry, b);
        assert_eq!(va.status, JobStatus::Done);
        assert_eq!(vb.status, JobStatus::Done);
        let report = va.report.expect("done jobs carry a report");
        assert_eq!(report.samples, 96);
        assert!(report.best.is_some());
        let stats = registry.stats();
        assert_eq!(stats.done, 2);
        assert_eq!((stats.queued, stats.running), (0, 0));
        registry.shutdown();
    }

    #[test]
    fn events_stream_one_line_per_generation() {
        let registry =
            JobRegistry::start(ServerConfig { workers: 1, ..ServerConfig::default() }, None)
                .unwrap();
        let id = registry.submit(spec("ev", 80)).unwrap();
        let mut lines = Vec::new();
        let mut from = 0;
        loop {
            let (first_seq, chunk, done) =
                registry.events(id, from, Duration::from_millis(200)).expect("known job");
            assert_eq!(first_seq, from, "nothing drops below the default ring capacity");
            from += chunk.len();
            lines.extend(chunk);
            if done {
                break;
            }
        }
        // 80 samples / population 8 = init + 9 generations, then the
        // terminal line.
        assert!(lines.len() >= 2, "{lines:?}");
        assert!(lines[0].starts_with("gen=1 "), "{lines:?}");
        assert_eq!(lines.last().unwrap(), "end status=done");
        registry.shutdown();
    }

    #[test]
    fn queued_jobs_cancel_immediately_and_running_jobs_cooperatively() {
        let dir = std::env::temp_dir().join(format!("digamma-reg-cancel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let registry = JobRegistry::start(
            ServerConfig {
                workers: 1,
                checkpoint_dir: Some(dir.clone()),
                ..ServerConfig::default()
            },
            None,
        )
        .unwrap();
        // A long-running job hogs the single worker; checkpoint at every
        // generation so cancellation must find a snapshot to write.
        let mut long = spec("long", 1_000_000);
        long.checkpoint_every = Some(1);
        let running = registry.submit(long).unwrap();
        let queued = registry.submit(spec("queued", 96)).unwrap();
        assert_eq!(registry.cancel(queued), Some(JobStatus::Cancelled));
        // Wait until the long job has actually stepped, then cancel it.
        let (_, _, done) = registry.events(running, 0, Duration::from_secs(10)).unwrap();
        assert!(!done, "job must still be running");
        registry.cancel(running);
        let view = wait_done(&registry, running);
        assert_eq!(view.status, JobStatus::Cancelled);
        let report = view.report.expect("cancelled jobs report partial results");
        assert!(report.cancelled);
        assert!(report.samples < 1_000_000);
        assert!(report.best.is_some(), "partial best survives cancellation");
        // The cooperative stop snapshotted for later resumption.
        let ckpt = registry.server().checkpoint_path(&view.spec).unwrap();
        assert!(ckpt.exists(), "cancelled job keeps its snapshot");
        assert_eq!(registry.job(queued).unwrap().status, JobStatus::Cancelled);
        registry.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_ring_drops_oldest_and_reports_resume_offset() {
        // Capacity 4: a ~20-generation job must overflow the ring, and
        // a late subscriber asking from 0 must land at the oldest
        // retained sequence instead of replaying everything.
        let registry = JobRegistry::start(
            ServerConfig { workers: 1, event_log_capacity: 4, ..ServerConfig::default() },
            None,
        )
        .unwrap();
        let id = registry.submit(spec("ring", 160)).unwrap();
        wait_done(&registry, id);
        let (first_seq, lines, done) =
            registry.events(id, 0, Duration::from_millis(100)).expect("known job");
        assert!(done);
        assert_eq!(lines.len(), 4, "ring retains exactly its capacity");
        assert!(first_seq > 0, "late subscriber must see the drop offset");
        assert_eq!(lines.last().unwrap(), "end status=done", "terminal line survives");
        // Resuming from a retained offset yields exactly the tail.
        let (seq2, tail, _) =
            registry.events(id, first_seq + 2, Duration::from_millis(100)).unwrap();
        assert_eq!(seq2, first_seq + 2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail, lines[2..].to_vec());
        // Asking beyond the end of a finished stream returns no lines.
        let (_, empty, done) =
            registry.events(id, first_seq + 4, Duration::from_millis(100)).unwrap();
        assert!(done && empty.is_empty());
        registry.shutdown();
    }

    #[test]
    fn duplicate_live_names_are_rejected() {
        let registry =
            JobRegistry::start(ServerConfig { workers: 1, ..ServerConfig::default() }, None)
                .unwrap();
        // Long enough that it cannot finish between the two submits.
        let id = registry.submit(spec("dup", 400_000)).unwrap();
        let err = registry.submit(spec("dup", 64)).unwrap_err();
        assert!(err.to_string().contains("dup"), "{err}");
        // Once the first is no longer live, the name is reusable.
        registry.cancel(id);
        wait_done(&registry, id);
        assert!(registry.submit(spec("dup", 64)).is_ok());
        registry.shutdown();
    }

    #[test]
    fn journal_replay_resubmits_unfinished_jobs() {
        let dir = std::env::temp_dir().join(format!("digamma-reg-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("jobs.journal");
        // First life: submit a job but shut down before it can finish
        // (zero-worker trick is impossible — workers min at 1 — so use a
        // long budget and shut down immediately; shutdown cancels
        // cooperatively without journaling a finish).
        let registry = JobRegistry::start(
            ServerConfig {
                workers: 1,
                checkpoint_dir: Some(dir.clone()),
                ..ServerConfig::default()
            },
            Some(journal.clone()),
        )
        .unwrap();
        let mut long = spec("revenant", 400_000);
        long.checkpoint_every = Some(1);
        let id = registry.submit(long).unwrap();
        // Let it step at least once so a snapshot exists.
        let _ = registry.events(id, 0, Duration::from_secs(10));
        registry.shutdown();

        // Second life: the journal replays the unfinished job under the
        // same id and it picks up from its snapshot.
        let reborn = JobRegistry::start(
            ServerConfig {
                workers: 1,
                checkpoint_dir: Some(dir.clone()),
                ..ServerConfig::default()
            },
            Some(journal),
        )
        .unwrap();
        let view = reborn.job(id).expect("replayed under the same id");
        assert_eq!(view.name, "revenant");
        // It resumed rather than restarting: the report (when the job
        // eventually finishes or is cancelled again) notes the resume
        // generation. Cancel to finish fast.
        let _ = reborn.events(id, 0, Duration::from_secs(10));
        reborn.cancel(id);
        let done = wait_done(&reborn, id);
        let report = done.report.unwrap();
        assert!(report.resumed_at.is_some(), "second life must resume from the snapshot");
        reborn.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
