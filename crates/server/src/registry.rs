//! The runtime job registry: accept work from many tenants while
//! searches run.
//!
//! [`SearchServer::run`] drains a batch fixed up front; a network
//! service cannot work that way — clients submit jobs at any time, watch
//! their progress, and cancel mid-search. `JobRegistry` is the layer
//! that turns the batch server into that service:
//!
//! * **Submit at runtime** — [`JobRegistry::submit`] enqueues a job onto
//!   its tenant's queue; long-lived worker threads (plain
//!   `std::thread::spawn`, since jobs outlive any caller scope) drain
//!   the queues under a condvar.
//! * **Share fairly** — each tenant ([`crate::TenantSpec`]) owns a FIFO
//!   queue; workers pick across tenants by *weighted round-robin with
//!   deficit counters*, so a tenant with weight 3 completes roughly
//!   three jobs for every one of a weight-1 tenant no matter how deep
//!   either backlog runs. Admission control enforces per-tenant quotas
//!   (queued jobs, running jobs, lifetime eval budget) and keeps the sum
//!   of running jobs' `threads` within the worker pool; violations are
//!   typed [`SubmitError`]s so the wire layer can answer 403/429 rather
//!   than 500.
//! * **Observe** — every job keeps an event log (one line per GA
//!   generation, fed by the [`JobControl`] progress seam) that
//!   subscribers can poll or block on; [`JobView`] snapshots a job's
//!   status, live progress, and best-so-far/final report, and
//!   [`RegistryStats`] breaks queue depth, eval consumption, and cache
//!   reuse down per tenant.
//! * **Cancel** — [`JobRegistry::cancel`] flips the job's cooperative
//!   flag; the search stops at its next generation boundary, snapshots,
//!   and reports its partial best. A queued job cancels immediately and
//!   leaves its tenant's queue at once.
//! * **Survive kills** — with a [`Journal`] attached, accepted jobs are
//!   logged before they run and marked when they finish; a restarted
//!   registry replays the journal and resubmits every unfinished job,
//!   each of which resumes from its surviving checkpoint.

use crate::job::{JobReport, JobSpec};
use crate::journal::Journal;
use crate::queue::{AnalyticsUpdate, JobControl, JobProgress, SearchServer, ServerConfig};
use crate::snapshot::compress_points;
use crate::tenant::{valid_tenant_id, TenantSet, TenantSpec};
use crate::textio::TextError;
use digamma_obs::{
    render_analytics_json, AnalyticsRing, CostPoint, LogLevel, OpCounters, SpanContext, SpanRecord,
    TraceId, Tracer, DEFAULT_LATENCY_BUCKETS,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Identifies a job for the lifetime of the service (journal-stable
/// across restarts).
pub type JobId = u64;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is searching.
    Running,
    /// Finished its budget; the report is final.
    Done,
    /// Stopped early by [`JobRegistry::cancel`]; the report carries the
    /// partial best and the checkpoint (if any) survives for resumption.
    Cancelled,
    /// The worker caught the job panicking. Terminal (journaled as
    /// finished) with no report; the tenant's unconsumed eval budget is
    /// refunded, and the worker thread survives to run other jobs.
    Failed,
}

impl std::fmt::Display for JobStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobStatus::Queued => f.write_str("queued"),
            JobStatus::Running => f.write_str("running"),
            JobStatus::Done => f.write_str("done"),
            JobStatus::Cancelled => f.write_str("cancelled"),
            JobStatus::Failed => f.write_str("failed"),
        }
    }
}

/// Why a submission was rejected. The variants split along the wire
/// status the front-end should answer with: a malformed request is the
/// client's bug (400), an unknown tenant is a permission problem (403),
/// and a quota rejection is back-pressure the client can retry after
/// (429).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The spec or manifest itself is unacceptable (bad name, zero
    /// threads, parse error, shutdown in progress).
    Invalid(String),
    /// The spec names a tenant the service's roster does not list (only
    /// possible when a non-empty [`TenantSet`] is configured).
    UnknownTenant(String),
    /// Accepting the batch would exceed the tenant's `max_queued` or
    /// `max_evals` quota; nothing was accepted.
    QuotaExceeded(String),
    /// The service cannot accept work *right now* — it is draining,
    /// shutting down, or shedding load past its queue-depth watermark.
    /// The wire layer answers 503 with `Retry-After`; nothing about the
    /// request itself was wrong.
    Unavailable(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(msg)
            | SubmitError::UnknownTenant(msg)
            | SubmitError::QuotaExceeded(msg)
            | SubmitError::Unavailable(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<TextError> for SubmitError {
    fn from(e: TextError) -> SubmitError {
        SubmitError::Invalid(e.to_string())
    }
}

/// A point-in-time snapshot of one job, safe to hand to other threads
/// (and to render onto the wire).
#[derive(Debug, Clone)]
pub struct JobView {
    /// The job's id.
    pub id: JobId,
    /// The job's (unique-at-submission) name.
    pub name: String,
    /// Lifecycle state at snapshot time.
    pub status: JobStatus,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Latest per-generation progress, once the search has stepped.
    pub progress: Option<JobProgress>,
    /// The final report, once the job is done or cancelled.
    pub report: Option<JobReport>,
}

/// Aggregate service counters for the `/stats` endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Seconds since the Unix epoch when the registry started.
    pub start_unix: u64,
    /// Whole seconds the registry has been serving.
    pub uptime_seconds: u64,
    /// Unfinished jobs resubmitted from the journal at start.
    pub replayed_jobs: usize,
    /// Worker threads serving the registry.
    pub workers: usize,
    /// Workers currently running a job.
    pub busy_workers: usize,
    /// Σ `spec.threads` over running jobs (admission keeps this ≤
    /// `workers`).
    pub running_threads: usize,
    /// Jobs waiting in tenant queues (the scheduler's own queue depth,
    /// not a recount of job statuses — a cancelled job must leave this
    /// immediately).
    pub queued: usize,
    /// Jobs currently searching.
    pub running: usize,
    /// Jobs finished to budget.
    pub done: usize,
    /// Jobs cancelled.
    pub cancelled: usize,
    /// Jobs that panicked and were failed by their worker.
    pub failed: usize,
    /// Running jobs currently inside a stall episode (no incumbent
    /// improvement for at least [`ServerConfig::stall_after`]
    /// generations).
    pub stalled: usize,
    /// Cumulative per-operator search attribution, aggregated across
    /// every job the registry has seen.
    pub operators: OpCounters,
    /// Per-tenant breakdown, in tenant-id order.
    pub tenants: Vec<TenantStats>,
}

/// One tenant's slice of [`RegistryStats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantStats {
    /// The tenant id.
    pub id: String,
    /// Scheduling weight.
    pub weight: u64,
    /// Jobs waiting in this tenant's queue.
    pub queued: usize,
    /// Jobs currently searching.
    pub running: usize,
    /// Jobs finished to budget.
    pub done: usize,
    /// Jobs cancelled.
    pub cancelled: usize,
    /// Jobs that panicked and were failed by their worker.
    pub failed: usize,
    /// Σ budget over every accepted job (what `max_evals` caps).
    pub evals_submitted: u64,
    /// Σ samples actually evaluated by finished jobs.
    pub evals_consumed: u64,
    /// Fitness-cache hits across this tenant's finished jobs.
    pub cache_hits: u64,
    /// Fitness-cache misses across this tenant's finished jobs.
    pub cache_misses: u64,
    /// Fitness-cache store calls across this tenant's finished jobs
    /// (the per-tenant partitioning hook: how much shared cache space
    /// the tenant's work demanded).
    pub cache_insertions: u64,
    /// Genome-memo hits across this tenant's finished jobs.
    pub genome_hits: u64,
    /// Genome-memo misses across this tenant's finished jobs.
    pub genome_misses: u64,
    /// Genome-memo store calls across this tenant's finished jobs.
    pub genome_insertions: u64,
}

struct JobEntry {
    spec: JobSpec,
    status: JobStatus,
    control: Arc<JobControl>,
    /// When the job entered its tenant's queue; [`claim_next`] turns
    /// the elapsed time into `queue_wait` at claim.
    queued_at: Instant,
    /// How long the job sat queued before a worker claimed it (zero
    /// until claimed; stamped into the report when the job finishes).
    queue_wait: Duration,
    /// Set by [`JobRegistry::cancel`]; distinguishes a user's cancel
    /// (terminal — journaled as finished) from a shutdown's cooperative
    /// stop (not journaled, so the job resumes on the next start).
    user_cancelled: bool,
    progress: Option<JobProgress>,
    /// A bounded ring of the newest event lines (one per generation,
    /// plus a terminal line). Event streams address lines by *sequence
    /// number*; `events_base` is the sequence of `events[0]`, so dropped
    /// history is visible as a gap instead of shifting indices.
    events: VecDeque<String>,
    /// Sequence number of the first retained event line.
    events_base: usize,
    events_done: bool,
    report: Option<JobReport>,
    /// The span context the job's lifecycle spans nest under. Stamped
    /// from the submitting request at submit; a job submitted without
    /// one (journal replay, library use) gets a fresh root trace at
    /// claim so `/trace/{id}` always resolves.
    trace: Option<SpanContext>,
    /// Tracer-clock reading when the job entered its queue — the start
    /// of its `job.queued` span.
    queued_ns: u64,
    /// The job's per-generation telemetry window
    /// ([`ServerConfig::analytics_capacity`] newest records).
    analytics: AnalyticsRing,
    /// Cumulative per-operator attribution, absolute (after a resume it
    /// includes the restored pre-kill half).
    ops: OpCounters,
    /// The compressed cost-vs-evaluations curve: one point per
    /// incumbent change (plus the starting point).
    cost_points: Vec<CostPoint>,
    /// Whether the current stall episode already emitted its `stalled`
    /// event line (re-armed by the next improvement).
    stall_emitted: bool,
}

/// Lifetime usage counters for one tenant (fed from finished jobs'
/// [`JobReport`]s, except `evals_submitted` which admission maintains).
#[derive(Debug, Default)]
struct TenantUsage {
    evals_submitted: u64,
    evals_consumed: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_insertions: u64,
    genome_hits: u64,
    genome_misses: u64,
    genome_insertions: u64,
}

/// One tenant's scheduler state: its FIFO queue plus the deficit
/// counter the weighted round-robin spends.
struct TenantSched {
    spec: TenantSpec,
    queue: VecDeque<JobId>,
    /// Claims left this round; replenished to `spec.weight` when every
    /// tenant with eligible work has spent theirs.
    deficit: u64,
    /// Jobs currently running (what `spec.max_running` caps).
    running: usize,
    usage: TenantUsage,
}

impl TenantSched {
    fn new(spec: TenantSpec) -> TenantSched {
        TenantSched {
            spec,
            queue: VecDeque::new(),
            deficit: 0,
            running: 0,
            usage: TenantUsage::default(),
        }
    }
}

#[derive(Default)]
struct RegState {
    next_id: JobId,
    /// Scheduler state per tenant id. Tenants from the configured
    /// roster are seeded at start; unknown ids (permissive mode, old
    /// journals) register on first use with default weight and no
    /// quotas.
    tenants: BTreeMap<String, TenantSched>,
    /// Round-robin visit order (registration order, stable across the
    /// registry's life).
    rotation: Vec<String>,
    /// Rotation index of the tenant that claimed most recently; the
    /// next scan starts here so a tenant with deficit left keeps its
    /// turn.
    cursor: usize,
    /// Σ `spec.threads` over running jobs.
    running_threads: usize,
    jobs: HashMap<JobId, JobEntry>,
    busy_workers: usize,
    shutdown: bool,
    /// Set by [`JobRegistry::drain`]: stop admitting, keep working off
    /// what is already accepted.
    draining: bool,
    /// Accepted keyed submissions, `(scope, key) → ids`: a retried
    /// submit with the same key returns the original ids instead of
    /// creating duplicates. Journaled alongside the batch, so dedupe
    /// survives a restart.
    idempotency: HashMap<(String, String), Vec<JobId>>,
}

impl RegState {
    /// The tenant's scheduler state, registering it (default weight, no
    /// quotas) on first sight.
    fn tenant_mut(&mut self, id: &str) -> &mut TenantSched {
        if !self.tenants.contains_key(id) {
            self.tenants.insert(id.to_owned(), TenantSched::new(TenantSpec::named(id)));
            self.rotation.push(id.to_owned());
        }
        self.tenants.get_mut(id).expect("just registered")
    }

    /// Registers an accepted job: into the jobs map and onto its
    /// tenant's queue, with its budget charged against `max_evals`.
    fn enqueue(&mut self, id: JobId, entry: JobEntry) {
        let tenant = entry.spec.tenant.clone();
        let budget = entry.spec.budget as u64;
        self.jobs.insert(id, entry);
        let sched = self.tenant_mut(&tenant);
        sched.queue.push_back(id);
        sched.usage.evals_submitted += budget;
    }
}

/// Whether `sched`'s next job could start right now: something is
/// queued, the tenant is below `max_running`, and the head job's
/// `threads` fit in the worker pool. Head-of-line only — jobs within a
/// tenant run in submission order, so a wide job at the head waits for
/// threads rather than being overtaken by its own tenant's later jobs.
fn head_admittable(
    jobs: &HashMap<JobId, JobEntry>,
    sched: &TenantSched,
    running_threads: usize,
    total_workers: usize,
) -> bool {
    if sched.spec.max_running.is_some_and(|max| sched.running >= max) {
        return false;
    }
    let Some(head) = sched.queue.front() else { return false };
    jobs.get(head).is_some_and(|entry| {
        entry.status == JobStatus::Queued && running_threads + entry.spec.threads <= total_workers
    })
}

/// Picks the job the calling worker should run next — the scheduling
/// decision, factored out of [`worker_loop`] so tests can drive it
/// deterministically.
///
/// Weighted round-robin with deficit counters: scanning the rotation
/// from the cursor, the first tenant with deficit left and an
/// admittable head job claims. When every such tenant has spent its
/// deficit, each is replenished to its weight and the scan repeats —
/// so over any busy stretch, tenants complete claims in proportion to
/// their weights regardless of backlog depth. Returns `None` when no
/// job can start (empty queues, `max_running` caps, or not enough free
/// threads); the caller waits on the condvar.
fn claim_next(state: &mut RegState, total_workers: usize) -> Option<(JobId, JobSpec)> {
    // Drop stale heads (ids whose job is no longer queued) so they
    // cannot wedge their tenant. Cancellation dequeues eagerly, so this
    // is a backstop, not the cleanup path.
    {
        let jobs = &state.jobs;
        for sched in state.tenants.values_mut() {
            while sched
                .queue
                .front()
                .is_some_and(|id| !jobs.get(id).is_some_and(|e| e.status == JobStatus::Queued))
            {
                sched.queue.pop_front();
            }
        }
    }
    for attempt in 0..2 {
        let n = state.rotation.len();
        let mut pick = None;
        for step in 0..n {
            let idx = (state.cursor + step) % n;
            let sched = &state.tenants[&state.rotation[idx]];
            if sched.deficit > 0
                && head_admittable(&state.jobs, sched, state.running_threads, total_workers)
            {
                pick = Some(idx);
                break;
            }
        }
        if let Some(idx) = pick {
            state.cursor = idx;
            let tid = state.rotation[idx].clone();
            let sched = state.tenants.get_mut(&tid).expect("rotation tracks tenants");
            sched.deficit -= 1;
            sched.running += 1;
            let id = sched.queue.pop_front().expect("admittable head exists");
            let entry = state.jobs.get_mut(&id).expect("queued jobs are registered");
            entry.status = JobStatus::Running;
            entry.queue_wait = entry.queued_at.elapsed();
            state.running_threads += entry.spec.threads;
            return Some((id, entry.spec.clone()));
        }
        if attempt == 0 {
            // Every tenant that could run is out of deficit: grant the
            // next round. Only tenants with admittable work replenish,
            // so an idle tenant cannot bank credit while absent and
            // then starve everyone on return.
            let jobs = &state.jobs;
            let running_threads = state.running_threads;
            let mut any = false;
            for sched in state.tenants.values_mut() {
                if head_admittable(jobs, sched, running_threads, total_workers) {
                    sched.deficit = sched.spec.weight;
                    any = true;
                }
            }
            if !any {
                return None;
            }
        }
    }
    None
}

struct Inner {
    server: SearchServer,
    workers: usize,
    journal: Option<Journal>,
    tenants: TenantSet,
    state: Mutex<RegState>,
    cond: Condvar,
    /// When the registry started (uptime reference).
    started: Instant,
    /// Unix seconds at start, for `digamma_process_start_time_seconds`.
    start_unix: u64,
    /// Unfinished jobs the journal replay resubmitted at start.
    replayed: usize,
}

/// The runtime job service. See the module docs.
pub struct JobRegistry {
    inner: Arc<Inner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for JobRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRegistry").field("stats", &self.stats()).finish()
    }
}

impl JobRegistry {
    /// Starts a single-tenant (permissive) registry: every job runs
    /// under whatever tenant id its spec carries, registered on first
    /// sight with default weight and no quotas. Equivalent to
    /// [`JobRegistry::start_with_tenants`] with an empty set.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the journal exists but cannot be
    /// read.
    pub fn start(
        config: ServerConfig,
        journal_path: Option<PathBuf>,
    ) -> std::io::Result<JobRegistry> {
        JobRegistry::start_with_tenants(config, journal_path, TenantSet::default())
    }

    /// Starts a registry: spins up `config.workers` worker threads and —
    /// when `journal_path` is given — replays the journal, resubmitting
    /// every job that never finished (each resumes from its snapshot
    /// through the normal checkpoint path).
    ///
    /// A non-empty `tenants` roster makes admission strict: jobs must
    /// name a listed tenant, and each tenant's weight and quotas apply.
    /// Journal replay stays lenient — a journal written before a tenant
    /// left the roster still replays, auto-registering the id — so a
    /// roster edit can never brick a restart.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the journal exists but cannot be
    /// read.
    pub fn start_with_tenants(
        config: ServerConfig,
        journal_path: Option<PathBuf>,
        tenants: TenantSet,
    ) -> std::io::Result<JobRegistry> {
        let workers = config.workers.max(1);
        // The journal consults the server's failpoint set, so one
        // `--failpoints` spec covers storage, eval, and wire faults.
        let journal = journal_path.map(|p| Journal::with_faults(p, Arc::clone(&config.faults)));
        let mut replayed = Vec::new();
        let mut next_id: JobId = 1;
        let mut corrupt = 0u64;
        let mut idempotency = Vec::new();
        if let Some(journal) = &journal {
            let replay = journal.replay()?;
            next_id = replay.next_id;
            replayed = replay.pending;
            corrupt = replay.corrupt;
            idempotency = replay.idempotency;
        }
        let inner = Arc::new(Inner {
            server: SearchServer::new(config),
            workers,
            journal,
            tenants,
            state: Mutex::new(RegState { next_id, ..RegState::default() }),
            cond: Condvar::new(),
            started: Instant::now(),
            start_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |since| since.as_secs()),
            replayed: replayed.len(),
        });
        inner
            .server
            .metrics()
            .counter(
                "digamma_journal_replayed_jobs_total",
                "Unfinished jobs resubmitted from the journal at start.",
                &[],
            )
            .add(replayed.len() as u64);
        inner
            .server
            .metrics()
            .counter(
                "digamma_journal_corrupt_records_total",
                "Journal records whose checksum failed at replay (skipped, not replayed).",
                &[],
            )
            .add(corrupt);
        if corrupt > 0 {
            digamma_obs::log::global().log(
                LogLevel::Warn,
                "registry",
                None,
                "journal replay skipped corrupt records",
                &[("corrupt", corrupt.to_string())],
            );
        }
        {
            // Controls carry a progress closure capturing `inner`, so
            // replayed jobs enqueue only after `inner` exists.
            let mut state = inner.state.lock().expect("registry poisoned");
            // Seed the roster so weights and quotas apply from the
            // first claim and `/stats` lists every configured tenant.
            for tspec in inner.tenants.iter() {
                state.tenants.insert(tspec.id.clone(), TenantSched::new(tspec.clone()));
                state.rotation.push(tspec.id.clone());
            }
            let queued_ns = inner.server.tracer().now_ns();
            for (id, spec) in replayed {
                let entry = JobEntry::new(
                    spec,
                    make_control(&inner, id),
                    None,
                    queued_ns,
                    inner.server.config().analytics_capacity,
                );
                state.enqueue(id, entry);
            }
            for (scope, key, ids) in idempotency {
                state.idempotency.insert((scope, key), ids);
            }
        }
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(JobRegistry { inner, handles: Mutex::new(handles) })
    }

    /// The underlying batch server (its config and cache stats).
    pub fn server(&self) -> &SearchServer {
        &self.inner.server
    }

    /// The configured tenant roster (empty in permissive mode). The
    /// wire front-end reads tokens and auth policy from here.
    pub fn tenants(&self) -> &TenantSet {
        &self.inner.tenants
    }

    /// Submits one job; returns its id once it is queued (and journaled,
    /// when a journal is attached).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] when another *live* (queued or running)
    /// job already uses the name — names key checkpoint files, so two
    /// live jobs sharing one would corrupt each other's snapshots —
    /// when `threads` is zero or the tenant id is malformed, or when
    /// the registry is shutting down. [`SubmitError::UnknownTenant`]
    /// and [`SubmitError::QuotaExceeded`] per the configured roster.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        Ok(self.submit_all(vec![spec])?[0])
    }

    /// Submits a batch of jobs **atomically**: every spec is validated
    /// against live names (and against the rest of the batch), the
    /// roster, and every quota before anything is journaled or
    /// enqueued, so a rejected batch leaves no orphan jobs running
    /// behind a client that saw an error.
    ///
    /// Each accepted spec's `threads` is clamped to the worker count;
    /// the scheduler then keeps Σ running `threads` ≤ workers, so no
    /// admitted job can oversubscribe the pool.
    ///
    /// # Errors
    ///
    /// See [`JobRegistry::submit`]; on error, nothing was accepted.
    pub fn submit_all(&self, specs: Vec<JobSpec>) -> Result<Vec<JobId>, SubmitError> {
        self.submit_all_traced(specs, None)
    }

    /// [`JobRegistry::submit_all`] with the submitting request's span
    /// context attached: every accepted job's lifecycle spans nest
    /// under it, so `/trace/{id}` walks from the HTTP request through
    /// queue wait, claim, run, and generations in one timeline.
    ///
    /// # Errors
    ///
    /// See [`JobRegistry::submit`]; on error, nothing was accepted.
    pub fn submit_all_traced(
        &self,
        specs: Vec<JobSpec>,
        trace: Option<SpanContext>,
    ) -> Result<Vec<JobId>, SubmitError> {
        self.submit_all_keyed(specs, trace, None)
    }

    /// [`JobRegistry::submit_all_traced`] with an optional idempotency
    /// binding `(scope, key)`: the first keyed submission journals the
    /// key alongside its batch; a retry with the same key — including
    /// one that lands *after a daemon restart* — returns the original
    /// ids instead of creating duplicate jobs. The scope is the
    /// authenticated tenant (or `""` unauthenticated), so tenants
    /// cannot collide with or probe each other's keys.
    ///
    /// # Errors
    ///
    /// See [`JobRegistry::submit`]; additionally
    /// [`SubmitError::Unavailable`] while the registry drains, shuts
    /// down, or sheds load past [`ServerConfig::shed_queue_depth`].
    pub fn submit_all_keyed(
        &self,
        mut specs: Vec<JobSpec>,
        trace: Option<SpanContext>,
        idempotency: Option<(&str, &str)>,
    ) -> Result<Vec<JobId>, SubmitError> {
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.inner.workers;
        let mut state = self.inner.state.lock().expect("registry poisoned");
        if state.shutdown || state.draining {
            return Err(SubmitError::Unavailable(
                "service is draining or shutting down; retry later".to_owned(),
            ));
        }
        // A replayed key answers before anything else (even while
        // shedding): the work was already accepted, the client just
        // never heard.
        let dedupe_key = idempotency.map(|(scope, key)| (scope.to_owned(), key.to_owned()));
        if let Some(key) = &dedupe_key {
            if let Some(ids) = state.idempotency.get(key) {
                return Ok(ids.clone());
            }
        }
        // Load shedding: past the watermark the healthy answer is a
        // fast 503 + Retry-After, not an ever-deeper queue.
        let shed = self.inner.server.config().shed_queue_depth;
        if shed > 0 {
            let queued: usize = state.tenants.values().map(|s| s.queue.len()).sum();
            if queued + specs.len() > shed {
                self.inner
                    .server
                    .metrics()
                    .counter(
                        "digamma_submits_shed_total",
                        "Submissions refused because queue depth hit the shed watermark.",
                        &[],
                    )
                    .inc();
                return Err(SubmitError::Unavailable(format!(
                    "queue depth {queued} is at the shed watermark {shed}; retry later"
                )));
            }
        }
        // Validate the whole batch first: live-name collisions,
        // intra-batch duplicates, tenant identity, and thread counts.
        let mut batch_names = std::collections::HashSet::new();
        for spec in &mut specs {
            let live_collision = state.jobs.values().any(|entry| {
                entry.spec.name == spec.name
                    && matches!(entry.status, JobStatus::Queued | JobStatus::Running)
            });
            if live_collision {
                return Err(SubmitError::Invalid(format!(
                    "a live job is already named {:?} (names key checkpoint files)",
                    spec.name
                )));
            }
            if !batch_names.insert(spec.name.clone()) {
                return Err(SubmitError::Invalid(format!("duplicate job name {:?}", spec.name)));
            }
            if spec.threads == 0 {
                return Err(SubmitError::Invalid(format!(
                    "job {:?}: threads must be at least 1",
                    spec.name
                )));
            }
            // More threads than workers could never be scheduled; clamp
            // rather than wedge the job forever.
            spec.threads = spec.threads.min(workers);
            if !valid_tenant_id(&spec.tenant) {
                return Err(SubmitError::Invalid(format!(
                    "job {:?}: bad tenant id {:?}",
                    spec.name, spec.tenant
                )));
            }
            if !self.inner.tenants.is_empty() && self.inner.tenants.get(&spec.tenant).is_none() {
                return Err(SubmitError::UnknownTenant(format!(
                    "unknown tenant {:?} (job {:?})",
                    spec.tenant, spec.name
                )));
            }
        }
        // Quota admission, per tenant across the whole batch.
        let mut per_tenant: BTreeMap<&str, (usize, u64)> = BTreeMap::new();
        for spec in &specs {
            let slot = per_tenant.entry(spec.tenant.as_str()).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += spec.budget as u64;
        }
        for (tid, &(count, budget)) in &per_tenant {
            let sched = state.tenants.get(*tid);
            let Some(tspec) = sched.map(|s| &s.spec).or_else(|| self.inner.tenants.get(tid)) else {
                continue; // unlisted tenant in permissive mode: no quotas
            };
            if let Some(max) = tspec.max_queued {
                let queued = sched.map_or(0, |s| s.queue.len());
                if queued + count > max {
                    return Err(SubmitError::QuotaExceeded(format!(
                        "tenant {tid:?}: {queued} queued + {count} submitted exceeds \
                         max_queued {max}"
                    )));
                }
            }
            if let Some(max) = tspec.max_evals {
                let used = sched.map_or(0, |s| s.usage.evals_submitted);
                if used + budget > max {
                    return Err(SubmitError::QuotaExceeded(format!(
                        "tenant {tid:?}: {used} evals submitted + {budget} requested exceeds \
                         max_evals {max}"
                    )));
                }
            }
        }
        let ids: Vec<JobId> = (0..specs.len() as JobId).map(|i| state.next_id + i).collect();
        // Journal the whole batch in one append before anything
        // enqueues: an error accepts nothing.
        if let Some(journal) = &self.inner.journal {
            let batch: Vec<(JobId, &JobSpec)> = ids.iter().copied().zip(&specs).collect();
            journal
                .append_submitted_keyed(&batch, idempotency)
                .map_err(|e| SubmitError::Invalid(format!("journal append failed: {e}")))?;
        }
        state.next_id += specs.len() as JobId;
        let queued_ns = self.inner.server.tracer().now_ns();
        for (&id, spec) in ids.iter().zip(specs) {
            let entry = JobEntry::new(
                spec,
                make_control(&self.inner, id),
                trace,
                queued_ns,
                self.inner.server.config().analytics_capacity,
            );
            state.enqueue(id, entry);
        }
        if let Some(key) = dedupe_key {
            state.idempotency.insert(key, ids.clone());
        }
        drop(state);
        self.inner.cond.notify_all();
        Ok(ids)
    }

    /// Parses a manifest and submits every job in it, atomically: a
    /// parse error or any collision accepts nothing.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] from parsing, from a `[server]` section
    /// (service knobs cannot be changed through the runtime submit
    /// path), or from [`JobRegistry::submit_all`].
    pub fn submit_manifest(&self, text: &str) -> Result<Vec<JobId>, SubmitError> {
        self.submit_manifest_as(text, None)
    }

    /// [`JobRegistry::submit_manifest`] with the submitter's identity
    /// pinned: when `tenant` is given (an authenticated wire client),
    /// every job in the manifest runs under it — manifests cannot
    /// impersonate another tenant no matter what their `tenant` keys
    /// say.
    ///
    /// # Errors
    ///
    /// See [`JobRegistry::submit_manifest`].
    pub fn submit_manifest_as(
        &self,
        text: &str,
        tenant: Option<&str>,
    ) -> Result<Vec<JobId>, SubmitError> {
        self.submit_manifest_traced(text, tenant, None)
    }

    /// [`JobRegistry::submit_manifest_as`] with the submitting
    /// request's span context attached (see
    /// [`JobRegistry::submit_all_traced`]).
    ///
    /// # Errors
    ///
    /// See [`JobRegistry::submit_manifest`].
    pub fn submit_manifest_traced(
        &self,
        text: &str,
        tenant: Option<&str>,
        trace: Option<SpanContext>,
    ) -> Result<Vec<JobId>, SubmitError> {
        self.submit_manifest_keyed(text, tenant, trace, None)
    }

    /// [`JobRegistry::submit_manifest_traced`] with an optional
    /// idempotency key, scoped to the authenticated tenant (see
    /// [`JobRegistry::submit_all_keyed`]).
    ///
    /// # Errors
    ///
    /// See [`JobRegistry::submit_manifest`].
    pub fn submit_manifest_keyed(
        &self,
        text: &str,
        tenant: Option<&str>,
        trace: Option<SpanContext>,
        idempotency_key: Option<&str>,
    ) -> Result<Vec<JobId>, SubmitError> {
        let manifest = crate::manifest::parse_manifest_full(text)?;
        if manifest.server != crate::manifest::ServerOverrides::default() {
            return Err(SubmitError::Invalid(
                "[server] overrides are not accepted at runtime (a live service's \
                 workers/cache are fixed at startup; configure them via CLI flags)"
                    .to_owned(),
            ));
        }
        let mut jobs = manifest.jobs;
        if let Some(tenant) = tenant {
            for job in &mut jobs {
                job.tenant = tenant.to_owned();
            }
        }
        let scope = tenant.unwrap_or("");
        self.submit_all_keyed(jobs, trace, idempotency_key.map(|key| (scope, key)))
    }

    /// The trace id of a job's lifecycle spans, once one exists: set at
    /// submit when the request carried a span context, or at claim for
    /// jobs submitted without one. `None` for unknown jobs or jobs not
    /// yet claimed under a tracing-off server.
    pub fn trace_of(&self, id: JobId) -> Option<TraceId> {
        let state = self.inner.state.lock().expect("registry poisoned");
        state.jobs.get(&id).and_then(|e| e.trace).map(|ctx| ctx.trace)
    }

    /// The span store shared across the stack (disabled when the
    /// server's `trace_enabled` is off).
    pub fn tracer(&self) -> &Tracer {
        self.inner.server.tracer()
    }

    /// Snapshots one job.
    pub fn job(&self, id: JobId) -> Option<JobView> {
        let state = self.inner.state.lock().expect("registry poisoned");
        state.jobs.get(&id).map(|entry| entry.view(id))
    }

    /// Snapshots every job, in id order.
    pub fn jobs(&self) -> Vec<JobView> {
        let state = self.inner.state.lock().expect("registry poisoned");
        let mut views: Vec<JobView> = state.jobs.iter().map(|(&id, e)| e.view(id)).collect();
        views.sort_by_key(|v| v.id);
        views
    }

    /// Requests cancellation. A queued job cancels immediately (and
    /// leaves its tenant's queue at once, so queue depth and `max_queued`
    /// headroom update without waiting for a worker to trip over the
    /// corpse); a running one stops cooperatively at its next generation
    /// boundary (snapshotting first). Returns the job's status after the
    /// request, or `None` for an unknown id.
    pub fn cancel(&self, id: JobId) -> Option<JobStatus> {
        let mut state = self.inner.state.lock().expect("registry poisoned");
        let journal = self.inner.journal.clone();
        let capacity = self.inner.server.config().event_log_capacity;
        let entry = state.jobs.get_mut(&id)?;
        let tenant = entry.spec.tenant.clone();
        match entry.status {
            JobStatus::Queued => {
                entry.status = JobStatus::Cancelled;
                entry.user_cancelled = true;
                entry.push_event("end status=cancelled".to_owned(), capacity);
                entry.events_done = true;
                if let Some(sched) = state.tenants.get_mut(&tenant) {
                    sched.queue.retain(|&queued| queued != id);
                }
                if let Some(journal) = &journal {
                    let _ = journal.append_finished(id, JobStatus::Cancelled);
                }
            }
            JobStatus::Running => {
                entry.user_cancelled = true;
                entry.control.cancel();
            }
            JobStatus::Done | JobStatus::Cancelled | JobStatus::Failed => {}
        }
        let status = state.jobs[&id].status;
        drop(state);
        self.inner.cond.notify_all();
        Some(status)
    }

    /// Returns the job's event lines starting at sequence `from`, as
    /// `(first_seq, lines, done)`. Event logs are bounded rings
    /// ([`ServerConfig::event_log_capacity`]): when `from` points at
    /// history the ring already dropped, `first_seq > from` and the
    /// lines resume from the oldest retained sequence — late
    /// subscribers resume from an offset instead of replaying unbounded
    /// history. A `from` beyond the end of the stream answers
    /// immediately with `(end, [], done)` so a confused subscriber
    /// learns the real cursor instead of stalling. Blocks up to
    /// `timeout` for news when there is none yet; an unknown id returns
    /// `None`.
    pub fn events(
        &self,
        id: JobId,
        from: usize,
        timeout: Duration,
    ) -> Option<(usize, Vec<String>, bool)> {
        let mut state = self.inner.state.lock().expect("registry poisoned");
        loop {
            let entry = state.jobs.get(&id)?;
            let end = entry.events_end();
            if from > end {
                return Some((end, Vec::new(), entry.events_done));
            }
            if end > from || entry.events_done {
                let (first_seq, lines) = entry.events_from(from);
                return Some((first_seq, lines, entry.events_done));
            }
            let (next, wait) =
                self.inner.cond.wait_timeout(state, timeout).expect("registry poisoned");
            state = next;
            if wait.timed_out() {
                let entry = state.jobs.get(&id)?;
                let (first_seq, lines) = entry.events_from(from);
                return Some((first_seq, lines, entry.events_done));
            }
        }
    }

    /// Renders one job's analytics document — the [`GenStats`] window,
    /// cumulative operator attribution, and the cost-vs-evaluations
    /// curve — as the JSON body `GET /jobs/{id}/analytics` serves.
    /// Works for queued (empty window), live, and finished jobs alike;
    /// an unknown id returns `None`.
    ///
    /// [`GenStats`]: digamma_obs::GenStats
    pub fn analytics_json(&self, id: JobId) -> Option<String> {
        let state = self.inner.state.lock().expect("registry poisoned");
        let entry = state.jobs.get(&id)?;
        Some(render_analytics_json(id, &entry.analytics, &entry.ops, &entry.cost_points))
    }

    /// Aggregate queue/worker counters, with a per-tenant breakdown.
    pub fn stats(&self) -> RegistryStats {
        let state = self.inner.state.lock().expect("registry poisoned");
        let mut stats = RegistryStats {
            start_unix: self.inner.start_unix,
            uptime_seconds: self.inner.started.elapsed().as_secs(),
            replayed_jobs: self.inner.replayed,
            workers: self.inner.workers,
            busy_workers: state.busy_workers,
            running_threads: state.running_threads,
            ..RegistryStats::default()
        };
        let mut per_tenant: BTreeMap<&str, TenantStats> = state
            .tenants
            .iter()
            .map(|(id, sched)| {
                (
                    id.as_str(),
                    TenantStats {
                        id: id.clone(),
                        weight: sched.spec.weight,
                        queued: sched.queue.len(),
                        running: sched.running,
                        evals_submitted: sched.usage.evals_submitted,
                        evals_consumed: sched.usage.evals_consumed,
                        cache_hits: sched.usage.cache_hits,
                        cache_misses: sched.usage.cache_misses,
                        cache_insertions: sched.usage.cache_insertions,
                        genome_hits: sched.usage.genome_hits,
                        genome_misses: sched.usage.genome_misses,
                        genome_insertions: sched.usage.genome_insertions,
                        ..TenantStats::default()
                    },
                )
            })
            .collect();
        for entry in state.jobs.values() {
            let tenant = per_tenant.get_mut(entry.spec.tenant.as_str());
            stats.operators.merge(&entry.ops);
            if entry.status == JobStatus::Running && entry.stall_emitted {
                stats.stalled += 1;
            }
            match entry.status {
                JobStatus::Queued => {}
                JobStatus::Running => stats.running += 1,
                JobStatus::Done => {
                    stats.done += 1;
                    if let Some(tenant) = tenant {
                        tenant.done += 1;
                    }
                }
                JobStatus::Cancelled => {
                    stats.cancelled += 1;
                    if let Some(tenant) = tenant {
                        tenant.cancelled += 1;
                    }
                }
                JobStatus::Failed => {
                    stats.failed += 1;
                    if let Some(tenant) = tenant {
                        tenant.failed += 1;
                    }
                }
            }
        }
        // Queue depth is the scheduler's truth (Σ tenant queues), not a
        // recount of statuses: a stale id lingering in a queue *should*
        // show up here as a bug.
        stats.queued = state.tenants.values().map(|sched| sched.queue.len()).sum();
        stats.tenants = per_tenant.into_values().collect();
        stats
    }

    /// Renders the full Prometheus text exposition for `/metrics`:
    /// refreshes the scrape-time gauges (uptime, queue depth, worker
    /// occupancy, cache residency) and then renders every family the
    /// running jobs have fed. Returns the empty string when the server
    /// was started with metrics disabled.
    pub fn render_metrics(&self) -> String {
        let metrics = self.inner.server.metrics();
        if metrics.enabled() {
            let stats = self.stats();
            let config = self.inner.server.config();
            metrics
                .gauge(
                    "digamma_process_start_time_seconds",
                    "Unix time the registry started, in seconds.",
                    &[],
                )
                .set(self.inner.start_unix as f64);
            metrics
                .gauge("digamma_process_uptime_seconds", "Seconds since the registry started.", &[])
                .set(self.inner.started.elapsed().as_secs_f64());
            let workers = self.inner.workers.to_string();
            let eviction = config.eviction.to_string();
            let checkpoint_dir = config
                .checkpoint_dir
                .as_deref()
                .map_or_else(String::new, |dir| dir.display().to_string());
            metrics
                .gauge(
                    "digamma_process_info",
                    "Constant 1; the labels carry the service configuration.",
                    &[
                        ("checkpoint_dir", &checkpoint_dir),
                        ("eviction", &eviction),
                        ("workers", &workers),
                    ],
                )
                .set(1.0);
            metrics
                .gauge("digamma_jobs_queued", "Jobs waiting in tenant queues.", &[])
                .set(stats.queued as f64);
            metrics
                .gauge("digamma_jobs_running", "Jobs currently searching.", &[])
                .set(stats.running as f64);
            metrics
                .gauge("digamma_workers", "Worker threads serving the registry.", &[])
                .set(stats.workers as f64);
            metrics
                .gauge("digamma_workers_busy", "Workers currently running a job.", &[])
                .set(stats.busy_workers as f64);
            metrics
                .gauge(
                    "digamma_jobs_stalled",
                    "Running jobs currently inside a stall episode (no incumbent \
                     improvement for stall_after generations).",
                    &[],
                )
                .set(stats.stalled as f64);
            let residency = [
                ("fitness", self.inner.server.cache_stats()),
                ("genome", self.inner.server.genome_memo_stats()),
            ];
            for (cache, cache_stats) in residency {
                if let Some(cache_stats) = cache_stats {
                    metrics
                        .gauge(
                            "digamma_cache_entries",
                            "Entries resident in the shared caches, by cache layer.",
                            &[("cache", cache)],
                        )
                        .set(cache_stats.entries as f64);
                }
            }
        }
        metrics.render()
    }

    /// Whether a [`JobRegistry::drain`] is in progress (submissions
    /// answer [`SubmitError::Unavailable`]).
    pub fn draining(&self) -> bool {
        self.inner.state.lock().expect("registry poisoned").draining
    }

    /// Graceful drain: stops *accepting* work immediately, but keeps
    /// the workers running so already-accepted jobs finish (or at least
    /// checkpoint) — then shuts down. Waits up to `deadline` for the
    /// queues and running set to empty; whatever is still running at
    /// the deadline is cancelled cooperatively by [`shutdown`]
    /// (snapshotting first, staying pending in the journal, resuming on
    /// the next start). This is the SIGTERM path: no accepted job is
    /// ever silently lost, and small jobs complete instead of being
    /// killed.
    ///
    /// [`shutdown`]: JobRegistry::shutdown
    pub fn drain(&self, deadline: Duration) {
        let started = Instant::now();
        {
            let mut state = self.inner.state.lock().expect("registry poisoned");
            state.draining = true;
        }
        self.inner.cond.notify_all();
        let mut state = self.inner.state.lock().expect("registry poisoned");
        loop {
            let queued: usize = state.tenants.values().map(|sched| sched.queue.len()).sum();
            let running = state.jobs.values().filter(|e| e.status == JobStatus::Running).count();
            if (queued == 0 && running == 0) || started.elapsed() >= deadline {
                break;
            }
            // Short slices rather than one long wait: job completions
            // notify the condvar, but a bounded re-check also catches
            // any missed wakeup before the deadline slips.
            let slice = deadline.saturating_sub(started.elapsed()).min(Duration::from_millis(50));
            let (next, _) = self.inner.cond.wait_timeout(state, slice).expect("registry poisoned");
            state = next;
        }
        drop(state);
        self.shutdown();
    }

    /// Stops accepting work and shuts the workers down. Running jobs are
    /// cancelled cooperatively (they snapshot and will resume on the
    /// next start when a journal is attached); queued jobs stay queued
    /// in the journal. Blocks until every worker has exited.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().expect("registry poisoned");
            state.shutdown = true;
            for entry in state.jobs.values() {
                if entry.status == JobStatus::Running {
                    entry.control.cancel();
                }
            }
        }
        self.inner.cond.notify_all();
        let handles: Vec<_> = std::mem::take(&mut *self.handles.lock().expect("registry poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        // Final spill: the next life warm-starts from everything this
        // one memoized.
        self.inner.server.spill_cache_if_dirty();
    }
}

/// Builds a job's control: its cancel flag is what [`JobRegistry::cancel`]
/// flips, and its progress sink appends event lines and refreshes the
/// live view under the registry lock (taken fresh per generation — the
/// worker holds no lock while searching). The closure captures only a
/// [`std::sync::Weak`] — `Inner` owns every control through its jobs
/// map, so a strong capture would be a reference cycle keeping the
/// whole registry (cache included) alive forever.
fn make_control(inner: &Arc<Inner>, id: JobId) -> Arc<JobControl> {
    let weak = Arc::downgrade(inner);
    let weak_analytics = Arc::downgrade(inner);
    Arc::new(
        JobControl::new()
            .with_progress(move |progress: JobProgress| {
                let Some(inner) = weak.upgrade() else { return };
                let capacity = inner.server.config().event_log_capacity;
                let mut state = inner.state.lock().expect("registry poisoned");
                if let Some(entry) = state.jobs.get_mut(&id) {
                    entry.progress = Some(progress);
                    entry.push_event(progress.line(), capacity);
                }
                drop(state);
                inner.cond.notify_all();
            })
            .with_analytics(move |update: AnalyticsUpdate| {
                let Some(inner) = weak_analytics.upgrade() else { return };
                let config = inner.server.config();
                let (capacity, stall_after) = (config.event_log_capacity, config.stall_after);
                let stats = update.stats;
                // Per-operator incumbent deltas against the last seen
                // absolutes (after a resume the first update carries the
                // whole restored history as one delta). Gathered under
                // the lock, fed to the metrics registry after it drops.
                let mut deltas: Vec<(&'static str, u64)> = Vec::new();
                let mut state = inner.state.lock().expect("registry poisoned");
                if let Some(entry) = state.jobs.get_mut(&id) {
                    for (kind, now) in update.ops.iter() {
                        let delta = now.incumbents.saturating_sub(entry.ops.get(kind).incumbents);
                        if delta > 0 {
                            deltas.push((kind.name(), delta));
                        }
                    }
                    entry.ops = update.ops;
                    if let Some(seed) = update.seed_points {
                        entry.cost_points = compress_points(&seed);
                    }
                    match entry.cost_points.last() {
                        Some(last) if last.best.to_bits() == stats.best.to_bits() => {}
                        _ => entry.cost_points.push(CostPoint {
                            generation: stats.generation,
                            evals: stats.evals,
                            best: stats.best,
                        }),
                    }
                    entry.analytics.push(stats);
                    if stats.stale_gens == 0 {
                        entry.stall_emitted = false;
                    } else if stall_after > 0
                        && stats.stale_gens >= stall_after
                        && !entry.stall_emitted
                    {
                        entry.stall_emitted = true;
                        entry.push_event(
                            format!(
                                "stalled gen={} stale={} best={}",
                                stats.generation,
                                stats.stale_gens,
                                match stats.best.is_finite() {
                                    true => format!("{:.6e}", stats.best),
                                    false => "none".to_owned(),
                                }
                            ),
                            capacity,
                        );
                    }
                }
                drop(state);
                let metrics = inner.server.metrics();
                for (operator, delta) in deltas {
                    metrics
                        .counter(
                            "digamma_search_improvements_total",
                            "New incumbent designs produced, by the GA operator that \
                             generated them.",
                            &[("operator", operator)],
                        )
                        .add(delta);
                }
                inner.cond.notify_all();
            }),
    )
}

impl JobEntry {
    fn new(
        spec: JobSpec,
        control: Arc<JobControl>,
        trace: Option<SpanContext>,
        queued_ns: u64,
        analytics_capacity: usize,
    ) -> JobEntry {
        JobEntry {
            spec,
            status: JobStatus::Queued,
            control,
            queued_at: Instant::now(),
            queue_wait: Duration::ZERO,
            user_cancelled: false,
            progress: None,
            events: VecDeque::new(),
            events_base: 0,
            events_done: false,
            report: None,
            trace,
            queued_ns,
            analytics: AnalyticsRing::new(analytics_capacity),
            ops: OpCounters::new(),
            cost_points: Vec::new(),
            stall_emitted: false,
        }
    }

    /// Appends an event line, dropping the oldest retained line once
    /// the ring is full (`capacity` ≥ 1 always retains the newest line).
    fn push_event(&mut self, line: String, capacity: usize) {
        while self.events.len() >= capacity.max(1) {
            self.events.pop_front();
            self.events_base += 1;
        }
        self.events.push_back(line);
    }

    /// Sequence number one past the newest retained line.
    fn events_end(&self) -> usize {
        self.events_base + self.events.len()
    }

    /// Lines from sequence `from` on: `(first_seq, lines)` where
    /// `first_seq = max(from, events_base)` — a `first_seq` beyond
    /// `from` tells the subscriber the ring dropped that many lines.
    fn events_from(&self, from: usize) -> (usize, Vec<String>) {
        let start = from.max(self.events_base);
        let lines =
            self.events.iter().skip(start - self.events_base).cloned().collect::<Vec<String>>();
        (start, lines)
    }

    fn view(&self, id: JobId) -> JobView {
        JobView {
            id,
            name: self.spec.name.clone(),
            status: self.status,
            spec: self.spec.clone(),
            progress: self.progress,
            report: self.report.clone(),
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    let metrics = inner.server.metrics();
    let claim_seconds = metrics.histogram(
        "digamma_scheduler_claim_seconds",
        "Latency of one claim_next scheduling decision (lock held).",
        &[],
        DEFAULT_LATENCY_BUCKETS,
    );
    loop {
        // Claim the next job the scheduler picks, or exit on shutdown.
        let (id, spec) = {
            let mut state = inner.state.lock().expect("registry poisoned");
            let claimed = loop {
                if state.shutdown {
                    return;
                }
                let scan_started = Instant::now();
                let claimed = claim_next(&mut state, inner.workers);
                claim_seconds.observe_duration(scan_started.elapsed());
                if let Some(claimed) = claimed {
                    break claimed;
                }
                state = inner.cond.wait(state).expect("registry poisoned");
            };
            state.busy_workers += 1;
            claimed
        };
        inner.cond.notify_all();

        let control = {
            let mut state = inner.state.lock().expect("registry poisoned");
            let entry = state.jobs.get_mut(&id).expect("claimed jobs are registered");
            let tracer = inner.server.tracer();
            if tracer.enabled() {
                // Adopt the submitting request's trace; a job without
                // one (journal replay, untraced submit) roots a fresh
                // trace here so `/trace/{id}` always resolves. The
                // queued span is back-dated to cover the whole wait,
                // and the claim span it parents is what the run nests
                // under: queued → claim → run → generation.
                let (trace, parent) = match entry.trace {
                    Some(ctx) => (ctx.trace, Some(ctx.span)),
                    None => (tracer.trace_id(), None),
                };
                let claim_started_ns = tracer.now_ns();
                let queued = SpanRecord {
                    trace,
                    span: tracer.span_id(),
                    parent,
                    name: "job.queued",
                    job: Some(id),
                    start_ns: entry.queued_ns,
                    dur_ns: claim_started_ns.saturating_sub(entry.queued_ns),
                    attrs: vec![("tenant", spec.tenant.clone())],
                };
                let claim = SpanRecord {
                    trace,
                    span: tracer.span_id(),
                    parent: Some(queued.span),
                    name: "job.claim",
                    job: Some(id),
                    start_ns: claim_started_ns,
                    dur_ns: tracer.now_ns().saturating_sub(claim_started_ns),
                    attrs: Vec::new(),
                };
                entry.trace = Some(SpanContext { trace, span: queued.span });
                entry.control.set_trace(id, SpanContext { trace, span: claim.span });
                tracer.record(queued);
                tracer.record(claim);
            }
            Arc::clone(&entry.control)
        };
        let run_started = Instant::now();
        // A panicking job must not take its worker thread (and with it
        // a slot of the pool) down: catch, fail the job, survive.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inner.server.run_job_controlled(&spec, &control)
        }));
        let run_wall = run_started.elapsed();

        let mut state = inner.state.lock().expect("registry poisoned");
        let (status, mut report) = match outcome {
            Ok(report) => {
                let status = if report.cancelled { JobStatus::Cancelled } else { JobStatus::Done };
                (status, Some(report))
            }
            Err(panic) => {
                digamma_obs::log::global().log(
                    LogLevel::Warn,
                    "registry",
                    None,
                    "job panicked; failing it and keeping the worker",
                    &[("job", id.to_string()), ("panic", panic_message(panic.as_ref()))],
                );
                (JobStatus::Failed, None)
            }
        };
        // A shutdown's cooperative stop is not terminal: the job stays
        // pending in the journal (its snapshot survives) and resumes on
        // the next start. A user's cancel is terminal and journaled, as
        // is a panic-failure.
        let terminal =
            status != JobStatus::Cancelled || state.jobs.get(&id).is_some_and(|e| e.user_cancelled);
        let capacity = inner.server.config().event_log_capacity;
        // What a panicked job actually evaluated before dying: its last
        // reported generation's running total (read before the usage
        // borrow below).
        let consumed_at_failure =
            state.jobs.get(&id).and_then(|e| e.progress).map_or(0, |p| p.samples as u64);
        {
            // Charge the tenant's lifetime meters before the report
            // moves into the entry.
            let usage = &mut state.tenant_mut(&spec.tenant).usage;
            match &report {
                Some(report) => {
                    usage.evals_consumed += report.samples as u64;
                    usage.cache_hits += report.cache_hits;
                    usage.cache_misses += report.cache_misses;
                    usage.cache_insertions += report.cache_insertions;
                    usage.genome_hits += report.genome_hits;
                    usage.genome_misses += report.genome_misses;
                    usage.genome_insertions += report.genome_insertions;
                }
                None => {
                    // Refund the unconsumed budget so the `max_evals`
                    // meter balances: the tenant pays for what the job
                    // evaluated, not for the budget its crash stranded.
                    usage.evals_consumed += consumed_at_failure;
                    usage.evals_submitted = usage
                        .evals_submitted
                        .saturating_sub((spec.budget as u64).saturating_sub(consumed_at_failure));
                }
            }
        }
        let mut queue_wait = Duration::ZERO;
        if let Some(entry) = state.jobs.get_mut(&id) {
            queue_wait = entry.queue_wait;
            entry.status = status;
            entry.push_event(format!("end status={status}"), capacity);
            entry.events_done = true;
            if let Some(mut report) = report.take() {
                report.queue_wait = queue_wait;
                entry.report = Some(report);
            }
        }
        state.busy_workers -= 1;
        state.running_threads = state.running_threads.saturating_sub(spec.threads);
        let sched = state.tenant_mut(&spec.tenant);
        sched.running = sched.running.saturating_sub(1);
        if terminal {
            if let Some(journal) = &inner.journal {
                let _ = journal.append_finished(id, status);
            }
        }
        drop(state);
        let tenant_label: &[(&'static str, &str)] = &[("tenant", &spec.tenant)];
        metrics
            .histogram(
                "digamma_job_queue_wait_seconds",
                "Time jobs waited in their tenant queue before a worker claimed them.",
                tenant_label,
                DEFAULT_LATENCY_BUCKETS,
            )
            .observe_duration(queue_wait);
        metrics
            .histogram(
                "digamma_job_run_seconds",
                "Wall-clock time a worker spent running a job end to end.",
                tenant_label,
                DEFAULT_LATENCY_BUCKETS,
            )
            .observe_duration(run_wall);
        // A panic-failure keeps its own status label so dashboards can
        // alert on crashes separately from ordinary failures.
        let status_label =
            if status == JobStatus::Failed { "panicked".to_owned() } else { status.to_string() };
        metrics
            .counter(
                "digamma_jobs_completed_total",
                "Jobs finished, by tenant and terminal status.",
                &[("status", &status_label), ("tenant", &spec.tenant)],
            )
            .inc();
        inner.cond.notify_all();
    }
}

/// Best-effort rendering of a caught panic payload (the common `&str`
/// and `String` cases; anything else is opaque).
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobAlgorithm;
    use digamma::Objective;
    use digamma_costmodel::Platform;
    use digamma_workload::zoo;

    fn spec(name: &str, budget: usize) -> JobSpec {
        let mut s = JobSpec::new(
            name,
            zoo::ncf(),
            Platform::edge(),
            Objective::Latency,
            JobAlgorithm::DiGamma,
        );
        s.budget = budget;
        s.population_size = 8;
        s.seed = 3;
        s
    }

    fn wait_done(registry: &JobRegistry, id: JobId) -> JobView {
        for _ in 0..600 {
            let view = registry.job(id).expect("known job");
            if matches!(view.status, JobStatus::Done | JobStatus::Cancelled | JobStatus::Failed) {
                return view;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("job {id} never finished");
    }

    #[test]
    fn analytics_document_tracks_a_finished_job() {
        let registry =
            JobRegistry::start(ServerConfig { workers: 1, ..ServerConfig::default() }, None)
                .unwrap();
        let id = registry.submit(spec("telemetry", 96)).unwrap();
        assert!(registry.analytics_json(999).is_none(), "unknown ids answer None");
        wait_done(&registry, id);
        let body = registry.analytics_json(id).expect("known job");
        let doc = digamma_obs::parse_json(&body).expect("endpoint body is valid JSON");
        assert_eq!(doc.get("job").and_then(|v| v.as_u64()), Some(id));
        let generations = doc.get("generations").and_then(|v| v.as_arr()).unwrap();
        assert!(!generations.is_empty(), "a stepped job has a telemetry window");
        // Every stepped child is attributed to exactly one operator:
        // the counters sum to samples minus the initial population.
        let attempted: u64 = doc
            .get("operators")
            .and_then(|v| v.as_arr())
            .unwrap()
            .iter()
            .map(|op| op.get("attempted").and_then(|v| v.as_u64()).unwrap())
            .sum();
        let view = registry.job(id).unwrap();
        let samples = view.report.as_ref().unwrap().samples as u64;
        assert_eq!(attempted, samples - 8, "96 budget, population 8");
        let points = doc.get("cost_points").and_then(|v| v.as_arr()).unwrap();
        assert!(!points.is_empty(), "the convergence curve has at least its seed point");
        assert_eq!(
            points[0].get("generation").and_then(|v| v.as_u64()),
            Some(0),
            "the curve starts at the initial population"
        );
        // The aggregate surfaces through /stats too.
        let stats = registry.stats();
        assert_eq!(stats.operators.total_attempted(), attempted);
        registry.shutdown();
    }

    #[test]
    fn traced_submit_nests_queued_claim_run_generation_under_the_request() {
        let registry =
            JobRegistry::start(ServerConfig { workers: 1, ..ServerConfig::default() }, None)
                .unwrap();
        let tracer = registry.tracer().clone();
        assert!(tracer.enabled(), "tracing defaults on");
        let request = tracer.start_root("http.request");
        let request_ctx = request.context().expect("root context");
        let id =
            registry.submit_all_traced(vec![spec("traced", 96)], Some(request_ctx)).unwrap()[0];
        assert_eq!(
            registry.trace_of(id),
            Some(request_ctx.trace),
            "the job adopts the request's trace id at submit"
        );
        wait_done(&registry, id);
        request.end();
        let spans = tracer.spans_for(request_ctx.trace);
        let find = |name: &str| {
            spans.iter().find(|s| s.name == name).unwrap_or_else(|| {
                panic!(
                    "{name} span missing: {:?}",
                    spans.iter().map(|s| s.name).collect::<Vec<_>>()
                )
            })
        };
        let queued = find("job.queued");
        let claim = find("job.claim");
        let run = find("job.run");
        let generation = find("job.generation");
        assert_eq!(queued.parent, Some(request_ctx.span));
        assert_eq!(claim.parent, Some(queued.span));
        assert_eq!(run.parent, Some(claim.span));
        assert_eq!(generation.parent, Some(run.span));
        for span in [queued, claim, run, generation] {
            assert_eq!(span.trace, request_ctx.trace);
            assert_eq!(span.job, Some(id), "lifecycle spans carry the job id");
        }
        registry.shutdown();
    }

    #[test]
    fn untraced_submit_roots_a_fresh_trace_at_claim() {
        let registry =
            JobRegistry::start(ServerConfig { workers: 1, ..ServerConfig::default() }, None)
                .unwrap();
        let id = registry.submit(spec("plain", 96)).unwrap();
        wait_done(&registry, id);
        let trace = registry.trace_of(id).expect("claimed jobs always have a trace");
        let spans = registry.tracer().spans_for(trace);
        let queued = spans.iter().find(|s| s.name == "job.queued").expect("queued span");
        assert_eq!(queued.parent, None, "no request to nest under: queued is the root");
        assert!(spans.iter().any(|s| s.name == "job.run"));
        registry.shutdown();
    }

    #[test]
    fn trace_disabled_records_nothing_and_resolves_no_ids() {
        let registry = JobRegistry::start(
            ServerConfig { workers: 1, trace_enabled: false, ..ServerConfig::default() },
            None,
        )
        .unwrap();
        let id = registry.submit(spec("untraced", 96)).unwrap();
        wait_done(&registry, id);
        assert!(!registry.tracer().enabled());
        assert_eq!(registry.trace_of(id), None);
        assert!(registry.tracer().recent(100).is_empty());
        registry.shutdown();
    }

    #[test]
    fn submitted_jobs_run_and_report() {
        let registry =
            JobRegistry::start(ServerConfig { workers: 2, ..ServerConfig::default() }, None)
                .unwrap();
        let a = registry.submit(spec("a", 96)).unwrap();
        let b = registry.submit(spec("b", 96)).unwrap();
        assert_ne!(a, b);
        let va = wait_done(&registry, a);
        let vb = wait_done(&registry, b);
        assert_eq!(va.status, JobStatus::Done);
        assert_eq!(vb.status, JobStatus::Done);
        let report = va.report.expect("done jobs carry a report");
        assert_eq!(report.samples, 96);
        assert!(report.best.is_some());
        let stats = registry.stats();
        assert_eq!(stats.done, 2);
        assert_eq!((stats.queued, stats.running), (0, 0));
        // Permissive mode still accounts: both jobs ran as "default".
        let tenant = stats.tenants.iter().find(|t| t.id == "default").expect("default tenant");
        assert_eq!(tenant.done, 2);
        assert_eq!(tenant.evals_submitted, 192);
        assert_eq!(tenant.evals_consumed, 192);
        registry.shutdown();
    }

    #[test]
    fn events_stream_one_line_per_generation() {
        let registry =
            JobRegistry::start(ServerConfig { workers: 1, ..ServerConfig::default() }, None)
                .unwrap();
        let id = registry.submit(spec("ev", 80)).unwrap();
        let mut lines = Vec::new();
        let mut from = 0;
        loop {
            let (first_seq, chunk, done) =
                registry.events(id, from, Duration::from_millis(200)).expect("known job");
            assert_eq!(first_seq, from, "nothing drops below the default ring capacity");
            from += chunk.len();
            lines.extend(chunk);
            if done {
                break;
            }
        }
        // 80 samples / population 8 = init + 9 generations, then the
        // terminal line.
        assert!(lines.len() >= 2, "{lines:?}");
        assert!(lines[0].starts_with("gen=1 "), "{lines:?}");
        assert_eq!(lines.last().unwrap(), "end status=done");
        registry.shutdown();
    }

    #[test]
    fn events_past_the_end_answer_immediately_with_the_real_cursor() {
        let registry = JobRegistry::start(
            ServerConfig { workers: 1, checkpoint_every: 1_000_000, ..ServerConfig::default() },
            None,
        )
        .unwrap();
        let id = registry.submit(spec("overshoot", 600_000)).unwrap();
        // Wait for at least one event so the stream is live but far
        // from sequence 10_000.
        let _ = registry.events(id, 0, Duration::from_secs(10));
        let started = std::time::Instant::now();
        let (seq, lines, done) =
            registry.events(id, 10_000, Duration::from_secs(30)).expect("known job");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "overshooting `from` must not stall until timeout"
        );
        assert!(lines.is_empty());
        assert!(!done);
        assert!(seq < 10_000, "the reported cursor is the stream's true end, got {seq}");
        registry.cancel(id);
        wait_done(&registry, id);
        // Same probe on a finished stream: immediate, done, real end.
        let (end, _, done) = registry.events(id, 0, Duration::from_millis(100)).unwrap();
        let end = end + registry.events(id, end, Duration::from_millis(100)).unwrap().1.len();
        let (seq, lines, done_after) =
            registry.events(id, end + 7, Duration::from_millis(100)).unwrap();
        assert!(done && done_after);
        assert_eq!((seq, lines.len()), (end, 0));
        registry.shutdown();
    }

    #[test]
    fn queued_jobs_cancel_immediately_and_running_jobs_cooperatively() {
        let dir = std::env::temp_dir().join(format!("digamma-reg-cancel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let registry = JobRegistry::start(
            ServerConfig {
                workers: 1,
                checkpoint_dir: Some(dir.clone()),
                ..ServerConfig::default()
            },
            None,
        )
        .unwrap();
        // A long-running job hogs the single worker; checkpoint at every
        // generation so cancellation must find a snapshot to write.
        let mut long = spec("long", 1_000_000);
        long.checkpoint_every = Some(1);
        let running = registry.submit(long).unwrap();
        let queued = registry.submit(spec("queued", 96)).unwrap();
        assert_eq!(registry.cancel(queued), Some(JobStatus::Cancelled));
        // Wait until the long job has actually stepped, then cancel it.
        let (_, _, done) = registry.events(running, 0, Duration::from_secs(10)).unwrap();
        assert!(!done, "job must still be running");
        registry.cancel(running);
        let view = wait_done(&registry, running);
        assert_eq!(view.status, JobStatus::Cancelled);
        let report = view.report.expect("cancelled jobs report partial results");
        assert!(report.cancelled);
        assert!(report.samples < 1_000_000);
        assert!(report.best.is_some(), "partial best survives cancellation");
        // The cooperative stop snapshotted for later resumption.
        let ckpt = registry.server().checkpoint_path(&view.spec).unwrap();
        assert!(ckpt.exists(), "cancelled job keeps its snapshot");
        assert_eq!(registry.job(queued).unwrap().status, JobStatus::Cancelled);
        registry.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mass_cancelling_queued_jobs_drains_the_queue() {
        let registry =
            JobRegistry::start(ServerConfig { workers: 1, ..ServerConfig::default() }, None)
                .unwrap();
        // Hog the single worker so the rest stay queued.
        let blocker = registry.submit(spec("blocker", 1_000_000)).unwrap();
        let ids: Vec<JobId> =
            (0..5).map(|i| registry.submit(spec(&format!("victim-{i}"), 96)).unwrap()).collect();
        // Give the worker a moment to claim the blocker.
        let _ = registry.events(blocker, 0, Duration::from_secs(10));
        assert_eq!(registry.stats().queued, 5);
        for &id in &ids {
            assert_eq!(registry.cancel(id), Some(JobStatus::Cancelled));
        }
        // Cancelled ids leave the scheduler queue immediately — no
        // lingering tombstones waiting for a worker to skip them.
        let stats = registry.stats();
        assert_eq!(stats.queued, 0, "cancelled jobs must leave the queue eagerly");
        assert!(stats.tenants.iter().all(|t| t.queued == 0));
        assert_eq!(stats.cancelled, 5);
        registry.cancel(blocker);
        wait_done(&registry, blocker);
        registry.shutdown();
    }

    #[test]
    fn threads_are_clamped_to_workers_and_zero_is_rejected() {
        let registry =
            JobRegistry::start(ServerConfig { workers: 2, ..ServerConfig::default() }, None)
                .unwrap();
        let mut wide = spec("wide", 64);
        wide.threads = 64;
        let id = registry.submit(wide).unwrap();
        assert_eq!(
            registry.job(id).unwrap().spec.threads,
            2,
            "threads clamp to the worker pool at admission"
        );
        let mut zero = spec("zero", 64);
        zero.threads = 0;
        match registry.submit(zero) {
            Err(SubmitError::Invalid(msg)) => assert!(msg.contains("threads"), "{msg}"),
            other => panic!("zero threads must be Invalid, got {other:?}"),
        }
        wait_done(&registry, id);
        registry.shutdown();
    }

    #[test]
    fn event_ring_drops_oldest_and_reports_resume_offset() {
        // Capacity 4: a ~20-generation job must overflow the ring, and
        // a late subscriber asking from 0 must land at the oldest
        // retained sequence instead of replaying everything.
        let registry = JobRegistry::start(
            ServerConfig { workers: 1, event_log_capacity: 4, ..ServerConfig::default() },
            None,
        )
        .unwrap();
        let id = registry.submit(spec("ring", 160)).unwrap();
        wait_done(&registry, id);
        let (first_seq, lines, done) =
            registry.events(id, 0, Duration::from_millis(100)).expect("known job");
        assert!(done);
        assert_eq!(lines.len(), 4, "ring retains exactly its capacity");
        assert!(first_seq > 0, "late subscriber must see the drop offset");
        assert_eq!(lines.last().unwrap(), "end status=done", "terminal line survives");
        // Resuming from a retained offset yields exactly the tail.
        let (seq2, tail, _) =
            registry.events(id, first_seq + 2, Duration::from_millis(100)).unwrap();
        assert_eq!(seq2, first_seq + 2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail, lines[2..].to_vec());
        // Asking exactly at the end of a finished stream returns no lines.
        let (_, empty, done) =
            registry.events(id, first_seq + 4, Duration::from_millis(100)).unwrap();
        assert!(done && empty.is_empty());
        registry.shutdown();
    }

    #[test]
    fn duplicate_live_names_are_rejected() {
        let registry =
            JobRegistry::start(ServerConfig { workers: 1, ..ServerConfig::default() }, None)
                .unwrap();
        // Long enough that it cannot finish between the two submits.
        let id = registry.submit(spec("dup", 400_000)).unwrap();
        let err = registry.submit(spec("dup", 64)).unwrap_err();
        assert!(err.to_string().contains("dup"), "{err}");
        // Once the first is no longer live, the name is reusable.
        registry.cancel(id);
        wait_done(&registry, id);
        assert!(registry.submit(spec("dup", 64)).is_ok());
        registry.shutdown();
    }

    #[test]
    fn quotas_and_unknown_tenants_reject_with_typed_errors() {
        let roster = TenantSet::parse(
            "[tenant]\nid = small\nmax_queued = 2\nmax_evals = 1000\n[tenant]\nid = big\n",
        )
        .unwrap();
        let registry = JobRegistry::start_with_tenants(
            ServerConfig { workers: 1, ..ServerConfig::default() },
            None,
            roster,
        )
        .unwrap();
        let as_tenant = |name: &str, budget: usize, tenant: &str| {
            let mut s = spec(name, budget);
            s.tenant = tenant.to_owned();
            s
        };
        // Hog the worker so "small" jobs stay queued.
        let blocker = registry.submit(as_tenant("blocker", 1_000_000, "big")).unwrap();
        let _ = registry.events(blocker, 0, Duration::from_secs(10));
        let first = registry.submit(as_tenant("s1", 100, "small")).unwrap();
        registry.submit(as_tenant("s2", 100, "small")).unwrap();
        match registry.submit(as_tenant("s3", 100, "small")) {
            Err(SubmitError::QuotaExceeded(msg)) => assert!(msg.contains("max_queued"), "{msg}"),
            other => panic!("third queued job must exceed max_queued, got {other:?}"),
        }
        // Eager cancel frees queue headroom immediately...
        registry.cancel(first);
        match registry.submit(as_tenant("s4", 900, "small")) {
            // ...but submitted evals are a lifetime meter: 200 already
            // accepted + 900 > 1000.
            Err(SubmitError::QuotaExceeded(msg)) => assert!(msg.contains("max_evals"), "{msg}"),
            other => panic!("budget past max_evals must be rejected, got {other:?}"),
        }
        registry.submit(as_tenant("s5", 100, "small")).expect("within both quotas");
        match registry.submit(as_tenant("ghost", 64, "nobody")) {
            Err(SubmitError::UnknownTenant(msg)) => assert!(msg.contains("nobody"), "{msg}"),
            other => panic!("strict roster must reject unknown tenants, got {other:?}"),
        }
        let stats = registry.stats();
        let small = stats.tenants.iter().find(|t| t.id == "small").unwrap();
        assert_eq!(small.queued, 2);
        assert_eq!(small.evals_submitted, 300);
        registry.cancel(blocker);
        wait_done(&registry, blocker);
        registry.shutdown();
    }

    #[test]
    fn claim_next_honors_weights() {
        let mut state = RegState::default();
        for (tid, weight) in [("a", 3u64), ("b", 1)] {
            let mut tspec = TenantSpec::named(tid);
            tspec.weight = weight;
            state.tenants.insert(tid.to_owned(), TenantSched::new(tspec));
            state.rotation.push(tid.to_owned());
        }
        let mut next: JobId = 1;
        for tid in ["a", "b"] {
            for k in 0..8 {
                let mut s = spec(&format!("{tid}-{k}"), 64);
                s.tenant = tid.to_owned();
                let id = next;
                next += 1;
                state.tenants.get_mut(tid).unwrap().queue.push_back(id);
                state.jobs.insert(id, JobEntry::new(s, Arc::new(JobControl::new()), None, 0, 8));
            }
        }
        // Claim 8 with a roomy pool, releasing each claim's threads so
        // admission never interferes: every 4-claim window must split
        // 3 "a" to 1 "b".
        let order: Vec<String> = (0..8)
            .map(|_| {
                let (_, claimed) = claim_next(&mut state, 64).expect("work is available");
                state.running_threads -= claimed.threads;
                claimed.tenant
            })
            .collect();
        let a_first = order[..4].iter().filter(|t| *t == "a").count();
        let a_second = order[4..].iter().filter(|t| *t == "a").count();
        assert_eq!((a_first, a_second), (3, 3), "{order:?}");
    }

    #[test]
    fn claim_next_respects_thread_budget_and_max_running() {
        let mut state = RegState::default();
        let mut capped = TenantSpec::named("capped");
        capped.max_running = Some(1);
        state.tenants.insert("capped".to_owned(), TenantSched::new(capped));
        state.rotation.push("capped".to_owned());
        let mut wide = spec("wide", 64);
        wide.tenant = "capped".to_owned();
        wide.threads = 2;
        let mut narrow = spec("narrow", 64);
        narrow.tenant = "capped".to_owned();
        state.jobs.insert(1, JobEntry::new(wide, Arc::new(JobControl::new()), None, 0, 8));
        state.jobs.insert(2, JobEntry::new(narrow, Arc::new(JobControl::new()), None, 0, 8));
        let sched = state.tenants.get_mut("capped").unwrap();
        sched.queue.push_back(1);
        sched.queue.push_back(2);
        // One of two worker threads is taken: the 2-thread head cannot
        // start, and FIFO means the narrow job behind it waits too.
        state.running_threads = 1;
        assert!(claim_next(&mut state, 2).is_none(), "head needs 2 threads, only 1 free");
        state.running_threads = 0;
        let (id, _) = claim_next(&mut state, 2).expect("whole pool is free");
        assert_eq!(id, 1);
        assert_eq!(state.running_threads, 2);
        // The narrow job now fits thread-wise once the pool frees, but
        // max_running = 1 holds it back until the wide job finishes.
        state.running_threads = 0;
        assert!(claim_next(&mut state, 2).is_none(), "max_running caps the tenant at 1");
        state.tenants.get_mut("capped").unwrap().running = 0;
        let (id, _) = claim_next(&mut state, 2).expect("slot freed");
        assert_eq!(id, 2);
    }

    #[test]
    fn metrics_exposition_covers_lifecycle_scheduler_and_process() {
        let registry =
            JobRegistry::start(ServerConfig { workers: 2, ..ServerConfig::default() }, None)
                .unwrap();
        let id = registry.submit(spec("observed", 96)).unwrap();
        wait_done(&registry, id);
        let text = registry.render_metrics();
        let samples = digamma_obs::parse_text(&text).expect("exposition must parse");
        let completed = samples
            .iter()
            .find(|s| {
                s.name == "digamma_jobs_completed_total"
                    && s.label("tenant") == Some("default")
                    && s.label("status") == Some("done")
            })
            .expect("completed counter is exported per tenant and status");
        assert!(completed.value >= 1.0);
        for series in [
            "digamma_scheduler_claim_seconds_count",
            "digamma_job_queue_wait_seconds_count{tenant=\"default\"}",
            "digamma_job_run_seconds_count{tenant=\"default\"}",
            "digamma_journal_replayed_jobs_total 0",
            "digamma_process_uptime_seconds",
            "digamma_process_start_time_seconds",
            "digamma_process_info{",
            "digamma_jobs_queued 0",
            "digamma_workers 2",
            "digamma_cache_entries{cache=\"fitness\"}",
            "digamma_evals_total{tenant=\"default\"}",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
        let stats = registry.stats();
        assert!(stats.start_unix > 0);
        assert_eq!(stats.replayed_jobs, 0);
        registry.shutdown();
    }

    #[test]
    fn disabled_metrics_render_an_empty_exposition() {
        let registry = JobRegistry::start(
            ServerConfig { workers: 1, metrics_enabled: false, ..ServerConfig::default() },
            None,
        )
        .unwrap();
        let id = registry.submit(spec("dark", 64)).unwrap();
        wait_done(&registry, id);
        assert_eq!(registry.render_metrics(), "", "disabled registry must stay silent");
        registry.shutdown();
    }

    #[test]
    fn journal_replay_resubmits_unfinished_jobs() {
        let dir = std::env::temp_dir().join(format!("digamma-reg-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("jobs.journal");
        // First life: submit a job but shut down before it can finish
        // (zero-worker trick is impossible — workers min at 1 — so use a
        // long budget and shut down immediately; shutdown cancels
        // cooperatively without journaling a finish).
        let registry = JobRegistry::start(
            ServerConfig {
                workers: 1,
                checkpoint_dir: Some(dir.clone()),
                ..ServerConfig::default()
            },
            Some(journal.clone()),
        )
        .unwrap();
        let mut long = spec("revenant", 400_000);
        long.checkpoint_every = Some(1);
        let id = registry.submit(long).unwrap();
        // Let it step at least once so a snapshot exists.
        let _ = registry.events(id, 0, Duration::from_secs(10));
        registry.shutdown();

        // Second life: the journal replays the unfinished job under the
        // same id and it picks up from its snapshot.
        let reborn = JobRegistry::start(
            ServerConfig {
                workers: 1,
                checkpoint_dir: Some(dir.clone()),
                ..ServerConfig::default()
            },
            Some(journal),
        )
        .unwrap();
        let view = reborn.job(id).expect("replayed under the same id");
        assert_eq!(reborn.stats().replayed_jobs, 1, "replay count reaches /stats");
        assert!(
            reborn.render_metrics().contains("digamma_journal_replayed_jobs_total 1"),
            "replay count reaches /metrics"
        );
        assert_eq!(view.name, "revenant");
        assert_eq!(view.spec.tenant, "default", "v1-era jobs replay as the default tenant");
        // Replayed budgets still count against the tenant's meter.
        let stats = reborn.stats();
        let tenant = stats.tenants.iter().find(|t| t.id == "default").unwrap();
        assert_eq!(tenant.evals_submitted, 400_000);
        // It resumed rather than restarting: the report (when the job
        // eventually finishes or is cancelled again) notes the resume
        // generation. Cancel to finish fast.
        let _ = reborn.events(id, 0, Duration::from_secs(10));
        reborn.cancel(id);
        let done = wait_done(&reborn, id);
        let report = done.report.unwrap();
        assert!(report.resumed_at.is_some(), "second life must resume from the snapshot");
        reborn.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panicking_jobs_fail_cleanly_refund_and_spare_the_worker() {
        let config = ServerConfig { workers: 1, ..ServerConfig::default() };
        config.faults.configure("worker.eval=panic,once").unwrap();
        let registry = JobRegistry::start(config, None).unwrap();
        let doomed = registry.submit(spec("doomed", 96)).unwrap();
        let view = wait_done(&registry, doomed);
        assert_eq!(view.status, JobStatus::Failed);
        assert!(view.report.is_none(), "a panicked job has no report");
        let (_, lines, done) = registry.events(doomed, 0, Duration::from_millis(100)).unwrap();
        assert!(done);
        assert_eq!(lines.last().unwrap(), "end status=failed");
        // The worker survived the panic: the next job runs to done.
        let phoenix = registry.submit(spec("phoenix", 96)).unwrap();
        assert_eq!(wait_done(&registry, phoenix).status, JobStatus::Done);
        let stats = registry.stats();
        assert_eq!(stats.failed, 1);
        let tenant = stats.tenants.iter().find(|t| t.id == "default").unwrap();
        assert_eq!(tenant.failed, 1);
        // The doomed job panicked before evaluating anything, so its
        // whole budget refunds: both meters settle at phoenix's 96.
        assert_eq!(tenant.evals_submitted, 96);
        assert_eq!(tenant.evals_consumed, 96);
        let text = registry.render_metrics();
        let samples = digamma_obs::parse_text(&text).expect("exposition must parse");
        assert!(
            samples.iter().any(|s| s.name == "digamma_jobs_completed_total"
                && s.label("status") == Some("panicked")
                && s.value >= 1.0),
            "panicked status label missing in:\n{text}"
        );
        registry.shutdown();
    }

    #[test]
    fn drain_finishes_accepted_work_then_refuses_new() {
        let registry =
            JobRegistry::start(ServerConfig { workers: 1, ..ServerConfig::default() }, None)
                .unwrap();
        let a = registry.submit(spec("drain-a", 96)).unwrap();
        let b = registry.submit(spec("drain-b", 96)).unwrap();
        registry.drain(Duration::from_secs(60));
        assert_eq!(registry.job(a).unwrap().status, JobStatus::Done);
        assert_eq!(registry.job(b).unwrap().status, JobStatus::Done);
        match registry.submit(spec("late", 64)) {
            Err(SubmitError::Unavailable(msg)) => assert!(msg.contains("retry"), "{msg}"),
            other => panic!("post-drain submits must be Unavailable, got {other:?}"),
        }
    }

    #[test]
    fn shed_watermark_answers_unavailable_and_counts() {
        let registry = JobRegistry::start(
            ServerConfig { workers: 1, shed_queue_depth: 2, ..ServerConfig::default() },
            None,
        )
        .unwrap();
        // Hog the worker so later submits stack up in the queue.
        let blocker = registry.submit(spec("shed-blocker", 1_000_000)).unwrap();
        let _ = registry.events(blocker, 0, Duration::from_secs(10));
        registry.submit(spec("shed-1", 64)).unwrap();
        registry.submit(spec("shed-2", 64)).unwrap();
        match registry.submit(spec("shed-3", 64)) {
            Err(SubmitError::Unavailable(msg)) => assert!(msg.contains("watermark"), "{msg}"),
            other => panic!("past the watermark must shed, got {other:?}"),
        }
        assert!(registry.render_metrics().contains("digamma_submits_shed_total 1"));
        registry.cancel(blocker);
        wait_done(&registry, blocker);
        registry.shutdown();
    }

    #[test]
    fn idempotent_submits_dedupe_across_retries_and_restarts() {
        let dir = std::env::temp_dir().join(format!("digamma-reg-idem-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("jobs.journal");
        let registry = JobRegistry::start(
            ServerConfig { workers: 1, ..ServerConfig::default() },
            Some(journal.clone()),
        )
        .unwrap();
        let ids = registry
            .submit_all_keyed(vec![spec("idem", 96)], None, Some(("default", "key-1")))
            .unwrap();
        // A retry with the same key returns the same ids; without the
        // dedupe it would collide on the live name.
        let again = registry
            .submit_all_keyed(vec![spec("idem", 96)], None, Some(("default", "key-1")))
            .unwrap();
        assert_eq!(again, ids);
        // A different scope is a different key space: no dedupe, so the
        // live-name collision shows through.
        match registry.submit_all_keyed(vec![spec("idem", 96)], None, Some(("other", "key-1"))) {
            Err(SubmitError::Invalid(msg)) => assert!(msg.contains("idem"), "{msg}"),
            other => panic!("a different scope must not dedupe, got {other:?}"),
        }
        wait_done(&registry, ids[0]);
        registry.shutdown();
        // Second life: the key replayed from the journal, so a retry
        // arriving after a restart still answers the original ids.
        let reborn = JobRegistry::start(
            ServerConfig { workers: 1, ..ServerConfig::default() },
            Some(journal),
        )
        .unwrap();
        let after = reborn
            .submit_all_keyed(vec![spec("idem", 96)], None, Some(("default", "key-1")))
            .unwrap();
        assert_eq!(after, ids);
        reborn.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
